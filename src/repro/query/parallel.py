"""Multi-core fleet execution: independent fleets across worker processes.

The simulator is single-threaded by construction — one
:class:`~repro.clock.SimClock`, one executor, one event loop — so a sweep
that runs *many independent fleets* (the scale benchmarks, parameter
sweeps, the planned open-loop harness) serializes on one core no matter
how fast the per-fleet hot path gets.  Fleets that share nothing are
embarrassingly parallel: this module forks worker processes, gives each
fleet its own fresh ``SimClock`` and executor, and merges the resulting
:class:`~repro.analysis.concurrency.ConcurrencyReport`s.

Isolation rules (what makes the parallelism sound):

* every fleet gets a **fresh SimClock** and a fresh executor — no
  simulated state crosses fleets, so results are bit-identical to
  running the fleets one after another in a single process (which is
  exactly what ``parallel=1`` does, and what the determinism test pins);
* fleets run **without a cache plane**: a shared cache is cross-fleet
  state, and forked copies would silently diverge from any serial run —
  pass ``cache=...`` and the dispatch refuses rather than lies;
* each worker re-opens the store's backing log file after the fork
  (:meth:`KVStore.reopen_after_fork <repro.storage.kvstore.KVStore.
  reopen_after_fork>`): the forked file handle shares one seek offset
  with every sibling, and plan admission reads segment metadata, so
  concurrent ``seek``/``read`` on the inherited handle would race.

Workers communicate results over pipes as pickled reports;
``ConcurrencyReport`` is a frozen dataclass tree of plain values, so the
payload is small regardless of fleet size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.concurrency import ConcurrencyReport, concurrency_report
from repro.clock import SimClock
from repro.errors import QueryError
from repro.query.cascade import cascade_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.store import VStore

__all__ = ["run_fleets", "merge_reports"]


def _run_one_fleet(store: "VStore", specs: Sequence[dict],
                   executor_kwargs: dict) -> ConcurrencyReport:
    """Admit and run one fleet on a fresh clock; returns its report."""
    ex = store.executor(clock=SimClock(), cache=None, **executor_kwargs)
    for spec in specs:
        spec = dict(spec)
        query = spec.pop("query")
        if isinstance(query, str):
            query = cascade_for(query)
        ex.admit(query, spec.pop("dataset"), spec.pop("accuracy"),
                 spec.pop("t0"), spec.pop("t1"), **spec)
    outcomes = ex.run()
    return concurrency_report(outcomes, ex.stats())


def _worker(store: "VStore", fleets: Sequence[Sequence[dict]],
            indices: List[int], executor_kwargs: dict, conn) -> None:
    """Worker-process body: run the assigned fleets, ship the reports."""
    store.reopen_after_fork()
    try:
        results = [(i, _run_one_fleet(store, fleets[i], executor_kwargs))
                   for i in indices]
        conn.send(("ok", results))
    except BaseException as exc:  # surface the failure in the parent
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def run_fleets(store: "VStore", fleets: Sequence[Sequence[dict]],
               parallel: int, **executor_kwargs) -> List[ConcurrencyReport]:
    """Run independent fleets across ``parallel`` worker processes.

    ``fleets`` is a sequence of fleets, each a sequence of admission
    specs (the same mapping shape :meth:`VStore.execute_many
    <repro.core.store.VStore.execute_many>` takes).  Reports come back
    in fleet order.  ``parallel=1`` (or a single fleet) runs in-process
    — same fresh-clock-per-fleet semantics, so the results are
    bit-identical to any parallel schedule.
    """
    if parallel < 1:
        raise QueryError(f"need at least one worker: parallel={parallel}")
    if "cache" in executor_kwargs:
        raise QueryError(
            "parallel fleets run without a cache plane: a cache shared "
            "across worker processes cannot stay coherent, and forked "
            "copies would diverge from a serial run"
        )
    if "clock" in executor_kwargs:
        raise QueryError(
            "parallel fleets each get a fresh SimClock; a shared clock "
            "would serialize them in simulated time"
        )
    fleets = [list(f) for f in fleets]
    n_workers = min(parallel, len(fleets))
    if n_workers <= 1:
        return [_run_one_fleet(store, f, executor_kwargs) for f in fleets]

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    # Flush the backing log in the parent so no worker inherits pending
    # buffered writes it could double-flush on exit.
    store.flush()
    partitions: List[List[int]] = [[] for _ in range(n_workers)]
    for i in range(len(fleets)):  # round-robin keeps partitions balanced
        partitions[i % n_workers].append(i)
    procs: List[Tuple[object, object]] = []
    for indices in partitions:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker,
            args=(store, fleets, indices, executor_kwargs, child_conn),
        )
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    results: Dict[int, ConcurrencyReport] = {}
    errors: List[str] = []
    for proc, conn in procs:
        try:
            status, payload = conn.recv()
        except EOFError:
            status, payload = "error", "worker exited without a result"
        if status == "ok":
            results.update(payload)
        else:
            errors.append(payload)
        proc.join()
    if errors:
        raise QueryError(
            f"{len(errors)} of {n_workers} fleet workers failed: "
            + "; ".join(errors)
        )
    return [results[i] for i in range(len(fleets))]


def merge_reports(reports: Sequence[ConcurrencyReport],
                  wall_seconds: Optional[float] = None) -> ConcurrencyReport:
    """Merge per-fleet reports into one aggregate view.

    Rows concatenate, events sum, and the makespan is the slowest
    fleet's (fleets are concurrent in simulated time by construction —
    each started at its own t=0).  Per-resource utilization is averaged
    weighted by fleet makespan, i.e. total busy time over total
    simulated time.  ``wall_seconds`` should be the measured elapsed
    time of the whole parallel run — events/s over it is the aggregate
    scheduling throughput; it defaults to the sum of the per-fleet
    walls (the serial-equivalent accounting).
    """
    if not reports:
        raise ValueError("no reports to merge")
    rows = tuple(row for r in reports for row in r.rows)
    utilization: Dict[str, Optional[float]] = {}
    for name in reports[0].utilization:
        fracs = [(r.utilization.get(name), r.makespan) for r in reports]
        if any(f is None for f, _ in fracs):
            utilization[name] = None  # unbounded in at least one fleet
        else:
            total_time = sum(m for _, m in fracs)
            utilization[name] = (
                sum(f * m for f, m in fracs) / total_time
                if total_time > 0 else 0.0
            )
    cores = {r.core for r in reports}
    return ConcurrencyReport(
        policy=reports[0].policy,
        n_queries=sum(r.n_queries for r in reports),
        makespan=max(r.makespan for r in reports),
        rows=rows,
        utilization=utilization,
        core=cores.pop() if len(cores) == 1 else "mixed",
        events=sum(r.events for r in reports),
        wall_seconds=(wall_seconds if wall_seconds is not None
                      else sum(r.wall_seconds for r in reports)),
    )
