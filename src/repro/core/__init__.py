"""VStore's core: backward derivation of the video-format configuration.

The derivation runs opposite to the video data path (Figure 7):

1. :mod:`repro.core.consumption` — consumers -> consumption formats (4.2);
2. :mod:`repro.core.coalesce` — consumption formats -> storage formats (4.3);
3. :mod:`repro.core.erosion` — storage formats -> data erosion plan (4.4).

:mod:`repro.core.config` ties the three steps together into a
:class:`~repro.core.config.Configuration`; :mod:`repro.core.store` exposes
the whole system behind the :class:`~repro.core.store.VStore` facade.
"""

from repro.core.boundary import BoundarySearch
from repro.core.coalesce import (
    CoalescePlan,
    StorageFormatPlanner,
    cheapest_adequate_coding,
)
from repro.core.config import Configuration, derive_configuration
from repro.core.consumption import ConsumptionDecision, ConsumptionPlanner
from repro.core.drift import DriftDetector
from repro.core.erosion import ErosionPlan, ErosionPlanner
from repro.core.evolve import (
    EvolutionReport,
    EvolvedConfiguration,
    ReplanResult,
    add_operators,
    legacy_configuration,
    replan_incremental,
    reprofile_for_hardware,
)
from repro.core.knobs import configuration_space_size
from repro.core.store import VStore

__all__ = [
    "BoundarySearch",
    "CoalescePlan",
    "Configuration",
    "ConsumptionDecision",
    "ConsumptionPlanner",
    "DriftDetector",
    "ErosionPlan",
    "ErosionPlanner",
    "EvolutionReport",
    "EvolvedConfiguration",
    "ReplanResult",
    "add_operators",
    "legacy_configuration",
    "replan_incremental",
    "reprofile_for_hardware",
    "StorageFormatPlanner",
    "VStore",
    "cheapest_adequate_coding",
    "configuration_space_size",
    "derive_configuration",
]
