"""The locked trace-event schema and its typed views.

Satellite 1 of the observability PR: the schema is a *contract* — every
executor core emits events through one shared constructor
(:func:`repro.obs.trace.task_event`), so the key-set can never drift
between the reference loop, the event-heap core and the vectorized fast
path.  These tests pin the contract from both ends:

* key-set lock: every recorded event carries exactly ``TRACE_SCHEMA``'s
  keys, in schema order, on every core and policy;
* stream parity: the three cores emit byte-identical streams on the same
  fleet (the fast path compared on a qualifying FIFO/EDF single-context
  fleet, since that is the only fleet it accepts);
* the typed views (intervals, spans) reconstruct submission instants via
  the chain rule and must stay consistent with the raw stream.
"""

from __future__ import annotations

import json

import pytest

from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.obs.trace import (
    TRACE_SCHEMA,
    intervals_from_events,
    query_spans,
    task_event,
    validate_events,
)
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import (
    DeadlinePolicy,
    FIFOPolicy,
    FairSharePolicy,
    OperatorContextPool,
)
from repro.storage.disk import DiskBandwidthPool

POLICIES = {
    "fifo": FIFOPolicy,
    "fair": FairSharePolicy,
    "edf": DeadlinePolicy,
}


@pytest.fixture(scope="module")
def obs_store(tmp_path_factory):
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp("obs")),
                library=lib) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        yield store


def _contended_executor(store, policy_name: str, core: str = "heap",
                        fastpath: bool = True):
    ex = store.executor(
        policy=POLICIES[policy_name](),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(1),
        operator_pool=OperatorContextPool(2),
        core=core,
        fastpath=fastpath,
    )
    ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0)
    ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 16.0, deadline=3.0)
    ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0, contexts=2)
    return ex


def _fastpath_fleet(store, policy_name: str, core: str = "heap",
                    fastpath: bool = True):
    """A fleet the vectorized fast path accepts: single-context, no cache."""
    engine = store.engine("jackson")
    plan = engine.plan(QUERY_A, 0.9, store.segments, 0.0, 16.0)
    ex = store.executor(
        policy=POLICIES[policy_name](),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(1),
        operator_pool=OperatorContextPool(2),
        core=core,
        fastpath=fastpath,
    )
    for i in range(6):
        deadline = 10.0 - i if policy_name == "edf" else None
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0, plan=plan,
                 deadline=deadline)
    return ex


# ---------------------------------------------------------------------------
# The schema contract
# ---------------------------------------------------------------------------


def test_task_event_keys_match_schema_in_order():
    e = task_event("start", 1.0, "q0", "retrieve", "NN", "disk", 0.5)
    assert tuple(e) == TRACE_SCHEMA


def test_validate_events_accepts_constructor_output():
    events = [task_event("start", 0.0, "q0", "retrieve", "NN", "disk", 1.0),
              task_event("finish", 1.0, "q0", "retrieve", "NN", "disk", 1.0)]
    validate_events(events)  # must not raise


@pytest.mark.parametrize("bad", [
    {"event": "start", "t": 0.0},  # missing keys
    dict(task_event("start", 0.0, "q", "k", "o", "r", 1.0), extra=1),
    dict(task_event("begin", 0.0, "q", "k", "o", "r", 1.0)),  # bad verb
])
def test_validate_events_rejects_schema_breaks(bad):
    with pytest.raises(ValueError):
        validate_events([bad])


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("core", ["heap", "reference"])
def test_every_core_emits_exact_schema(obs_store, policy_name, core):
    ex = _contended_executor(obs_store, policy_name, core)
    ex.run()
    assert ex.trace_events
    for e in ex.trace_events:
        assert tuple(e) == TRACE_SCHEMA
    validate_events(ex.trace_events)


@pytest.mark.parametrize("policy_name", ["fifo", "edf"])
def test_fastpath_emits_exact_schema(obs_store, policy_name):
    ex = _fastpath_fleet(obs_store, policy_name)
    ex.run()
    assert ex.stats().core == "fastpath"
    assert ex.trace_events
    for e in ex.trace_events:
        assert tuple(e) == TRACE_SCHEMA
    validate_events(ex.trace_events)


# ---------------------------------------------------------------------------
# Cross-core stream parity
# ---------------------------------------------------------------------------


def _stream_bytes(ex) -> bytes:
    return json.dumps(ex.trace_events, sort_keys=True).encode()


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_heap_and_reference_streams_identical(obs_store, policy_name):
    a = _contended_executor(obs_store, policy_name, "heap")
    b = _contended_executor(obs_store, policy_name, "reference")
    a.run()
    b.run()
    assert _stream_bytes(a) == _stream_bytes(b)


@pytest.mark.parametrize("policy_name", ["fifo", "edf"])
def test_fastpath_stream_identical_to_both_cores(obs_store, policy_name):
    fast = _fastpath_fleet(obs_store, policy_name)
    heap = _fastpath_fleet(obs_store, policy_name, fastpath=False)
    ref = _fastpath_fleet(obs_store, policy_name, core="reference")
    fast.run()
    heap.run()
    ref.run()
    assert fast.stats().core == "fastpath"
    assert heap.stats().core == "heap"
    assert _stream_bytes(fast) == _stream_bytes(heap) == _stream_bytes(ref)


# ---------------------------------------------------------------------------
# Typed views
# ---------------------------------------------------------------------------


def test_intervals_reconstruct_submission_by_chain_rule(obs_store):
    ex = _contended_executor(obs_store, "fair")
    ex.run()
    intervals = intervals_from_events(ex.trace_events, ex.started_at)
    by_query = {}
    for iv in intervals:
        by_query.setdefault(iv.query, []).append(iv)
    for chain in by_query.values():
        # First task of a serial chain is submitted at run start; each
        # later task the instant its predecessor finished.
        assert chain[0].submit == ex.started_at
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.submit == prev.end
        for iv in chain:
            assert iv.start >= iv.submit
            assert iv.wait == pytest.approx(iv.start - iv.submit)
            assert iv.end == pytest.approx(iv.start + iv.duration)


def test_interval_waits_sum_to_session_waits(obs_store):
    ex = _contended_executor(obs_store, "fifo")
    outcomes = ex.run()
    intervals = intervals_from_events(ex.trace_events, ex.started_at)
    waited = {}
    for iv in intervals:
        waited[iv.query] = waited.get(iv.query, 0.0) + iv.wait
    for o in outcomes:
        assert waited[o.session.label] == pytest.approx(o.waited_seconds)


def test_query_spans_cover_latency(obs_store):
    ex = _contended_executor(obs_store, "fair")
    outcomes = ex.run()
    spans = {s.query: s for s in query_spans(ex.trace_events, ex.started_at)}
    assert len(spans) == len(outcomes)
    for o in outcomes:
        s = spans[o.session.label]
        assert s.latency == pytest.approx(o.latency)
        assert s.service_seconds == pytest.approx(o.service_seconds)
        assert not s.background
        # Service + wait per resource partitions the whole latency.
        total = (sum(s.service_by_resource.values())
                 + sum(s.wait_by_resource.values()))
        assert total == pytest.approx(s.latency)
        assert s.bound_resource in s.service_by_resource


def test_background_jobs_are_flagged():
    events = [
        task_event("start", 0.0, "bg:reencode", "read", "reencode",
                   "disk", 1.0),
        task_event("finish", 1.0, "bg:reencode", "read", "reencode",
                   "disk", 1.0),
        task_event("start", 1.0, "bg:reencode", "transcode", "reencode",
                   "decoder", 2.0),
        task_event("finish", 3.0, "bg:reencode", "transcode", "reencode",
                   "decoder", 2.0),
    ]
    (span,) = query_spans(events, 0.0)
    assert span.background
    assert span.n_tasks == 2


def test_dangling_start_raises():
    events = [task_event("start", 0.0, "q0", "retrieve", "NN", "disk", 1.0)]
    with pytest.raises(ValueError):
        intervals_from_events(events, 0.0)
