"""Detector operators: per-object detection with logistic size response.

A detector fires on objects whose *effective apparent size* — pixel height
scaled down by lost image detail — clears the operator's working point:

    p_detect(track, f) = sigmoid((log2(size_eff) - theta) / width)

where ``size_eff = track.size · res_height · feature_scale ·
detail(quality)^quality_alpha · contrast^0.5``.  This single expression
yields the three behaviours Section 2.4 documents:

* monotone accuracy in resolution and quality (O1);
* the quality/resolution interaction: at rich resolutions the logistic is
  saturated and quality barely matters, at poor resolutions a quality step
  moves accuracy a lot;
* per-operator differences: shallow specialized NNs (large theta, large
  quality_alpha) degrade much sooner than a full NN.

Scoring is frame-wise with label propagation, against the operator's own
output at the ingest fidelity: ground-truth positives are (track, frame)
pairs the operator detects at full fidelity; cropping removes objects from
view; sparse sampling misreads event boundaries; low quality adds excess
false positives.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.operators.accuracy import Confusion
from repro.operators.base import (
    Operator,
    QUALITY_DETAIL,
    logistic,
    propagation_map,
)
from repro.video.content import ClipTruth, Track
from repro.video.fidelity import Fidelity, RESOLUTIONS


class DetectorOperator(Operator):
    """Base class for per-object detectors (S-NN, NN, License, OCR, ...)."""

    #: Track kinds this operator looks for (e.g. only cars for S-NN).
    target_kinds: Tuple[str, ...] = ("car",)
    #: Only tracks with a readable plate are targets (License, OCR).
    requires_plate: bool = False
    #: Fraction of the object's height occupied by the detected feature
    #: (1.0 = the whole object; ~0.25 for a license plate).
    feature_scale: float = 1.0
    #: Logistic working point in log2(pixels) of effective feature height.
    theta: float = 3.0
    #: Logistic width; smaller = sharper accuracy cliff.
    width: float = 0.45
    #: Sensitivity to lost image detail (exponent on QUALITY_DETAIL).
    quality_alpha: float = 1.0
    #: Excess false positives per ingest frame at the poorest quality.
    fp_base: float = 0.03

    # -- detection model ---------------------------------------------------------

    def is_target(self, track: Track) -> bool:
        """Whether a track is the kind of object this operator looks for."""
        if track.kind not in self.target_kinds:
            return False
        if self.requires_plate and track.plate is None:
            return False
        return True

    def detection_prob(self, tracks: Sequence[Track],
                       fidelity: Fidelity) -> np.ndarray:
        """Per-track persistent detection probability at ``fidelity``."""
        if not tracks:
            return np.zeros(0)
        res_h = RESOLUTIONS[fidelity.resolution][1]
        detail = QUALITY_DETAIL[fidelity.quality] ** self.quality_alpha
        sizes = np.array([t.size for t in tracks])
        contrast = np.array([t.contrast for t in tracks])
        eff = sizes * res_h * self.feature_scale * detail * np.sqrt(contrast)
        p = logistic((np.log2(np.maximum(eff, 1e-6)) - self.theta) / self.width)
        targets = np.array([self.is_target(t) for t in tracks])
        return np.where(targets, p, 0.0)

    def fp_rate(self, fidelity: Fidelity) -> float:
        """Excess false positives per ingest frame (zero at best quality)."""
        lost_detail = 1.0 - QUALITY_DETAIL[fidelity.quality]
        return self.fp_base * lost_detail**1.5

    # -- scoring -------------------------------------------------------------------

    #: Displacement tolerance for a held (propagated) detection to still
    #: match the ground-truth box, relative to the object's own extent
    #: (boxes overlap until the object has moved a couple of widths).
    hold_match_scale: float = 3.0

    def _prediction_probs(
        self, clip: ClipTruth, fidelity: Fidelity
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(truth, p_pred, match) per (track, frame):

        * ``truth`` — the operator's ingest-fidelity output (presence);
        * ``p_pred`` — probability the operator claims the track present at
          the frame (detected at the covering sample, label held since);
        * ``match`` — probability the held detection still *matches* the
          ground-truth box: objects drift away from a stale box, so the
          match decays with (speed x hold gap) relative to object size.
          This is where sparse sampling costs detector accuracy.
        """
        p_full = self.detection_prob(clip.tracks, self.ingest_fidelity)
        detectable = p_full >= 0.5
        # Relative detection probability: 1 at ingest fidelity by definition.
        p_now = self.detection_prob(clip.tracks, fidelity)
        with np.errstate(divide="ignore", invalid="ignore"):
            p_rel = np.where(detectable, np.minimum(1.0, p_now / p_full), 0.0)

        truth = clip.visible & detectable[:, None]  # (nt, n)
        consumed = clip.consumed_index(fidelity)
        covering = propagation_map(clip.n_frames, consumed)  # (n,)
        vis_crop = clip.in_crop(fidelity.crop)
        # Probability the operator reports the track present at frame j:
        # it must be in the cropped view at the covering sample, and detected.
        present_at_sample = vis_crop[:, covering]
        p_pred = p_rel[:, None] * present_at_sample

        gaps = (np.arange(clip.n_frames) - covering) / float(clip.fps)  # (n,)
        if clip.tracks:
            drift = np.array([
                tr.speed * tr.duty / (self.hold_match_scale * tr.size + 0.1)
                for tr in clip.tracks
            ])
            match = np.exp(-drift[:, None] * gaps[None, :])
            # A held box cannot match once the object has left the cropped
            # view; the stale claim is then a miss plus a spurious box.
            match = match * vis_crop
        else:
            match = np.ones((0, clip.n_frames))
        return truth, p_pred, match

    def expected_confusion(self, clip: ClipTruth, fidelity: Fidelity) -> Confusion:
        n = clip.n_frames
        if not clip.tracks:
            return Confusion(0.0, self.fp_rate(fidelity) * n, 0.0)
        truth, p_pred, match = self._prediction_probs(clip, fidelity)
        hit = p_pred * match
        tp = float((hit * truth).sum())
        fn = float(((1.0 - hit) * truth).sum())
        # A drifted held box both misses the object (FN above) and claims a
        # detection where there is none (FP here); claims on frames where
        # the truth says absent are plain false positives.
        fp = (
            float((p_pred * ~truth).sum())
            + float((p_pred * (1.0 - match) * truth).sum())
            + self.fp_rate(fidelity) * n
        )
        return Confusion(tp, fp, fn)

    def expected_positive_fraction(self, clip: ClipTruth,
                                   fidelity: Fidelity) -> float:
        """Fraction of frames with at least one (possibly false) detection."""
        noise = min(1.0, self.fp_rate(fidelity))
        if not clip.tracks:
            return noise
        _, p_pred, _ = self._prediction_probs(clip, fidelity)
        p_any = 1.0 - np.prod(1.0 - p_pred, axis=0)  # (n,)
        combined = 1.0 - (1.0 - p_any) * (1.0 - noise)
        return float(np.mean(combined))

    # -- stochastic execution (examples, integration tests) ------------------------

    def run(self, clip: ClipTruth, fidelity: Fidelity,
            rng: np.random.Generator) -> np.ndarray:
        """Sample concrete per-frame detections: (n_consumed, n_tracks) bool."""
        consumed = clip.consumed_index(fidelity)
        if not clip.tracks:
            return np.zeros((len(consumed), 0), dtype=bool)
        p = self.detection_prob(clip.tracks, fidelity)
        persistent = rng.random(len(clip.tracks)) < p
        vis = clip.in_crop(fidelity.crop)[:, consumed]
        return (vis & persistent[:, None]).T
