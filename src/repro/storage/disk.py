"""Disk bandwidth/seek model (Section 2.2).

The paper's platform has an HDD array sustaining ~1 GB/s sequential reads;
decoding throughput (tens of MB/s) is far below that, so the disk only
becomes the bottleneck when loading raw frames.  This model preserves that
distinction: sequential segment reads are bandwidth-bound, sparse raw-frame
sampling pays a per-request overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.clock import SimClock
from repro.units import GB
from repro.video.fidelity import Fidelity


@dataclass
class DiskModel:
    """A disk array with sequential bandwidth and per-request overhead."""

    read_bandwidth: float = 1.0 * GB  # bytes per second, sequential
    write_bandwidth: float = 0.8 * GB
    request_overhead: float = 0.1e-3  # seconds per random request
    clock: SimClock = field(default_factory=SimClock)

    # -- charged operations ------------------------------------------------------

    @staticmethod
    def _validate(n_bytes: float, requests: int) -> None:
        # A negative size or request count would charge negative seconds,
        # silently rewinding the simulated clock.
        if n_bytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {n_bytes}")
        if requests < 0:
            raise ValueError(f"negative request count: {requests}")

    def read(self, n_bytes: float, requests: int = 1) -> float:
        """Charge a read of ``n_bytes`` split over ``requests`` random I/Os."""
        self._validate(n_bytes, requests)
        seconds = n_bytes / self.read_bandwidth + requests * self.request_overhead
        self.clock.charge(seconds, "disk")
        return seconds

    def write(self, n_bytes: float, requests: int = 1) -> float:
        """Charge a write of ``n_bytes``."""
        self._validate(n_bytes, requests)
        seconds = n_bytes / self.write_bandwidth + requests * self.request_overhead
        self.clock.charge(seconds, "disk")
        return seconds

    # -- speed estimates (no charging) ---------------------------------------------

    def sequential_read_speed(self, bytes_per_video_second: float) -> float:
        """Realtime multiple for streaming a format of the given data rate."""
        if bytes_per_video_second <= 0:
            return float("inf")
        return self.read_bandwidth / bytes_per_video_second

    def raw_read_speed(
        self,
        stored: Fidelity,
        frame_bytes: float,
        consumer_sampling: Optional[Fraction] = None,
    ) -> float:
        """Realtime multiple for reading raw frames of a stored format.

        Raw frames can be read individually (Table 3, note 2): a consumer
        sampling sparsely touches only its frames, paying one request
        overhead per frame; a consumer taking every stored frame streams the
        format sequentially with one request per frame batch.
        """
        if consumer_sampling is None:
            consumer_sampling = stored.sampling
        consumed_fps = min(float(stored.fps),
                           30.0 * float(consumer_sampling))
        if consumed_fps <= 0:
            return float("inf")
        # Strategy 1: scan the whole format sequentially, dropping frames.
        scan_seconds = (stored.fps * frame_bytes / self.read_bandwidth
                        + self.request_overhead / 8.0)
        # Strategy 2: read only the sampled frames, one request each.
        sparse_seconds = (consumed_fps * frame_bytes / self.read_bandwidth
                          + consumed_fps * self.request_overhead)
        # A competent reader picks whichever is faster.
        seconds = min(scan_seconds, sparse_seconds)
        return 1.0 / seconds if seconds > 0 else float("inf")


@dataclass(frozen=True)
class DiskBandwidthPool:
    """A bounded number of concurrent I/O channels over one disk array.

    The paper's HDD array sustains its sequential bandwidth over a small
    number of parallel streams; beyond that, requests queue.  The
    concurrent query executor models this by letting at most ``channels``
    raw-segment retrievals be in flight at once — further retrievals wait,
    which is where multi-tenant disk contention comes from.
    """

    channels: int = 4

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"need at least one I/O channel: {self.channels}")


#: Disk model shared by default (the paper's HDD RAID class of hardware).
DEFAULT_DISK = DiskModel()
