"""Always-on metrics: counters, gauges, and log-bucket histograms.

The observability plane's second leg: while the trace stream records
*events* (opt-in beyond small fleets — per-event dicts are too hot for
4096-query benchmarks), the metrics registry records *aggregates*, and
is cheap enough to stay on for every run:

* :class:`Counter` and :class:`Gauge` are one float each;
* :class:`Histogram` keeps fixed logarithmic buckets — an observation is
  two dict operations, and p50/p95/p99 come from the cumulative bucket
  counts without retaining a single sample.  Quantiles are therefore
  *bucket upper bounds* (resolution ~±12% at the default 8 buckets per
  decade), which is exactly the precision a regression gate needs and
  nothing a per-sample reservoir would have to pay for;
* :class:`MetricsRegistry` holds them by name and snapshots to one
  deterministic dict, ready for the columnar exporter and bench-diff.

The registry is fed by the executor at the end of every ``run()`` —
**inside** the wall-clock window ``ExecutorStats.wall_seconds`` reports,
so the CI perf-smoke overhead gate (metrics-on vs metrics-off smoke run
diffed at 5%) measures the true cost — and by the store facade from the
cache plane, the sharded disks, and the drift detector after each
``execute_many``.  Set ``REPRO_OBS_METRICS=0`` to detach the registry
(the A/B side of the overhead gate); everything else keeps working.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_enabled",
]

#: Log-bucket resolution: buckets per decade.  8 gives bucket edges
#: ~1.33x apart — ±~15% worst-case quantile error, 2 dict slots per
#: decade of dynamic range.
BUCKETS_PER_DECADE = 8

#: Environment switch for the always-on registry (read per store, so
#: tests can flip it): any of "0", "off", "no", "false" detaches it.
ENV_SWITCH = "REPRO_OBS_METRICS"


def metrics_enabled() -> bool:
    """Whether stores should attach the always-on registry (env gate)."""
    return os.environ.get(ENV_SWITCH, "1").lower() not in (
        "0", "off", "no", "false"
    )


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed log-bucket latency histogram; quantiles without samples.

    Bucket ``i`` covers ``(base**(i-1), base**i]`` with ``base =
    10**(1/BUCKETS_PER_DECADE)``; zero and negative observations land in
    a dedicated underflow bucket whose upper bound reports as 0.0.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: Dict[int, int] = field(default_factory=dict)

    _LOG_BASE = math.log(10.0) / BUCKETS_PER_DECADE
    _UNDERFLOW = -(10 ** 9)  # bucket index reserved for values <= 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            idx = self._UNDERFLOW
        else:
            idx = self._bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def _bucket_index(self, value: float) -> int:
        """Stable log-bucket index of a positive observation.

        The raw ``ceil(log(value) / LOG_BASE)`` can flip a value sitting
        exactly on a bucket boundary into the adjacent bucket: ``log``
        carries float error, so the quotient of a boundary value lands an
        ulp above or below the integer it should hit.  The index is
        therefore nudged until it satisfies the canonical bound function
        ``_bucket_upper`` — the unique ``i`` with
        ``upper(i - 1) < value <= upper(i)`` — which keeps the bucket
        assignment (and the bit-equal columnar export built on it)
        consistent with the reported bounds on every platform.
        """
        idx = math.ceil(math.log(value) / self._LOG_BASE)
        while value > self._bucket_upper(idx):
            idx += 1
        while value <= self._bucket_upper(idx - 1):
            idx -= 1
        return idx

    def _bucket_upper(self, idx: int) -> float:
        """Canonical upper bound of bucket ``idx`` (its reported value)."""
        return math.exp(idx * self._LOG_BASE)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation,
        clamped to the observed ``[min, max]`` range.

        ``q = 0`` returns the minimum observation itself: rank 0 is
        matched by the first occupied bucket, whose *upper* bound may sit
        a full bucket factor above the smallest sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min
        rank = q * self.count
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                if idx == self._UNDERFLOW:
                    # The underflow bucket holds the <= 0 observations;
                    # its reported bound is 0, clamped like any other.
                    upper = 0.0
                else:
                    upper = self._bucket_upper(idx)
                return max(self.min, min(upper, self.max))
        return self.max  # pragma: no cover - q=1 handled by >= above

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class MetricsRegistry:
    """Named counters/gauges/histograms with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    # -- cross-layer feeders ----------------------------------------------

    def observe_executor(self, stats, sessions: Iterable) -> None:
        """Fold one finished concurrent run into the registry.

        Called by ``ConcurrentExecutor.run()`` inside its timed window;
        cost is O(n_queries + n_resources), no per-event work.
        """
        self.counter("executor.runs").inc()
        self.counter("executor.events").inc(stats.events)
        self.gauge("executor.makespan_seconds").set(stats.makespan)
        self.gauge("executor.core").set(
            {"reference": 0.0, "heap": 1.0, "fastpath": 2.0}.get(
                stats.core, -1.0
            )
        )
        for resource in sorted(stats.busy_seconds):
            util = stats.utilization(resource)
            if util is not None:
                self.gauge(f"resource.{resource}.utilization").set(util)
            self.gauge(f"resource.{resource}.busy_seconds").set(
                stats.busy_seconds[resource]
            )
        latency = self.histogram("query.latency_seconds")
        wait = self.histogram("query.wait_seconds")
        slowdown = self.histogram("query.slowdown")
        for session in sessions:
            if session.finished_at is None:  # pragma: no cover - defensive
                continue
            if session.klass != 0:
                self.counter("executor.background_jobs").inc()
                continue
            self.counter("executor.queries").inc()
            lat = session.finished_at - session.arrival_at
            latency.observe(lat)
            wait.observe(session.waited_seconds)
            service = session.plan.service_seconds
            if service > 0:
                slowdown.observe(lat / service)
            elif lat > 0:
                # A zero-service outcome that still waited: its slowdown
                # is infinite (pure queueing), which a log-bucket
                # histogram cannot hold — count it honestly instead of
                # recording a fictitious 1.0.
                self.counter("executor.pure_wait_queries").inc()
            else:
                slowdown.observe(1.0)

    def observe_wall(self, stats) -> None:
        """Record the run's host-side wall accounting (post-run).

        Separate from :meth:`observe_executor` because the run wall is
        only known after the timed window closes; includes the
        plan/admit wall the PR-8 bugfix made honest.
        """
        self.histogram("executor.run_wall_seconds").observe(
            stats.wall_seconds
        )
        self.histogram("executor.admit_wall_seconds").observe(
            stats.admit_wall_seconds
        )
        if stats.events_per_second > 0:
            self.gauge("executor.events_per_second").set(
                stats.events_per_second
            )

    def observe_cache(self, cache_stats) -> None:
        """Mirror the cache plane's cumulative counters as gauges."""
        for tier, counters in (("frames", cache_stats.frames),
                               ("results", cache_stats.results)):
            self.gauge(f"cache.{tier}.hits").set(counters.hits)
            self.gauge(f"cache.{tier}.misses").set(counters.misses)
            self.gauge(f"cache.{tier}.evictions").set(counters.evictions)
        self.gauge("cache.single_flight_hits").set(
            cache_stats.single_flight_hits
        )
        self.gauge("cache.single_flight_wakeups").set(
            cache_stats.single_flight_wakeups
        )
        self.gauge("cache.seconds_saved").set(cache_stats.seconds_saved)

    def observe_disks(self, disk_array) -> None:
        """Per-shard busy-seconds and health gauges from the disk plane."""
        self.gauge("disk.shards").set(disk_array.n_shards)
        for i in range(disk_array.n_shards):
            self.gauge(f"disk.shard{i}.read_seconds").set(
                disk_array.busy_read_seconds[i]
            )
            self.gauge(f"disk.shard{i}.write_seconds").set(
                disk_array.busy_write_seconds[i]
            )
        if not disk_array.healthy or disk_array.failures_injected:
            # Resilience plane: only materializes once a campaign (or a
            # direct health flip) touched the array, so failure-free
            # snapshots keep their pre-existing key set.
            for i in range(disk_array.n_shards):
                state = disk_array.shard_state(i)
                self.gauge(f"disk.shard{i}.failed").set(
                    1.0 if state == "failed" else 0.0
                )
                self.gauge(f"disk.shard{i}.degrade_factor").set(
                    disk_array.degrade_factor(i)
                )
            self.gauge("failures.injected").set(disk_array.failures_injected)
            lost = disk_array.lost_keys()
            self.gauge("failures.lost_keys").set(len(lost))
            self.gauge("failures.lost_bytes").set(sum(lost.values()))
            self.gauge("failures.replicas_rebuilt").set(
                disk_array.replicas_rebuilt
            )
            self.gauge("failures.rebuilt_bytes").set(disk_array.rebuilt_bytes)

    def observe_kvstore(self, kv) -> None:
        """Crash-recovery counters from the segment log (reopen repair)."""
        self.gauge("kv.torn_truncations").set(kv.torn_truncations)
        self.gauge("kv.dropped_bytes").set(kv.dropped_bytes)
        self.gauge("kv.recovered_bytes").set(kv.recovered_bytes)

    def observe_drift(self, detector) -> None:
        """Drift-detector state after an ``execute_many``."""
        self.gauge("drift.score").set(detector.drift_score())
        self.gauge("drift.samples").set(detector.samples)
        self.gauge("drift.drifted").set(1.0 if detector.drifted else 0.0)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """One deterministic, JSON-ready view of every instrument."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out["histograms"][name] = {
                "count": h.count,
                "mean": h.mean,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "p50": h.p50,
                "p95": h.p95,
                "p99": h.p99,
            }
        return out

    def rows(self) -> List[Dict[str, object]]:
        """Snapshot flattened to columnar rows (one instrument per row)."""
        snap = self.snapshot()
        rows: List[Dict[str, object]] = []
        for name, value in snap["counters"].items():
            rows.append({"metric": name, "type": "counter", "value": value,
                         "count": None, "p50": None, "p95": None,
                         "p99": None})
        for name, value in snap["gauges"].items():
            rows.append({"metric": name, "type": "gauge", "value": value,
                         "count": None, "p50": None, "p95": None,
                         "p99": None})
        for name, h in snap["histograms"].items():
            rows.append({"metric": name, "type": "histogram",
                         "value": h["mean"], "count": h["count"],
                         "p50": h["p50"], "p95": h["p95"], "p99": h["p99"]})
        return rows
