"""Online evolution under query-mix drift: the end-to-end contract.

The scenario mirrors :mod:`repro.analysis.drift`: a store configured for
the query-B operators (whose golden format is rich enough to serve
anything) faces a drifted all-query-A mix.  These tests pin the four
load-bearing properties of the stack:

* the incremental re-planner is a no-op on a stationary mix and matches
  the from-scratch derivation;
* ``evolve_online`` materializes the missing formats with background
  jobs, commits the epoch, retires dropped formats, and actually makes
  the drifted queries cheaper;
* foreground query *results* are bit-identical with and without
  background jobs contending — evolution may slow queries down, never
  change their answers;
* an epoch that never committed rolls back at reopen (crash recovery),
  while a committed evolution survives a restart byte-for-byte.
"""

import pytest

from repro.clock import SimClock
from repro.codec.decoder import DecoderPool
from repro.codec.encoder import Encoder
from repro.codec.model import DEFAULT_CODEC
from repro.core.config import derive_configuration
from repro.core.evolve import (
    decide_consumers,
    legacy_configuration,
    replan_incremental,
)
from repro.core.store import VStore
from repro.operators.library import Consumer, default_library
from repro.query.scheduler import OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.units import DAY, SEGMENT_SECONDS

PHASE1 = (Consumer("Motion", 0.9), Consumer("License", 0.9),
          Consumer("OCR", 0.9))
PHASE2 = (Consumer("Diff", 0.9), Consumer("S-NN", 0.9), Consumer("NN", 0.9))
OPERATORS = tuple(c.operator for c in PHASE1 + PHASE2)
N_SEGMENTS = 4
T1 = N_SEGMENTS * SEGMENT_SECONDS - 1.0


def build_store(workdir, consumers=PHASE1) -> VStore:
    store = VStore(workdir=str(workdir),
                   library=default_library(names=OPERATORS))
    store.configure(consumers=list(consumers))
    store.ingest("jackson", n_segments=N_SEGMENTS)
    return store


def specs(query: str, count: int):
    return [{"query": query, "dataset": "jackson", "accuracy": 0.9,
             "t0": 0.0, "t1": T1} for _ in range(count)]


def adopt_legacy(store: VStore) -> None:
    decisions = decide_consumers(
        store.library, PHASE2, clock=store.clock,
        known={d.consumer: d for d in store.configuration.decisions},
    )
    store.adopt(legacy_configuration(store.configuration, decisions))


def pools():
    return {"disk_pool": DiskBandwidthPool(1),
            "decoder_pool": DecoderPool(1),
            "operator_pool": OperatorContextPool(2)}


def retrieval_seconds(outcomes):
    return sum(t.duration
               for o in outcomes if o.session.klass == 0
               for stage in o.session.plan.stages
               for t in stage.tasks if t.kind == "retrieve")


# -- incremental re-planning --------------------------------------------------


def test_stationary_replan_is_a_noop(tmp_path):
    with build_store(tmp_path) as store:
        config = store.configuration
        replan = replan_incremental(config, store.library, list(PHASE1))
        assert not replan.changed
        assert not replan.added and not replan.removed
        assert ({sf.label for sf in replan.configuration.plan.formats}
                == {sf.label for sf in config.plan.formats})
        # Every consumer was already decided: zero new profiling runs.
        assert replan.configuration.stats.operator_runs == 0


def test_incremental_matches_from_scratch_on_stationary_mix(tmp_path):
    with build_store(tmp_path) as store:
        replan = replan_incremental(store.configuration, store.library,
                                    list(PHASE1))
        scratch = derive_configuration(
            store.library, consumers=list(PHASE1),
            profile_datasets=store.profile_datasets,
        )
        assert ({sf.label for sf in replan.configuration.plan.formats}
                == {sf.label for sf in scratch.plan.formats})
        golden = next(sf.label for sf in replan.configuration.plan.formats
                      if sf.golden)
        assert golden == next(sf.label for sf in scratch.plan.formats
                              if sf.golden)


def test_replan_warm_start_reuses_coding_memos(tmp_path):
    with build_store(tmp_path) as store:
        profiler = store.configuration.coding_profiler
        runs_before = profiler.stats.runs
        hits_before = profiler.stats.memo_hits
        replan_incremental(store.configuration, store.library, list(PHASE1))
        # Stationary: every coding-surface probe is a memo hit on the
        # warm profiler — not a single fresh run.
        assert profiler.stats.runs == runs_before
        assert profiler.stats.memo_hits > hits_before


def test_replan_rejects_empty_mix(tmp_path):
    from repro.errors import ConfigurationError

    with build_store(tmp_path) as store:
        with pytest.raises(ConfigurationError):
            replan_incremental(store.configuration, store.library, [])


# -- evolve_online ------------------------------------------------------------


@pytest.fixture()
def drifted_store(tmp_path):
    """Phase-1 store that served phase-1, then saw a drifted phase-2 mix."""
    with build_store(tmp_path / "drifted") as store:
        store.execute_many(specs("B", 4))
        adopt_legacy(store)
        store.execute_many(specs("A", 4))
        yield store


def test_evolve_online_materializes_commits_and_improves(drifted_store):
    store = drifted_store
    assert store.drift.drifted
    before = retrieval_seconds(store.execute_many(specs("A", 2))) / 2.0

    report = store.evolve_online(foreground=specs("A", 1), **pools())
    replan = report.replan
    assert replan.changed and replan.added
    assert report.epoch == 1
    assert store.segments.committed_epoch == 1
    assert report.reencoded_segments == N_SEGMENTS * len(replan.added)
    # Every added format is now materialized for every stored segment...
    for sf in replan.added:
        assert store.segments.indices("jackson", sf.fmt) == \
            list(range(N_SEGMENTS))
    # ...and every dropped format is gone.
    for sf in replan.removed:
        assert store.segments.indices("jackson", sf.fmt) == []
    # The shared run really interleaved foreground and background work.
    assert len(report.foreground) == 1
    assert report.jobs
    assert report.stats.makespan > 0

    after = retrieval_seconds(store.execute_many(specs("A", 2))) / 2.0
    assert after < 0.5 * before
    # Adopting the evolved plan re-pinned the drift baseline.
    store.execute_many(specs("A", 4))
    assert store.drift.drift_score() < store.drift.threshold


def test_evolution_preserves_query_answers(drifted_store):
    store = drifted_store
    before = store.execute_many(specs("A", 1) + specs("B", 1))
    store.evolve_online(**pools())
    after = store.execute_many(specs("A", 1) + specs("B", 1))
    for pre, post in zip(before, after):
        assert post.result.positives_per_stage == \
            pre.result.positives_per_stage
        assert post.result.segments_per_stage == \
            pre.result.segments_per_stage


def test_foreground_results_bit_identical_under_contention(tmp_path):
    """The acceptance bar: background jobs may delay foreground queries,
    but their results — positives, segment counts, planned task durations —
    are bit-identical to an uncontended run of the same specs."""
    fleet = specs("A", 2) + specs("B", 1)

    with build_store(tmp_path / "alone") as alone:
        adopt_legacy(alone)
        baseline = alone.execute_many(fleet, **pools())

    with build_store(tmp_path / "contended") as store:
        adopt_legacy(store)
        store.execute_many(specs("A", 4))  # warm the drift window
        report = store.evolve_online(foreground=fleet, **pools())

    assert len(report.foreground) == len(baseline)
    for base, contended in zip(baseline, report.foreground):
        assert contended.session.klass == 0
        assert contended.result.positives_per_stage == \
            base.result.positives_per_stage
        assert contended.result.segments_per_stage == \
            base.result.segments_per_stage
        base_tasks = [(t.kind, t.duration)
                      for st in base.session.plan.stages for t in st.tasks]
        cont_tasks = [(t.kind, t.duration)
                      for st in contended.session.plan.stages
                      for t in st.tasks]
        assert base_tasks == cont_tasks
    # Background jobs ran in class 1 and did real work on shared pools.
    assert all(o.session.klass == 1 for o in report.jobs)
    assert report.stats.busy_seconds


def test_evolve_without_drift_is_harmless(tmp_path):
    with build_store(tmp_path) as store:
        store.execute_many(specs("B", 4))
        report = store.evolve_online(**pools())
        assert not report.replan.changed
        assert report.reencoded_segments == 0
        assert report.retired_segments == 0


# -- crash recovery (format epochs) -------------------------------------------


def test_uncommitted_epoch_rolls_back_at_reopen(drifted_store):
    store = drifted_store
    segments = store.segments
    golden = store.configuration.plan.golden.fmt
    meta = segments.meta("jackson", golden, 0)
    target = next(
        sf.fmt for sf in replan_incremental(
            store.configuration, store.library,
            store.drift.demanded_consumers(),
        ).added
    )

    epoch = segments.begin_epoch()
    encoded = Encoder(DEFAULT_CODEC, SimClock()).encode(
        meta.segment, target, meta.activity
    )
    segments.put(encoded, epoch=epoch, charge=False)
    assert segments.indices("jackson", target) == [0]

    # Crash before commit_epoch: the orphan segment must not survive.
    store.reopen()
    assert store.segments.committed_epoch == 0
    assert store.segments.indices("jackson", target) == []
    assert store.segments.indices("jackson", golden) == \
        list(range(N_SEGMENTS))


def test_committed_evolution_survives_reopen(drifted_store):
    store = drifted_store
    report = store.evolve_online(**pools())
    assert report.replan.changed
    before = store.execute_many(specs("A", 1))

    store.reopen()
    assert store.segments.committed_epoch == report.epoch
    for sf in report.replan.added:
        assert store.segments.indices("jackson", sf.fmt) == \
            list(range(N_SEGMENTS))
    after = store.execute_many(specs("A", 1))
    assert retrieval_seconds(after) == retrieval_seconds(before)
    assert after[0].result.positives_per_stage == \
        before[0].result.positives_per_stage


# -- background erosion -------------------------------------------------------


def test_age_online_matches_foreground_age(tmp_path):
    now = (12 + 1) * DAY  # every segment is past the 10-day lifespan
    with build_store(tmp_path / "fg") as fg:
        expected = fg.age("jackson", now)
    with build_store(tmp_path / "bg") as bg:
        deletions, outcomes = bg.age_online("jackson", now, **pools())
        assert deletions == expected > 0
        assert outcomes and all(o.session.klass == 1 for o in outcomes)
        for fmt in list(bg.segments.formats("jackson")):
            assert bg.segments.indices("jackson", fmt) == \
                fg.segments.indices("jackson", fmt)


def test_age_online_with_foreground_queries(tmp_path):
    now = 2 * DAY  # young footage: nothing to erode without a budget
    with build_store(tmp_path) as store:
        deletions, outcomes = store.age_online(
            "jackson", now, foreground=specs("B", 2), **pools()
        )
        assert deletions == 0
        assert len([o for o in outcomes if o.session.klass == 0]) == 2
