"""Analysis helpers: the Focus model (Section 7) and table rendering."""

import pytest

from repro.analysis.focus import DEFAULT_ALPHA, FocusComparison
from repro.analysis.tables import (
    format_configuration_table,
    format_erosion_table,
    format_query_speed_table,
)


class TestFocus:
    def test_paper_example_points(self):
        """Section 7: with alpha = 1/48, r = 3 at f = 1%, 1.2 at 10%,
        1.04 at 50%."""
        model = FocusComparison()
        assert model.query_delay_ratio(0.01) == pytest.approx(3.08, abs=0.1)
        assert model.query_delay_ratio(0.10) == pytest.approx(1.21, abs=0.02)
        assert model.query_delay_ratio(0.50) == pytest.approx(1.04, abs=0.01)

    def test_default_alpha(self):
        assert DEFAULT_ALPHA == pytest.approx(1 / 48)

    def test_ratio_falls_with_selectivity(self):
        model = FocusComparison()
        sweep = model.sweep((0.01, 0.05, 0.2, 1.0))
        values = list(sweep.values())
        assert values == sorted(values, reverse=True)

    def test_cheaper_cheap_nn_shrinks_gap(self):
        # "As the speed gap between the two NNs enlarges, the query delay
        # difference quickly diminishes."
        assert (FocusComparison(alpha=1 / 200).query_delay_ratio(0.01)
                < FocusComparison(alpha=1 / 48).query_delay_ratio(0.01))

    def test_ingest_cost_favours_vstore(self):
        # Section 7 estimates 2-3x higher ingest hardware cost for Focus.
        assert 2.0 <= FocusComparison().ingest_cost_ratio() <= 3.0

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            FocusComparison().query_delay_ratio(0.0)
        with pytest.raises(ValueError):
            FocusComparison().query_delay_ratio(1.5)


class TestTables:
    def test_configuration_table_mentions_all_operators(self, configuration):
        text = format_configuration_table(configuration)
        for op in ("Diff", "S-NN", "NN", "Motion", "License", "OCR"):
            assert op in text
        assert "SFg" in text
        assert "Storage formats:" in text

    def test_query_speed_table(self):
        rows = [
            {"dataset": "jackson", "accuracy": 0.9, "scheme": "VStore",
             "speed": 120.0},
        ]
        text = format_query_speed_table(rows)
        assert "jackson" in text and "120x" in text

    def test_erosion_table(self, configuration):
        text = format_erosion_table(configuration)
        assert "decay factor" in text
        assert "overall speed" in text
