"""The VStore facade: configure, ingest, query, age — one object.

This is the public entry point a downstream user works with::

    store = VStore(workdir="/tmp/vstore")
    config = store.configure()
    store.ingest("jackson", n_segments=8)
    report = store.query("A", dataset="jackson", accuracy=0.9,
                         duration=3600.0)
    print(report.speed)  # x realtime

Everything underneath — profiling, backward derivation, transcoding fan-out,
segment storage, retrieval, cascade execution, erosion — is reachable through
the subpackages, but the facade covers the common paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.query.scheduler import ConcurrentExecutor, QueryOutcome

from repro.cache.plane import CacheConfig, CachePlane, CacheStats
from repro.clock import SimClock
from repro.core.config import (
    Configuration,
    DEFAULT_PROFILE_DATASETS,
    derive_configuration,
)
from repro.core.drift import DriftDetector
from repro.core.evolve import (
    EvolutionReport,
    erosion_jobs,
    reencode_jobs,
    replan_incremental,
    retirement_jobs,
)
from repro.errors import ConfigurationError, QueryError, StorageError
from repro.ingest.budget import IngestBudget
from repro.obs import MetricsRegistry, Observability, RunRecord, metrics_enabled
from repro.ingest.pipeline import IngestionPipeline, IngestionReport
from repro.operators.library import OperatorLibrary, default_library
from repro.query.cascade import cascade_for
from repro.query.engine import ExecutionResult, QueryEngine, QueryReport
from repro.storage.kvstore import KVStore
from repro.storage.lifespan import apply_erosion_step
from repro.storage.segment_store import SegmentStore
from repro.storage.sharding import (
    PlacementPolicy,
    RebalanceReport,
    ShardedDiskArray,
)


@dataclass(frozen=True)
class ServeReport:
    """Everything one :meth:`VStore.serve` run produced."""

    outcomes: List["QueryOutcome"]
    slo: "object"  # repro.analysis.slo.SLOReport (import-cycle-free)
    stats: "object"  # repro.query.scheduler.ExecutorStats
    #: Resilience numbers when the run carried a failure campaign
    #: (:class:`~repro.analysis.availability.AvailabilityReport`);
    #: ``None`` for failure-free runs.
    availability: Optional[object] = None


class VStore:
    """A data store for analytics on large videos."""

    def __init__(
        self,
        workdir: Optional[str] = None,
        library: Optional[OperatorLibrary] = None,
        profile_datasets: Optional[Dict[str, str]] = None,
        ingest_budget: IngestBudget = IngestBudget(),
        storage_budget_bytes: Optional[float] = None,
        lifespan_days: int = 10,
        cache_config: Optional[CacheConfig] = None,
        shards: int = 1,
        placement: "str | PlacementPolicy" = "hash",
        replication: int = 1,
    ):
        self.library = library or default_library()
        self.profile_datasets = dict(profile_datasets or DEFAULT_PROFILE_DATASETS)
        self.ingest_budget = ingest_budget
        self.storage_budget_bytes = storage_budget_bytes
        self.lifespan_days = lifespan_days
        self.clock = SimClock()
        self._config: Optional[Configuration] = None
        self._pipelines: Dict[str, IngestionPipeline] = {}
        self._closed = False
        self._shards = shards
        self._placement = placement
        self._replication = replication
        self._cache_config = cache_config

        #: Sliding-window demand estimator over executed queries; fed by
        #: :meth:`execute_many` and read by :meth:`evolve_online` to decide
        #: whether (and toward which consumer mix) to evolve.
        self.drift = DriftDetector()

        #: The always-on metrics registry every in-process concurrent run
        #: feeds (executor aggregates, cache plane, sharded disks, drift).
        #: ``REPRO_OBS_METRICS=0`` detaches it from executors without
        #: removing it — :meth:`observability` keeps working either way.
        self.metrics = MetricsRegistry()
        #: Trace record of the most recent in-process concurrent run
        #: (:meth:`execute_many` / :meth:`evolve_online` / :meth:`age_online`);
        #: None until one runs with tracing on.
        self.last_run: Optional[RunRecord] = None

        # The tiered retrieval cache spans the whole store; passing any
        # CacheConfig enables it (None keeps the uncached read path).
        self.cache: Optional[CachePlane] = (
            CachePlane(cache_config) if cache_config is not None else None
        )

        # The sharded storage plane.  One shard is bit-identical to the
        # pre-sharding single DiskModel; more shards spread segments by
        # ``placement`` ("round-robin" | "hash" | "locality" or a policy
        # instance) and let concurrent retrievals overlap.
        # ``replication=k`` keeps every segment on k distinct shards, so
        # the store survives shard failures (see repro.storage.failures).
        self.disk_array = ShardedDiskArray(shards, placement=placement,
                                           clock=self.clock,
                                           replication=replication)

        self.workdir = workdir
        self.segments: Optional[SegmentStore] = None
        self._kv: Optional[KVStore] = None
        if workdir is not None:
            os.makedirs(workdir, exist_ok=True)
            self._kv = KVStore(os.path.join(workdir, "segments.vstore"))
            self.segments = SegmentStore(self._kv, self.disk_array)
            # Writes and deletes (re-ingest, erosion) invalidate the cache.
            self.segments.cache = self.cache

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backing store.  Safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        if self._kv is not None:
            self._kv.close()

    def flush(self) -> None:
        """Push buffered segment-log writes to the OS."""
        if self._kv is not None:
            self._kv.flush()

    def reopen(self) -> None:
        """Close and reopen the backing store (a simulated restart).

        Re-handles the segment log, rebuilds the sharded placement map
        from persisted metadata, and rolls back any format epoch that
        never committed — the crash-recovery path an interrupted
        :meth:`evolve_online` relies on.  A fresh cache plane is installed
        (cached artifacts do not survive a restart); the derived
        configuration and the simulated clock are kept.
        """
        if self.workdir is None:
            raise StorageError("reopen requires a workdir-backed store")
        if self._kv is not None:
            self._kv.close()
        self._closed = False
        self.disk_array = ShardedDiskArray(
            self._shards, placement=self._placement, clock=self.clock,
            replication=self._replication,
        )
        self._kv = KVStore(os.path.join(self.workdir, "segments.vstore"))
        self.segments = SegmentStore(self._kv, self.disk_array)
        self.cache = (
            CachePlane(self._cache_config)
            if self._cache_config is not None else None
        )
        self.segments.cache = self.cache
        self._pipelines.clear()

    def reopen_after_fork(self) -> None:
        """Re-handle the backing log in a forked worker process.

        Forked children share the parent's file offset; a worker running
        queries must call this once before reading (see
        :mod:`repro.query.parallel`, which does so automatically).
        """
        if self._kv is not None:
            self._kv.reopen_after_fork()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "this VStore is closed; create a new instance (close() "
                "released the backing segment store)"
            )

    def __enter__(self) -> "VStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- configuration -------------------------------------------------------------

    def configure(self, force: bool = False,
                  consumers: Optional[List] = None) -> Configuration:
        """Derive (or return the cached) video-format configuration.

        ``consumers`` restricts the derivation to an explicit consumer set
        (defaults to every consumer the library declares) — drift scenarios
        configure phase-1 consumers here and let :meth:`evolve_online`
        admit the rest later.
        """
        if self._config is None or force or consumers is not None:
            self._config = derive_configuration(
                self.library,
                consumers=consumers,
                profile_datasets=self.profile_datasets,
                ingest_budget=self.ingest_budget,
                storage_budget_bytes=self.storage_budget_bytes,
                lifespan_days=self.lifespan_days,
                clock=self.clock,
            )
            self.drift.rebase(self._config.consumers)
        return self._config

    @property
    def configuration(self) -> Configuration:
        if self._config is None:
            raise ConfigurationError("call configure() before using the store")
        return self._config

    # -- ingestion ------------------------------------------------------------------

    def _pipeline(self, dataset: str,
                  stream: Optional[str] = None) -> IngestionPipeline:
        key = stream or dataset
        if key not in self._pipelines:
            self._pipelines[key] = IngestionPipeline(
                dataset,
                self.configuration.storage_formats,
                store=self.segments,
                clock=self.clock,
                budget=self.ingest_budget,
                stream=stream,
            )
        pipeline = self._pipelines[key]
        if pipeline.dataset != dataset:
            # One stream has one content model; silently reusing the cached
            # pipeline would ingest the wrong dataset's statistics.
            raise ConfigurationError(
                f"stream {key!r} already ingests dataset "
                f"{pipeline.dataset!r}, not {dataset!r}"
            )
        return pipeline

    def ingest(self, dataset: str, n_segments: int,
               start_index: int = 0, stream: Optional[str] = None) -> None:
        """Transcode and store ``n_segments`` of a stream in every SF.

        ``stream`` stores the segments under an alias (defaults to the
        dataset name), so one content model can back many fleet cameras.
        """
        self._check_open()
        if self.segments is None:
            raise ConfigurationError("ingestion requires a workdir-backed store")
        self._pipeline(dataset, stream).ingest_segments(n_segments, start_index)

    def ingestion_report(self, dataset: str,
                         stream: Optional[str] = None) -> IngestionReport:
        """Analytic per-stream storage and transcode cost (Figure 11b/c).

        For an aliased stream, pass the same ``stream`` used at ingest.
        """
        return self._pipeline(dataset, stream).report()

    # -- queries ------------------------------------------------------------------------

    def engine(self, dataset: str) -> QueryEngine:
        self._check_open()
        return QueryEngine(self.configuration, self.library, dataset,
                           cache=self.cache)

    def query(self, query: str, dataset: str, accuracy: float,
              duration: float) -> QueryReport:
        """Analytic end-to-end speed of a benchmark query ("A" or "B")."""
        return self.engine(dataset).estimate(
            cascade_for(query), accuracy, duration
        )

    def execute(self, query: str, dataset: str, accuracy: float,
                t0: float, t1: float, core: str = "heap",
                trace: Optional[bool] = None) -> ExecutionResult:
        """Actually run a query over stored segments.

        ``core`` picks the executor engine: the O(log n) ``"heap"`` event
        loop (default) or the legacy ``"reference"`` rescan loop — the
        two produce bit-identical results.  ``trace`` forces per-event
        trace recording on or off (``None`` = automatic by fleet size).
        """
        self._check_open()
        if self.segments is None:
            raise QueryError("execution requires a workdir-backed store")
        return self.engine(dataset).execute(
            cascade_for(query), accuracy, self.segments, t0, t1, core=core,
            trace=trace,
        )

    # -- concurrent queries ---------------------------------------------------------

    def executor(self, **kwargs) -> "ConcurrentExecutor":
        """A fresh concurrent executor over this store's segments.

        Keyword arguments (``policy``, ``disk_pool``, ``decoder_pool``,
        ``operator_pool``, ``clock``) pass through to
        :class:`~repro.query.scheduler.ConcurrentExecutor`; pools left
        unset are uncontended.
        """
        from repro.query.scheduler import ConcurrentExecutor

        self._check_open()
        if self.segments is None:
            raise QueryError("concurrent execution requires a workdir-backed store")
        kwargs.setdefault("cache", self.cache)
        kwargs.setdefault(
            "metrics", self.metrics if metrics_enabled() else None
        )
        return ConcurrentExecutor(
            self.configuration, self.library, self.segments, **kwargs
        )

    def serve(self, tenants, horizon: float, *, seed: object = 0,
              admission=None, failures=None, **kwargs):
        """Serve an open-loop multi-tenant workload against this store.

        Builds each tenant's deterministic arrival stream and query mix
        (:func:`~repro.query.workload.build_workload`), admits the whole
        timeline up front — every query carrying its ``arrival``,
        ``tenant`` and SLO ``deadline`` — and runs one executor that
        processes arrivals as simulated-time events.  ``admission``
        (an :class:`~repro.query.scheduler.AdmissionConfig`) bounds the
        in-flight set; its per-tenant quotas and weights default to the
        :class:`~repro.query.workload.TenantSpec` fields when left
        unset.  Remaining keyword arguments configure the executor
        (``policy``, ``core``, pools — see :meth:`executor`).

        ``failures`` injects a failure campaign into the run: a
        :class:`~repro.storage.failures.FailureCampaign`, a sequence of
        :class:`~repro.storage.failures.FailureEvent`, or a CLI-style
        spec string (``"fail@10:0,recover@60:0"``), with event times on
        the workload timeline.  Each arrival is planned under the shard
        health prevailing at its instant — reads route to the fastest
        surviving replica, degraded shards cost their slowdown factor —
        queries already in flight when a shard dies complete with their
        planned reads, and every replica a ``fail`` destroys becomes a
        background re-replication job (scheduling class 1, arriving at
        the failure instant) contending with foreground queries for the
        per-shard I/O channels.

        Returns a :class:`ServeReport`: the per-query outcomes, the
        :class:`~repro.analysis.slo.SLOReport` (latency quantiles,
        deadline-miss rates, tenant fairness, queue-depth timeline), the
        run's :class:`~repro.query.scheduler.ExecutorStats`, and — for
        campaign runs — the
        :class:`~repro.analysis.availability.AvailabilityReport`
        (data-loss check, degraded-window slowdown, rebuild time).
        """
        from dataclasses import replace

        from repro.analysis.slo import slo_report
        from repro.query.workload import build_workload, workload_specs

        self._check_open()
        if admission is not None:
            quotas = {t.name: t.quota for t in tenants
                      if t.quota is not None}
            weights = {t.name: t.weight for t in tenants
                       if t.weight != 1.0}
            if admission.tenant_quotas is None and quotas:
                admission = replace(admission, tenant_quotas=quotas)
            if admission.tenant_weights is None and weights:
                admission = replace(admission, tenant_weights=weights)
        arrivals = build_workload(tenants, horizon, seed)
        executor = self.executor(admission=admission, **kwargs)
        campaign = None
        if failures is not None:
            campaign = self._as_campaign(failures)
            campaign.validate_for(self.disk_array)
            self._admit_with_failures(
                executor, workload_specs(arrivals), campaign
            )
        else:
            self._admit_specs(executor, workload_specs(arrivals))
        outcomes = executor.run()
        self.drift.observe_run(outcomes)
        self._observe_run(executor)
        stats = executor.stats()
        report = slo_report(
            outcomes,
            queue_timeline=executor.admission_timeline,
            makespan=stats.makespan,
        )
        availability = None
        if campaign is not None:
            from repro.analysis.availability import availability_report

            availability = availability_report(
                campaign, self.disk_array, outcomes
            )
        return ServeReport(outcomes=outcomes, slo=report, stats=stats,
                           availability=availability)

    @staticmethod
    def _as_campaign(failures):
        """Coerce the ``failures`` argument into a FailureCampaign."""
        from repro.storage.failures import FailureCampaign

        if isinstance(failures, FailureCampaign):
            return failures
        if isinstance(failures, str):
            return FailureCampaign.parse(failures)
        return FailureCampaign(events=tuple(failures))

    def _admit_with_failures(self, executor, specs, campaign) -> None:
        """Admit an open-loop workload interleaved with a campaign.

        Plans are fixed at admission, so replica-aware routing has to
        happen here: walking arrivals and campaign events together in
        time order applies each health transition to the array *before*
        planning the queries that arrive after it (events win ties — a
        query arriving as the shard dies sees it dead).  A ``fail``'s
        lost replicas become re-replication jobs admitted at the failure
        instant; the events themselves go onto the executor timeline
        observationally (:meth:`ConcurrentExecutor.schedule_failures`) —
        the mutations already happened here, replaying them would
        double-apply.
        """
        from repro.storage.failures import apply_event, rebuild_jobs

        events = list(campaign.events)
        ei = 0

        def fire_until(t: float) -> None:
            nonlocal ei
            while ei < len(events) and events[ei].t <= t:
                event = events[ei]
                work = apply_event(self.disk_array, event)
                if work and self.segments is not None:
                    for job in rebuild_jobs(self.segments, work):
                        executor.admit_job(job, arrival=event.t)
                ei += 1

        for spec in specs:
            fire_until(float(spec["arrival"]))
            self._admit_specs(executor, [spec])
        fire_until(float("inf"))
        executor.schedule_failures(events)

    def inject_failures(self, failures):
        """Apply a failure campaign to the storage plane immediately.

        The event times are ignored (everything lands "now"); returns
        the background re-replication jobs
        (:class:`~repro.query.scheduler.BackgroundJob`) that would
        restore full redundancy, for the caller to admit into an
        executor.  :meth:`serve` with ``failures=`` is the timeline-true
        flow; this is the direct hook for tests and consoles.
        """
        from repro.storage.failures import apply_event, rebuild_jobs

        self._check_open()
        campaign = self._as_campaign(failures)
        campaign.validate_for(self.disk_array)
        jobs = []
        for event in campaign.events:
            work = apply_event(self.disk_array, event)
            if work and self.segments is not None:
                jobs.extend(rebuild_jobs(self.segments, work))
        return jobs

    def execute_many(self, specs, parallel: Optional[int] = None, **kwargs):
        """Admit and run many queries at once against shared resources.

        Each spec is a mapping with ``query`` ("A"/"B" or a cascade),
        ``dataset``, ``accuracy``, ``t0``, ``t1``, plus the optional
        ``stream``, ``contexts`` and ``deadline`` admission knobs.
        Remaining keyword arguments configure the executor (see
        :meth:`executor`); outcomes come back in admission order.

        With ``parallel=N``, ``specs`` is instead a sequence of
        *independent fleets* (each a sequence of specs as above); the
        fleets are partitioned across ``N`` forked worker processes,
        each fleet on a fresh ``SimClock`` and without a cache plane,
        and the per-fleet
        :class:`~repro.analysis.concurrency.ConcurrencyReport`\\ s come
        back in fleet order (see :mod:`repro.query.parallel` for the
        isolation rules and :func:`~repro.query.parallel.merge_reports`
        for the aggregate view).  ``parallel=1`` runs the same fleets
        in-process with identical semantics — bit-equal reports.
        """
        if parallel is not None:
            from repro.query.parallel import run_fleets

            self._check_open()
            return run_fleets(self, specs, parallel, **kwargs)
        executor = self.executor(**kwargs)
        self._admit_specs(executor, specs)
        outcomes = executor.run()
        # Cross-layer feedback: fold the finished queries into the drift
        # detector's sliding demand window (observation only — it cannot
        # change scheduling, so outcomes stay bit-identical).
        self.drift.observe_run(outcomes)
        self._observe_run(executor)
        return outcomes

    def _observe_run(self, executor: "ConcurrentExecutor") -> None:
        """Retain the run's trace and feed the store-level metric planes.

        Executor aggregates were already folded in by ``run()`` itself
        (inside its timed window); here the store adds what the executor
        cannot see — cache plane, sharded disks, drift detector — and
        keeps the trace for :meth:`observability`.
        """
        self.last_run = RunRecord(
            events=list(executor.trace_events),
            started_at=executor.started_at,
            stats=executor.stats(),
        )
        if executor.metrics is None:
            return
        if self.cache is not None:
            executor.metrics.observe_cache(self.cache.stats())
        executor.metrics.observe_disks(self.disk_array)
        if self._kv is not None:
            executor.metrics.observe_kvstore(self._kv)
        executor.metrics.observe_drift(self.drift)

    def observability(self) -> Observability:
        """The store's observability facade: last trace + metrics.

        One object answers "what happened and where did time go": typed
        spans, critical paths, queue depths, Chrome-trace and columnar
        exports over the most recent concurrent run, plus the always-on
        metrics registry (see :mod:`repro.obs`).
        """
        return Observability(metrics=self.metrics, last_run=self.last_run)

    @staticmethod
    def _admit_specs(executor: "ConcurrentExecutor", specs) -> None:
        for spec in specs:
            spec = dict(spec)
            query = spec.pop("query")
            if isinstance(query, str):
                query = cascade_for(query)
            executor.admit(
                query, spec.pop("dataset"), spec.pop("accuracy"),
                spec.pop("t0"), spec.pop("t1"), **spec
            )

    # -- online evolution -----------------------------------------------------------

    def adopt(self, configuration: Configuration) -> None:
        """Swap in an externally built configuration without re-deriving.

        The Section-7 stopgap path: a frozen store answering a drifted mix
        adopts :func:`~repro.core.evolve.legacy_configuration`'s result —
        same format set as what is on disk, new consumers subscribed to
        existing formats.  Cached ingestion pipelines are dropped.  The
        drift baseline is deliberately *not* re-pinned: a stopgap adoption
        is exactly the situation where the detector must keep measuring
        the live mix against what the plan was actually derived for.
        """
        self._config = configuration
        self._pipelines.clear()

    def evolve_online(self, consumers: Optional[List] = None,
                      foreground=(), **executor_kwargs) -> EvolutionReport:
        """Evolve the configuration toward a drifted mix, without downtime.

        The incremental planner (:func:`~repro.core.evolve.replan_incremental`)
        hill-climbs a new plan from the current one — warm-started via the
        configuration's coding-profiler memos — for ``consumers``
        (defaulting to the drift detector's observed mix).  New storage
        formats are materialized by background re-encode jobs that contend
        honestly with any ``foreground`` query specs (same format as
        :meth:`execute_many`) on one shared executor, in scheduling class 1
        so foreground work always wins ties.  Writes are tagged with an
        uncommitted format epoch; the epoch commits only after every job
        finished, so a crash mid-evolution rolls back cleanly at reopen
        (see :meth:`reopen`).  Only then is the new configuration adopted,
        dropped formats are retired, and the drift baseline is re-pinned.
        """
        self._check_open()
        if self.segments is None:
            raise ConfigurationError(
                "online evolution requires a workdir-backed store"
            )
        config = self.configuration
        if consumers is None:
            consumers = self.drift.demanded_consumers() or list(config.consumers)
        replan = replan_incremental(
            config, self.library, consumers,
            profile_datasets=self.profile_datasets,
            ingest_budget=self.ingest_budget,
            storage_budget_bytes=self.storage_budget_bytes,
            lifespan_days=self.lifespan_days,
            clock=self.clock,
        )

        epoch = self.segments.begin_epoch()
        golden = config.plan.golden.fmt
        new_formats = [sf.fmt for sf in replan.added]
        jobs = []
        for stream in self.segments.streams():
            jobs.extend(reencode_jobs(
                self.segments, stream, new_formats, golden, epoch=epoch
            ))

        executor = self.executor(**executor_kwargs)
        self._admit_specs(executor, foreground)
        for job in jobs:
            executor.admit_job(job)
        outcomes = executor.run() if (jobs or foreground) else []
        stats = executor.stats()
        self.drift.observe_run(outcomes)
        if jobs or foreground:
            self._observe_run(executor)
        self.segments.commit_epoch(epoch)

        # Retire dropped formats only after the new plan is committed — a
        # crash between commit and retirement leaves harmless extra bytes,
        # never a half-materialized format.
        retired_formats = [sf.fmt for sf in replan.removed]
        retired = 0
        if retired_formats:
            cleaner = self.executor(**executor_kwargs)
            retire = []
            for stream in self.segments.streams():
                retire.extend(retirement_jobs(
                    self.segments, stream, retired_formats
                ))
            if retire:
                for job in retire:
                    cleaner.admit_job(job)
                outcomes = outcomes + cleaner.run()
                retired = sum(len(j.tasks) for j in retire)

        self._config = replan.configuration
        self._pipelines.clear()
        self.drift.rebase(replan.configuration.consumers)
        return EvolutionReport(
            replan=replan,
            epoch=epoch,
            outcomes=outcomes,
            stats=stats,
            reencoded_segments=sum(
                1 for j in jobs for t in j.tasks if t.kind == "write"
            ),
            retired_segments=retired,
        )

    def age_online(self, dataset: str, now_seconds: float,
                   foreground=(), **executor_kwargs):
        """Erosion as background jobs sharing the executor with queries.

        Selects exactly the victims :meth:`age` would delete, but pays each
        delete's request overhead on the executor's shard channel pools in
        scheduling class 1, committing the store deletes at the simulated
        completion instants.  Returns ``(deletions, outcomes)`` — the
        deletions made and every outcome of the shared run in admission
        order (foreground queries first, then the erosion job).
        """
        self._check_open()
        if self.segments is None:
            raise ConfigurationError("aging requires a workdir-backed store")
        config = self.configuration
        jobs = []
        if config.erosion is not None:
            fraction_map = config.erosion.deleted_fraction_map(
                config.plan.formats
            )
            jobs = erosion_jobs(
                self.segments, dataset, fraction_map, now_seconds,
                self.lifespan_days,
            )
        executor = self.executor(**executor_kwargs)
        self._admit_specs(executor, foreground)
        for job in jobs:
            executor.admit_job(job)
        outcomes = executor.run() if (jobs or foreground) else []
        self.drift.observe_run(outcomes)
        if jobs or foreground:
            self._observe_run(executor)
        return sum(len(j.tasks) for j in jobs), outcomes

    # -- caching --------------------------------------------------------------------

    def set_cache(self, cache_config: Optional[CacheConfig]) -> Optional[CachePlane]:
        """Install a fresh cache plane (or disable caching) at runtime.

        Lets an operator resize or re-policy the cache without reopening
        the store; the previous plane's contents and counters are dropped.
        """
        self.cache = (
            CachePlane(cache_config) if cache_config is not None else None
        )
        if self.segments is not None:
            self.segments.cache = self.cache
        return self.cache

    def cache_stats(self) -> CacheStats:
        """Snapshot of the tiered retrieval cache (hit rates, savings).

        Requires the store to have been built with ``cache_config``.
        """
        if self.cache is None:
            raise ConfigurationError(
                "caching is disabled; construct the store with "
                "VStore(cache_config=CacheConfig(...))"
            )
        return self.cache.stats()

    # -- sharding -------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.disk_array.n_shards

    def rebalance(self) -> RebalanceReport:
        """Migrate segments between disk shards to restore byte balance.

        The migration I/O (source read + destination write) is charged to
        the simulated clock; placements are rewritten in segment metadata
        so the new layout survives reopen.  No-op on single-shard stores.
        """
        self._check_open()
        if self.segments is None:
            raise ConfigurationError("rebalancing requires a workdir-backed store")
        return self.segments.rebalance()

    def sharding_report(self, stats=None):
        """Per-shard occupancy/utilization/imbalance report.

        Pass a :class:`~repro.query.scheduler.ExecutorStats` (from a
        concurrent run) to include per-shard channel-pool utilization and
        the achieved parallel-retrieval speedup.
        """
        from repro.analysis.sharding import sharding_report

        if self.segments is None:
            raise ConfigurationError(
                "sharding reports require a workdir-backed store"
            )
        return sharding_report(self.segments, stats)

    # -- aging ----------------------------------------------------------------------------

    def age(self, dataset: str, now_seconds: float) -> int:
        """Apply the erosion plan to stored footage; returns deletions."""
        self._check_open()
        if self.segments is None:
            raise ConfigurationError("aging requires a workdir-backed store")
        config = self.configuration
        if config.erosion is None:
            return 0
        fraction_map = config.erosion.deleted_fraction_map(config.plan.formats)
        return apply_erosion_step(
            self.segments, dataset, fraction_map, now_seconds,
            self.lifespan_days,
        )
