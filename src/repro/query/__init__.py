"""Query execution: operator cascades streaming data out of the store.

A query is a cascade of operators (Figure 2): early cheap operators scan
the whole queried timespan and activate later, costlier operators over the
fraction of frames they flag.  The engine estimates (and, against a real
segment store, measures) per-stage speeds as the minimum of retrieval and
consumption speed, and composes them with cascade selectivities into the
end-to-end "x realtime" query speed of Figure 11a.
"""

from repro.query.alternatives import (
    AlternativeScheme,
    one_to_n_scheme,
    one_to_one_scheme,
    n_to_n_scheme,
    vstore_scheme,
)
from repro.query.cascade import QUERY_A, QUERY_B, QueryCascade
from repro.query.engine import ExecutionResult, QueryEngine, QueryReport, StageReport
from repro.query.scheduler import (
    ConcurrentExecutor,
    DeadlinePolicy,
    DispatchResult,
    ExecutorStats,
    FIFOPolicy,
    FairSharePolicy,
    OperatorContextPool,
    QueryOutcome,
    QueryPlan,
    QuerySession,
    ResourceTask,
    SchedulingPolicy,
    StagePlan,
    dispatch,
)

__all__ = [
    "AlternativeScheme",
    "ConcurrentExecutor",
    "DeadlinePolicy",
    "QUERY_A",
    "QUERY_B",
    "QueryCascade",
    "DispatchResult",
    "ExecutorStats",
    "FIFOPolicy",
    "FairSharePolicy",
    "OperatorContextPool",
    "QueryOutcome",
    "QueryPlan",
    "QuerySession",
    "ResourceTask",
    "SchedulingPolicy",
    "StagePlan",
    "dispatch",
    "ExecutionResult",
    "QueryEngine",
    "QueryReport",
    "StageReport",
    "n_to_n_scheme",
    "one_to_n_scheme",
    "one_to_one_scheme",
    "vstore_scheme",
]
