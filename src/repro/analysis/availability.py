"""Availability analysis of serving runs under failure campaigns.

The SLO report (:mod:`repro.analysis.slo`) answers "how fast"; this one
answers the resilience questions a failure campaign raises: did any data
die (it must not while concurrent failures stay below the replication
factor), how much slower were the queries that arrived inside the
impaired window than the ones that arrived outside it, and how long did
background re-replication take to restore full redundancy.

Impairment windows come from the campaign itself — a shard is impaired
from its ``fail``/``degrade`` instant until its ``recover`` (or the end
of the run) — and a query is attributed to the impaired window by its
*arrival* instant, the open-loop convention every other serving number
uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.scheduler import QueryOutcome
from repro.storage.failures import FailureCampaign
from repro.storage.sharding import ShardedDiskArray

__all__ = [
    "AvailabilityReport",
    "availability_report",
    "format_availability_table",
    "impairment_windows",
]


def impairment_windows(
    campaign: FailureCampaign,
    end: float,
) -> List[Tuple[float, float, int, str]]:
    """``(start, stop, shard, action)`` spans the campaign impaired.

    One span per ``fail``/``degrade`` event, closed by that shard's next
    ``recover`` (or clamped to ``end``).  Spans may overlap across
    shards; a fail immediately following a degrade of the same shard
    closes the degrade span.
    """
    open_spans: Dict[int, Tuple[float, str]] = {}
    windows: List[Tuple[float, float, int, str]] = []

    def close(shard: int, t: float) -> None:
        started = open_spans.pop(shard, None)
        if started is not None:
            windows.append((started[0], t, shard, started[1]))

    for event in campaign.events:
        if event.action == "recover":
            close(event.shard, event.t)
        else:
            close(event.shard, event.t)  # degrade→fail flips the span
            open_spans[event.shard] = (event.t, event.action)
    for shard, (t0, action) in sorted(open_spans.items()):
        windows.append((t0, max(end, t0), shard, action))
    windows.sort()
    return windows


@dataclass(frozen=True)
class AvailabilityReport:
    """Resilience outcome of one serving run under a failure campaign."""

    replication: int  # the store's replica factor k
    n_events: int
    n_failures: int  # "fail" events in the campaign
    max_concurrent_failures: int  # the campaign's f
    #: Data loss: keys whose every replica died.  Zero whenever the
    #: campaign kept ``f < k`` (the property the chaos gate pins).
    lost_keys: int
    lost_bytes: float
    #: Background re-replication outcome.
    replicas_rebuilt: int
    rebuilt_bytes: float
    rebuild_jobs: int
    #: Simulated instant the last rebuild job finished (``None`` when the
    #: campaign scheduled none) and the span from the first failure to it.
    rebuild_done_at: Optional[float]
    rebuild_seconds: Optional[float]
    #: Foreground latency inside vs outside the impaired windows,
    #: attributed by arrival instant.
    degraded_queries: int
    healthy_queries: int
    degraded_mean_latency: float
    healthy_mean_latency: float

    @property
    def data_lost(self) -> bool:
        return self.lost_keys > 0

    @property
    def degraded_slowdown(self) -> float:
        """Mean degraded-window latency over mean healthy latency.

        1.0 when either side is empty — no basis for a comparison.
        """
        if not self.degraded_queries or not self.healthy_queries:
            return 1.0
        if self.healthy_mean_latency <= 0:
            return 1.0
        return self.degraded_mean_latency / self.healthy_mean_latency


def availability_report(
    campaign: FailureCampaign,
    array: ShardedDiskArray,
    outcomes: Sequence[QueryOutcome],
    *,
    end: Optional[float] = None,
) -> AvailabilityReport:
    """Roll one served failure campaign up into its resilience numbers.

    ``outcomes`` is the full :meth:`~repro.core.store.VStore.serve`
    outcome list — foreground queries drive the degraded/healthy latency
    split, scheduling-class-1 sessions whose plan is a re-replication
    job (operator ``"rebuild"``) drive the rebuild-time numbers.
    ``end`` clamps still-open impairment windows (default: the last
    finish among the outcomes, or the last event time).
    """
    fails = campaign.fail_events
    foreground = [o for o in outcomes if o.session.klass == 0]
    rebuilds = [
        o for o in outcomes
        if o.session.klass == 1
        and o.session.plan.stages[0].operator == "rebuild"
    ]
    if end is None:
        finishes = [o.session.finished_at for o in outcomes
                    if o.session.finished_at is not None]
        last_event = campaign.events[-1].t if len(campaign) else 0.0
        end = max(finishes + [last_event]) if finishes else last_event
    windows = impairment_windows(campaign, end)

    def impaired(t: float) -> bool:
        return any(t0 <= t < t1 for t0, t1, _, _ in windows)

    degraded = [o.latency for o in foreground if impaired(o.session.arrival_at)]
    healthy = [o.latency for o in foreground
               if not impaired(o.session.arrival_at)]
    rebuild_done = (
        max(o.session.finished_at for o in rebuilds) if rebuilds else None
    )
    first_fail = fails[0].t if fails else None
    rebuild_seconds = (
        rebuild_done - first_fail
        if rebuild_done is not None and first_fail is not None else None
    )
    lost = array.lost_keys()
    return AvailabilityReport(
        replication=array.replication,
        n_events=len(campaign),
        n_failures=len(fails),
        max_concurrent_failures=campaign.max_concurrent_failures(),
        lost_keys=len(lost),
        lost_bytes=sum(lost.values()),
        replicas_rebuilt=array.replicas_rebuilt,
        rebuilt_bytes=array.rebuilt_bytes,
        rebuild_jobs=len(rebuilds),
        rebuild_done_at=rebuild_done,
        rebuild_seconds=rebuild_seconds,
        degraded_queries=len(degraded),
        healthy_queries=len(healthy),
        degraded_mean_latency=(
            sum(degraded) / len(degraded) if degraded else 0.0
        ),
        healthy_mean_latency=(
            sum(healthy) / len(healthy) if healthy else 0.0
        ),
    )


def format_availability_table(report: AvailabilityReport) -> str:
    """Fixed-width availability summary for the CLI."""
    lines = [
        "availability",
        f"  replication k      {report.replication}",
        f"  events             {report.n_events} "
        f"({report.n_failures} fail, peak f={report.max_concurrent_failures})",
        f"  data lost          "
        + (f"YES: {report.lost_keys} keys / {report.lost_bytes:.0f} B"
           if report.data_lost else "no"),
        f"  replicas rebuilt   {report.replicas_rebuilt} "
        f"({report.rebuilt_bytes:.0f} B, {report.rebuild_jobs} jobs)",
    ]
    if report.rebuild_seconds is not None:
        lines.append(
            f"  rebuild window     {report.rebuild_seconds:.3f} s "
            f"(done at t={report.rebuild_done_at:.3f})"
        )
    lines.append(
        f"  degraded window    {report.degraded_queries} queries, "
        f"mean {report.degraded_mean_latency:.3f} s "
        f"(healthy: {report.healthy_queries} @ "
        f"{report.healthy_mean_latency:.3f} s, "
        f"slowdown ×{report.degraded_slowdown:.2f})"
    )
    return "\n".join(lines)
