"""The sharded multi-disk storage plane: placement, parity, rebalance.

CI runs these modules twice (SHARDS=1 and SHARDS=4) so both the
degenerate and the genuinely sharded configurations stay covered; tests
that need a specific shard count pin it explicitly.
"""

import os

import pytest

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.core.store import VStore
from repro.errors import StorageError
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import FIFOPolicy
from repro.storage.disk import DiskBandwidthPool, DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.segment_store import SegmentStore
from repro.storage.sharding import (
    HashPlacement,
    LocalityAwarePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    ShardedDiskArray,
    placement_named,
    plan_rebalance,
)
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

#: CI matrix knob: the generic sharded tests run at this width.
N_SHARDS = int(os.environ.get("SHARDS", "4"))

FMT_A = StorageFormat(Fidelity.parse("good-540p-1/6-100%"), Coding("fast", 10))
FMT_B = StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW)

QUERY_LIB_NAMES = ("Diff", "S-NN", "NN", "Motion", "License", "OCR")


def _encode(fmt, index, stream="cam", activity=0.4):
    return Encoder(clock=SimClock()).encode(
        Segment(stream, index), fmt, activity=activity
    )


class _PinToZero(PlacementPolicy):
    """Test policy: everything lands on shard 0 (maximally skewed)."""

    name = "pin0"

    def choose(self, array, stream, fmt_text, index, nbytes, activity):
        return 0


# ---------------------------------------------------------------------------
# The array itself
# ---------------------------------------------------------------------------


class TestShardedDiskArray:
    def test_rejects_zero_shards(self):
        with pytest.raises(StorageError):
            ShardedDiskArray(0)

    def test_unknown_placement_rejected(self):
        with pytest.raises(StorageError):
            ShardedDiskArray(2, placement="no-such-policy")
        assert placement_named("hash").name == "hash"
        assert placement_named(HashPlacement()).name == "hash"

    def test_all_shards_share_one_clock(self):
        array = ShardedDiskArray(max(2, N_SHARDS))
        array.read_at(0, 1e6)
        array.read_at(array.n_shards - 1, 1e6)
        assert all(d.clock is array.clock for d in array.disks)
        assert array.clock.spent("disk") > 0
        assert array.busy_read_seconds[0] > 0
        assert array.busy_read_seconds[array.n_shards - 1] > 0

    def test_one_shard_read_bit_identical_to_disk_model(self):
        clock_a, clock_b = SimClock(), SimClock()
        single = DiskModel(clock=clock_a)
        array = ShardedDiskArray(1, clock=clock_b)
        assert single.read(12_345_678, requests=3) == array.read(
            12_345_678, requests=3
        )
        assert clock_a.now == clock_b.now
        assert clock_a.by_category == clock_b.by_category

    def test_disk_model_compat_surface(self):
        array = ShardedDiskArray(2)
        assert array.read_bandwidth == array.disks[0].read_bandwidth
        assert array.sequential_read_speed(1e6) == array.disks[0].sequential_read_speed(1e6)

    def test_migrate_charges_both_sides(self):
        array = ShardedDiskArray(2)
        seconds = array.migrate(0, 1, 8e6)
        expected = (8e6 / array.disks[0].read_bandwidth
                    + array.disks[0].request_overhead
                    + 8e6 / array.disks[1].write_bandwidth
                    + array.disks[1].request_overhead)
        assert seconds == pytest.approx(expected)
        assert array.clock.spent("migrate") == pytest.approx(expected)
        assert array.busy_migrate_seconds[0] > 0
        assert array.busy_migrate_seconds[1] > 0
        assert array.migrated_bytes == 8e6

    def test_adopt_folds_out_of_range_shards(self):
        array = ShardedDiskArray(2)
        shard = array.adopt("cam", "fmt", 0, shard=5, nbytes=100.0)
        assert shard == 5 % 2
        assert array.folded_placements == 1

    def test_place_is_sticky_and_tracks_bytes(self):
        array = ShardedDiskArray(N_SHARDS, placement="round-robin")
        first = array.place("cam", "f", 0, 100.0)
        again = array.place("cam", "f", 0, 250.0)  # overwrite, bigger
        assert first == again
        assert array.shard_bytes[first] == 250.0
        assert array.locate("cam", "f", 0) == first
        array.forget("cam", "f", 0)
        assert array.locate("cam", "f", 0) is None
        assert array.shard_bytes[first] == 0.0


class TestPlacementPolicies:
    def test_round_robin_rotates(self):
        array = ShardedDiskArray(3, placement="round-robin")
        shards = [array.place("cam", "f", i, 10.0) for i in range(7)]
        assert shards == [0, 1, 2, 0, 1, 2, 0]

    def test_hash_is_order_independent_and_colocates_formats(self):
        a = ShardedDiskArray(5, placement="hash")
        b = ShardedDiskArray(5, placement="hash")
        keys = [("cam", "f1", i) for i in range(10)] + [
            ("cam", "f2", i) for i in range(10)
        ]
        for k in keys:
            a.place(*k, nbytes=10.0)
        for k in reversed(keys):
            b.place(*k, nbytes=10.0)
        assert a.assignments() == b.assignments()
        for i in range(10):
            assert a.locate("cam", "f1", i) == a.locate("cam", "f2", i)

    def test_locality_colocates_formats_and_spreads_hot(self):
        array = ShardedDiskArray(4, placement=LocalityAwarePlacement())
        # Hot segments go least-loaded: four hot segments spread out.
        hot = [array.place("cam", "f1", i, 100.0, activity=0.9)
               for i in range(4)]
        assert sorted(hot) == [0, 1, 2, 3]
        # Later formats of the same segments follow the first placement.
        for i in range(4):
            assert array.place("cam", "f2", i, 50.0, activity=0.9) == hot[i]

    def test_locality_groups_cold_segments_by_stream(self):
        array = ShardedDiskArray(4, placement=LocalityAwarePlacement())
        cold_a = {array.place("quiet", "f", i, 10.0, activity=0.1)
                  for i in range(6)}
        cold_b = {array.place("still", "f", i, 10.0, activity=0.1)
                  for i in range(6)}
        assert len(cold_a) == 1 and len(cold_b) == 1


# ---------------------------------------------------------------------------
# Store integration
# ---------------------------------------------------------------------------


@pytest.fixture()
def sharded_store(tmp_path):
    kv = KVStore(str(tmp_path / "segments.log"))
    array = ShardedDiskArray(max(2, N_SHARDS), placement="round-robin")
    yield SegmentStore(kv, array)
    kv.close()


class TestStoreIntegration:
    def test_put_records_shard_and_charges_it(self, sharded_store):
        store = sharded_store
        store.put(_encode(FMT_A, 0))
        store.put(_encode(FMT_A, 1))
        assert store.meta("cam", FMT_A, 0).shard == 0
        assert store.meta("cam", FMT_A, 1).shard == 1
        assert store.array.busy_write_seconds[0] > 0
        assert store.array.busy_write_seconds[1] > 0

    def test_get_charges_assigned_shard(self, sharded_store):
        store = sharded_store
        store.put(_encode(FMT_A, 0))
        store.put(_encode(FMT_A, 1))
        before = list(store.array.busy_read_seconds)
        store.get("cam", FMT_A, 1)
        after = store.array.busy_read_seconds
        assert after[1] > before[1]
        assert after[0] == before[0]

    def test_delete_forgets_placement(self, sharded_store):
        store = sharded_store
        store.put(_encode(FMT_A, 0))
        assert store.shard_of("cam", FMT_A, 0) == 0
        store.delete("cam", FMT_A, 0)
        assert store.array.locate("cam", store._key("cam", FMT_A, 0)
                                  .split("/")[1], 0) is None
        assert store.array.shard_bytes == [0.0] * store.n_shards

    def test_placement_survives_reopen(self, tmp_path):
        path = str(tmp_path / "segments.log")
        kv = KVStore(path)
        store = SegmentStore(kv, ShardedDiskArray(3, placement="round-robin"))
        for i in range(5):
            store.put(_encode(FMT_A, i))
        placed = {i: store.meta("cam", FMT_A, i).shard for i in range(5)}
        kv.close()

        kv = KVStore(path)
        store2 = SegmentStore(kv, ShardedDiskArray(3, placement="round-robin"))
        for i in range(5):
            assert store2.meta("cam", FMT_A, i).shard == placed[i]
            assert store2.shard_of("cam", FMT_A, i) == placed[i]
        # Round-robin continues from the restored count.
        store2.put(_encode(FMT_A, 99))
        assert store2.meta("cam", FMT_A, 99).shard == 5 % 3
        kv.close()

    def test_reopen_with_fewer_shards_folds_and_stays_readable(self, tmp_path):
        """A store written on a wide array reopened on a narrow one folds
        placements (shard % n) — and every lookup, including the charged
        get(), works against the *folded* shard, never the persisted one."""
        path = str(tmp_path / "segments.log")
        kv = KVStore(path)
        wide = SegmentStore(kv, ShardedDiskArray(8, placement="round-robin"))
        for i in range(8):
            wide.put(_encode(FMT_A, i))
        assert {wide.meta("cam", FMT_A, i).shard for i in range(8)} == set(range(8))
        kv.close()

        kv = KVStore(path)
        narrow = SegmentStore(kv, ShardedDiskArray(2))
        assert narrow.array.folded_placements > 0
        for i in range(8):
            meta = narrow.get("cam", FMT_A, i)  # charges the folded shard
            assert meta.shard == i % 2
            assert narrow.shard_of("cam", FMT_A, i) == i % 2
        assert sum(narrow.array.busy_read_seconds) > 0
        kv.close()

    def test_pre_sharding_store_reads_as_shard_zero(self, tmp_path):
        """A store written before sharding carries no shard field — every
        segment folds onto shard 0 and all lookups keep working."""
        path = str(tmp_path / "segments.log")
        kv = KVStore(path)
        plain = SegmentStore(kv, DiskModel(clock=SimClock()))
        plain.put(_encode(FMT_A, 7))
        kv.close()

        kv = KVStore(path)
        sharded = SegmentStore(kv, ShardedDiskArray(4))
        assert sharded.meta("cam", FMT_A, 7).shard == 0
        assert sharded.shard_of("cam", FMT_A, 7) == 0
        kv.close()

    def test_disk_params_follow_heterogeneous_shards(self, tmp_path):
        kv = KVStore(str(tmp_path / "segments.log"))
        clock = SimClock()
        disks = [DiskModel(clock=clock),
                 DiskModel(read_bandwidth=2e8, request_overhead=5e-4,
                           clock=clock)]
        array = ShardedDiskArray(placement="round-robin", disks=disks,
                                 clock=clock)
        store = SegmentStore(kv, array)
        store.put(_encode(FMT_B, 0))  # shard 0
        store.put(_encode(FMT_B, 1))  # shard 1
        assert store.disk_params_for("cam", FMT_B, 0) == (
            disks[0].read_bandwidth, disks[0].request_overhead
        )
        assert store.disk_params_for("cam", FMT_B, 1) == (2e8, 5e-4)
        kv.close()


class TestRebalance:
    def test_rebalance_restores_balance_and_loses_nothing(self, tmp_path):
        kv = KVStore(str(tmp_path / "segments.log"))
        array = ShardedDiskArray(max(2, N_SHARDS), placement=_PinToZero())
        store = SegmentStore(kv, array)
        for i in range(8):
            store.put(_encode(FMT_A, i))
            store.put(_encode(FMT_B, i))
        metas_before = {
            (fmt.label, i): store.meta("cam", fmt, i).size_bytes
            for fmt in (FMT_A, FMT_B) for i in range(8)
        }
        footprint_before = store.footprint("cam")
        assert array.shard_bytes[0] == footprint_before  # fully skewed
        migrate_before = array.clock.spent("migrate")

        report = store.rebalance()

        assert report.moves > 0
        assert report.imbalance_after < report.imbalance_before
        assert array.clock.spent("migrate") > migrate_before
        assert report.seconds == pytest.approx(
            array.clock.spent("migrate") - migrate_before
        )
        # Conservation: every segment readable, sizes and totals unchanged.
        for fmt in (FMT_A, FMT_B):
            for i in range(8):
                meta = store.meta("cam", fmt, i)
                assert meta.size_bytes == metas_before[(fmt.label, i)]
                assert meta.shard == store.shard_of("cam", fmt, i)
        assert store.footprint("cam") == footprint_before
        assert sum(array.shard_bytes) == pytest.approx(footprint_before)

        # The new layout survives reopen.
        layout = {(fmt.label, i): store.meta("cam", fmt, i).shard
                  for fmt in (FMT_A, FMT_B) for i in range(8)}
        kv.close()
        kv = KVStore(str(tmp_path / "segments.log"))
        store2 = SegmentStore(kv, ShardedDiskArray(array.n_shards))
        for (label, i), shard in layout.items():
            fmt = FMT_A if label == FMT_A.label else FMT_B
            assert store2.meta("cam", fmt, i).shard == shard
        kv.close()

    def test_rebalance_noop_on_single_shard(self, tmp_path):
        kv = KVStore(str(tmp_path / "segments.log"))
        store = SegmentStore(kv, ShardedDiskArray(1))
        store.put(_encode(FMT_A, 0))
        report = store.rebalance()
        assert report.moves == 0
        assert report.seconds == 0.0
        kv.close()

    def test_rebalance_noop_on_plain_disk_model(self, tmp_path):
        kv = KVStore(str(tmp_path / "segments.log"))
        store = SegmentStore(kv, DiskModel(clock=SimClock()))
        store.put(_encode(FMT_A, 0))
        assert store.rebalance().moves == 0
        kv.close()


# ---------------------------------------------------------------------------
# End to end through the facade and the executor
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_stores(tmp_path_factory):
    """The same fleet ingested into a 1-shard and an N-shard store."""
    lib = default_library(names=QUERY_LIB_NAMES)
    stores = {}
    for shards in (1, max(2, N_SHARDS)):
        store = VStore(
            workdir=str(tmp_path_factory.mktemp(f"shards{shards}")),
            library=lib, shards=shards,
        )
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        stores[shards] = store
    yield stores
    for store in stores.values():
        store.close()


class TestEndToEnd:
    def test_single_shard_parity_with_pre_sharding_store(self, fleet_stores):
        """shards=1 must charge bit-identical time to the pre-sharding
        sequential reference (the original plain-DiskModel loop)."""
        store = fleet_stores[1]
        engine = store.engine("jackson")
        new = engine.execute(QUERY_A, 0.9, store.segments, 0.0, 32.0)
        ref = engine._execute_sequential(QUERY_A, 0.9, store.segments,
                                         0.0, 32.0)
        assert new.compute_seconds == ref.compute_seconds  # bit-identical
        assert new.positives_per_stage == ref.positives_per_stage
        assert new.segments_per_stage == ref.segments_per_stage

    def test_shard_count_never_changes_results(self, fleet_stores):
        """Placement changes *where* bytes live, not what queries return —
        and with uniform shards, not even the charged time."""
        runs = {}
        for shards, store in fleet_stores.items():
            runs[shards] = store.engine("dashcam").execute(
                QUERY_B, 0.9, store.segments, 0.0, 32.0
            )
        one, many = runs[1], runs[max(runs)]
        assert one.positives_per_stage == many.positives_per_stage
        assert one.segments_per_stage == many.segments_per_stage
        assert one.compute_seconds == many.compute_seconds

    def test_executor_builds_per_shard_pools(self, fleet_stores):
        store = fleet_stores[max(fleet_stores)]
        ex = store.executor(disk_pool=DiskBandwidthPool(2))
        names = {n for n in ex._pools if n.startswith("disk")}
        assert names == {f"disk:{i}" for i in range(store.n_shards)}
        assert all(ex._pools[n].capacity == 2 for n in names)

    def test_sharded_retrievals_overlap(self, tmp_path):
        """The same contended fleet finishes strictly faster on more
        shards (round-robin placement guarantees the spread)."""
        def makespan(shards):
            lib = default_library(names=QUERY_LIB_NAMES)
            with VStore(workdir=str(tmp_path / f"s{shards}"), library=lib,
                        shards=shards, placement="round-robin") as store:
                store.configure()
                store.ingest("jackson", n_segments=4)
                ex = store.executor(policy=FIFOPolicy(),
                                    disk_pool=DiskBandwidthPool(1))
                for _ in range(8):
                    ex.admit(QUERY_A, "jackson", 0.9, 0.0, 32.0)
                ex.run()
                return ex.stats().makespan

        assert makespan(max(2, N_SHARDS)) < makespan(1)

    def test_per_shard_busy_seconds_conserved(self, fleet_stores):
        """Sharding re-routes disk work; it must not create or lose any."""
        def disk_busy(store):
            ex = store.executor(disk_pool=DiskBandwidthPool(1))
            for _ in range(4):
                ex.admit(QUERY_A, "jackson", 0.9, 0.0, 32.0)
            ex.run()
            return sum(busy for name, busy in ex.stats().busy_seconds.items()
                       if name.startswith("disk"))

        assert disk_busy(fleet_stores[max(fleet_stores)]) == pytest.approx(
            disk_busy(fleet_stores[1])
        )

    def test_sharding_report_and_table(self, fleet_stores):
        from repro.analysis import format_sharding_table, sharding_report

        store = fleet_stores[max(fleet_stores)]
        ex = store.executor(disk_pool=DiskBandwidthPool(1))
        for _ in range(4):
            ex.admit(QUERY_A, "jackson", 0.9, 0.0, 32.0)
        ex.run()
        report = sharding_report(store.segments, ex.stats())
        assert report.n_shards == store.n_shards
        assert report.total_bytes == pytest.approx(
            store.segments.total_bytes()
        )
        assert report.imbalance_ratio >= 1.0
        assert report.retrieval_speedup is not None
        assert report.retrieval_speedup >= 1.0
        text = format_sharding_table(report)
        assert "placement=hash" in text
        assert "parallel retrieval speedup" in text
        # The facade accessor returns the same shape.
        assert store.sharding_report().n_shards == store.n_shards

    def test_facade_rebalance(self, tmp_path):
        lib = default_library(names=QUERY_LIB_NAMES)
        with VStore(workdir=str(tmp_path / "store"), library=lib,
                    shards=3, placement=_PinToZero()) as store:
            store.configure()
            store.ingest("jackson", n_segments=3)
            report = store.rebalance()
            assert report.moves > 0
            assert report.imbalance_after < report.imbalance_before
            # Queries still work on the rebalanced layout.
            result = store.execute("A", dataset="jackson", accuracy=0.9,
                                   t0=0.0, t1=16.0)
            assert result.compute_seconds > 0


class TestCLI:
    def test_cli_shards_flags(self, tmp_path, capsys):
        from repro.cli import main

        workdir = str(tmp_path / "cli-store")
        assert main(["ingest", "--workdir", workdir, "--segments", "2",
                     "--shards", "2", "--placement", "round-robin"]) == 0
        out = capsys.readouterr().out
        assert "Sharded storage: 2 shards" in out
        assert "placement=round-robin" in out

    def test_cli_rejects_bad_shards(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["ingest", "--workdir", str(tmp_path / "x"),
                  "--shards", "0"])
