"""Segment store: per-format indexing and footprint accounting."""

import pytest

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.segment_store import SegmentStore
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

FMT_A = StorageFormat(Fidelity.parse("good-540p-1/6-100%"), Coding("fast", 10))
FMT_B = StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW)


@pytest.fixture()
def store(tmp_path):
    kv = KVStore(str(tmp_path / "segments.log"))
    yield SegmentStore(kv, DiskModel(clock=SimClock()))
    kv.close()


def _encode(fmt, index, materialize=False):
    return Encoder(clock=SimClock()).encode(
        Segment("cam", index), fmt, activity=0.4, materialize=materialize
    )


def test_put_get_roundtrip(store):
    encoded = _encode(FMT_A, 0)
    store.put(encoded)
    got = store.get("cam", FMT_A, 0)
    assert got.size_bytes == encoded.size_bytes
    assert got.n_frames == encoded.n_frames
    assert got.fmt == FMT_A
    assert got.segment.t0 == 0.0


def test_get_charges_disk(store):
    store.put(_encode(FMT_A, 0))
    before = store.disk.clock.spent("disk")
    store.get("cam", FMT_A, 0)
    assert store.disk.clock.spent("disk") > before


def test_meta_does_not_charge_disk(store):
    store.put(_encode(FMT_A, 0))
    spent = store.disk.clock.spent("disk")
    store.meta("cam", FMT_A, 0)
    assert store.disk.clock.spent("disk") == spent


def test_indices_and_formats(store):
    for i in (0, 1, 5):
        store.put(_encode(FMT_A, i))
    store.put(_encode(FMT_B, 1))
    assert store.indices("cam", FMT_A) == [0, 1, 5]
    assert store.indices("cam", FMT_B) == [1]
    labels = sorted(f.label for f in store.formats("cam"))
    assert labels == sorted([FMT_A.label, FMT_B.label])


def test_footprint_accounting(store):
    a0, a1 = _encode(FMT_A, 0), _encode(FMT_A, 1)
    b0 = _encode(FMT_B, 0)
    for e in (a0, a1, b0):
        store.put(e)
    assert store.footprint("cam", FMT_A) == a0.size_bytes + a1.size_bytes
    assert store.footprint("cam", FMT_B) == b0.size_bytes
    assert store.footprint("cam") == store.total_bytes()
    assert store.segment_count("cam", FMT_A) == 2


def test_delete_updates_footprint(store):
    e = _encode(FMT_A, 0)
    store.put(e)
    assert store.delete("cam", FMT_A, 0)
    assert store.footprint("cam", FMT_A) == 0
    assert not store.delete("cam", FMT_A, 0)
    assert not store.contains("cam", FMT_A, 0)


def test_payload_roundtrip(store):
    e = _encode(FMT_B, 3, materialize=True)
    store.put(e)
    assert store.payload("cam", FMT_B, 3) == e.payload


def test_footprints_survive_reopen(tmp_path):
    path = str(tmp_path / "segments.log")
    kv = KVStore(path)
    store = SegmentStore(kv, DiskModel(clock=SimClock()))
    e = _encode(FMT_A, 0)
    store.put(e)
    kv.close()

    kv2 = KVStore(path)
    store2 = SegmentStore(kv2, DiskModel(clock=SimClock()))
    assert store2.footprint("cam", FMT_A) == e.size_bytes
    assert store2.indices("cam", FMT_A) == [0]
    kv2.close()


def test_overwrite_does_not_double_count(store):
    e = _encode(FMT_A, 0)
    store.put(e)
    store.put(e)
    assert store.footprint("cam", FMT_A) == e.size_bytes
    assert store.segment_count("cam", FMT_A) == 1
