"""The global configuration object and the backward-derivation driver.

``derive_configuration`` runs the three steps of Figure 7 in order:
consumers -> consumption formats -> storage formats -> erosion plan,
collecting the profiling accounting along the way (Figure 14 and
Section 6.4 report overheads from these counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.clock import SimClock
from repro.core.coalesce import CoalescePlan, SFPlan, StorageFormatPlanner
from repro.core.consumption import ConsumptionDecision, ConsumptionPlanner
from repro.core.erosion import ErosionPlan, ErosionPlanner
from repro.errors import ConfigurationError
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer, OperatorLibrary
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.video.format import ConsumptionFormat, StorageFormat

#: Default mapping from operator to the dataset it is profiled on
#: (Section 6.1: Query A operators on jackson, Query B on dashcam).
DEFAULT_PROFILE_DATASETS: Dict[str, str] = {
    "Diff": "jackson",
    "S-NN": "jackson",
    "NN": "jackson",
    "Motion": "dashcam",
    "License": "dashcam",
    "OCR": "dashcam",
    "Opflow": "jackson",
    "Color": "jackson",
    "Contour": "jackson",
}


@dataclass
class ConfigStats:
    """Profiling-overhead accounting for one configuration round."""

    operator_runs: int = 0
    operator_seconds: float = 0.0
    coding_runs: int = 0
    coding_memo_hits: int = 0
    coding_seconds: float = 0.0
    coalesce_rounds: int = 0

    @property
    def total_seconds(self) -> float:
        return self.operator_seconds + self.coding_seconds


@dataclass
class Configuration:
    """The derived global set of video formats (Table 3)."""

    consumers: List[Consumer]
    decisions: List[ConsumptionDecision]
    plan: CoalescePlan
    erosion: Optional[ErosionPlan] = None
    stats: ConfigStats = field(default_factory=ConfigStats)
    #: The coding profiler (with its ProfileTable memos) that derived the
    #: plan; incremental re-planning threads it through so evolution
    #: warm-starts from the memoized surfaces instead of re-profiling.
    coding_profiler: Optional[CodingProfiler] = field(default=None,
                                                      repr=False)

    # -- lookups ---------------------------------------------------------------

    def decision_for(self, consumer: Consumer) -> ConsumptionDecision:
        for d in self.decisions:
            if d.consumer == consumer:
                return d
        raise ConfigurationError(f"no decision for consumer {consumer}")

    def consumption_format(self, consumer: Consumer) -> ConsumptionFormat:
        return self.decision_for(consumer).cf

    def storage_plan_for(self, consumer: Consumer) -> SFPlan:
        return self.plan.subscription(consumer)

    def storage_format(self, consumer: Consumer) -> StorageFormat:
        return self.storage_plan_for(consumer).fmt

    @property
    def storage_formats(self) -> List[StorageFormat]:
        return [sf.fmt for sf in self.plan.formats]

    @property
    def unique_cf_count(self) -> int:
        return len({d.fidelity for d in self.decisions})

    @property
    def knob_count(self) -> int:
        """Knobs set by this configuration: 4 per unique CF, 4 fidelity + 2
        coding knobs per encoded SF, 5 per raw SF (the paper's "109 knobs")."""
        cf_knobs = 4 * self.unique_cf_count
        sf_knobs = sum(5 if sf.fmt.is_raw else 6 for sf in self.plan.formats)
        return cf_knobs + sf_knobs


def resolve_profile_datasets(
    profile_datasets: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """The operator -> profiling-dataset assignment actually in effect."""
    return dict(profile_datasets if profile_datasets is not None
                else DEFAULT_PROFILE_DATASETS)


def build_operator_profilers(
    library: OperatorLibrary,
    consumers: Sequence[Consumer],
    profile_datasets: Optional[Mapping[str, str]] = None,
    clock: Optional[SimClock] = None,
    profilers: Optional[Dict[str, OperatorProfiler]] = None,
) -> Dict[str, OperatorProfiler]:
    """Operator profilers for every dataset the consumers profile on.

    Extends (and returns) ``profilers`` in place when given, so sweeps can
    thread one shared profiler set through every sweep point instead of
    re-profiling per point.
    """
    datasets = resolve_profile_datasets(profile_datasets)
    if profilers is None:
        profilers = {}
    for consumer in consumers:
        dataset = datasets.get(consumer.operator)
        if dataset is None:
            raise ConfigurationError(
                f"no profiling dataset assigned for operator "
                f"{consumer.operator!r}"
            )
        if dataset not in profilers:
            profilers[dataset] = OperatorProfiler(library, dataset, clock=clock)
    return profilers


def derive_configuration(
    library: OperatorLibrary,
    consumers: Optional[Sequence[Consumer]] = None,
    profile_datasets: Optional[Mapping[str, str]] = None,
    ingest_budget: IngestBudget = IngestBudget(),
    storage_budget_bytes: Optional[float] = None,
    lifespan_days: int = 10,
    clock: Optional[SimClock] = None,
    profilers: Optional[Dict[str, OperatorProfiler]] = None,
    coding_profiler: Optional[CodingProfiler] = None,
) -> Configuration:
    """Backward derivation: the full Section 4 pipeline.

    ``profilers`` maps dataset name to an :class:`OperatorProfiler`; when
    omitted, profilers are created for every dataset named in
    ``profile_datasets`` (defaulting to the paper's assignment).
    """
    clock = clock or SimClock()
    consumers = list(consumers if consumers is not None
                     else library.consumers())
    if not consumers:
        raise ConfigurationError("cannot configure a store with no consumers")
    if profile_datasets is None:
        profile_datasets = DEFAULT_PROFILE_DATASETS
    datasets = dict(profile_datasets)

    profilers = build_operator_profilers(
        library, consumers, datasets, clock, profilers
    )

    # Step 1 (Section 4.2): consumption formats.
    decisions: List[ConsumptionDecision] = []
    for consumer in consumers:
        profiler = profilers[datasets[consumer.operator]]
        decisions.append(ConsumptionPlanner(profiler).derive(consumer))

    # Step 2 (Section 4.3): storage formats.
    if coding_profiler is None:
        activity = mean_profile_activity(profilers)
        coding_profiler = CodingProfiler(activity=activity, clock=clock)
    planner = StorageFormatPlanner(coding_profiler, ingest_budget)
    plan = planner.heuristic_coalesce(decisions)

    # Step 3 (Section 4.4): erosion plan.
    rates = {
        sf.label: coding_profiler.profile(sf.fmt).bytes_per_second
        for sf in plan.formats
    }
    erosion = ErosionPlanner(
        plan.formats, rates, lifespan_days
    ).plan(storage_budget_bytes)

    stats = ConfigStats(
        operator_runs=sum(p.stats.runs for p in profilers.values()),
        operator_seconds=sum(p.stats.seconds for p in profilers.values()),
        coding_runs=coding_profiler.stats.runs,
        coding_memo_hits=coding_profiler.stats.memo_hits,
        coding_seconds=coding_profiler.stats.seconds,
        coalesce_rounds=plan.rounds,
    )
    return Configuration(
        consumers=consumers,
        decisions=decisions,
        plan=plan,
        erosion=erosion,
        stats=stats,
        coding_profiler=coding_profiler,
    )


def mean_profile_activity(profilers: Mapping[str, OperatorProfiler]) -> float:
    """Mean content activity across profiling clips (size-model input)."""
    activities = [p.clip.mean_activity() for p in profilers.values()]
    return sum(activities) / len(activities) if activities else 0.35
