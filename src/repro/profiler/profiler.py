"""Operator profiler: fidelity -> (accuracy, consumption speed).

For each profiling run the store prepares sample frames at fidelity f, runs
the operator over them and measures accuracy and consumption speed
(Section 4.2).  Within one configuration process results are memoized — the
paper notes that profiling an operator's four accuracy levels shares runs,
and Section 6.4 reports 92% memoization during coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.clock import SimClock
from repro.operators.base import Operator
from repro.operators.library import OperatorLibrary
from repro.units import PROFILE_CLIP_SECONDS
from repro.video.content import ClipTruth
from repro.video.datasets import get_dataset
from repro.video.fidelity import Fidelity


@dataclass(frozen=True)
class OperatorProfile:
    """One profiling measurement."""

    operator: str
    fidelity: Fidelity
    accuracy: float
    consumption_speed: float  # x realtime

    @property
    def consumption_cost(self) -> float:
        """Reciprocal speed: seconds of compute per video second."""
        speed = self.consumption_speed
        return 0.0 if speed == float("inf") else 1.0 / speed


def select_profile_clip(
    dataset: str,
    clip_seconds: float = PROFILE_CLIP_SECONDS,
    min_tracks: int = 4,
    target_presence: float = 0.6,
    scan_step: float = 16.0,
    scan_limit: float = 2048.0,
) -> ClipTruth:
    """Pick a representative sample clip from a stream.

    Profiling is only informative on footage that actually contains events
    (the paper profiles hand-picked benchmark videos).  This helper scans
    candidate offsets and returns the clip that has at least ``min_tracks``
    tracks, at least one readable plate, and an object-presence fraction
    closest to ``target_presence`` (so both positives and negatives occur).
    Falls back to the densest clip seen when no candidate qualifies.
    """
    model = get_dataset(dataset).content()
    best: Optional[Tuple[float, ClipTruth]] = None
    densest: Optional[Tuple[int, ClipTruth]] = None
    t0 = 0.0
    while t0 < scan_limit:
        clip = model.clip(t0, clip_seconds)
        n = len(clip.tracks)
        if densest is None or n > densest[0]:
            densest = (n, clip)
        if n >= min_tracks and any(tr.plate for tr in clip.tracks):
            presence = (
                float(clip.visible.any(axis=0).mean()) if clip.tracks else 0.0
            )
            score = abs(presence - target_presence)
            if best is None or score < best[0]:
                best = (score, clip)
            if score < 0.1:
                break
        t0 += scan_step
    if best is not None:
        return best[1]
    if densest is not None:
        return densest[1]
    return model.clip(0.0, clip_seconds)


@dataclass
class ProfilerStats:
    """Accounting of profiling effort (Figure 14)."""

    runs: int = 0
    memo_hits: int = 0
    seconds: float = 0.0
    runs_by_operator: Dict[str, int] = field(default_factory=dict)
    seconds_by_operator: Dict[str, float] = field(default_factory=dict)


class OperatorProfiler:
    """Profiles operators of a library over one dataset's sample clip."""

    def __init__(
        self,
        library: OperatorLibrary,
        dataset: str,
        clip_t0: Optional[float] = None,
        clip_seconds: float = PROFILE_CLIP_SECONDS,
        clock: Optional[SimClock] = None,
        prep_overhead: float = 0.35,
    ):
        self.library = library
        self.dataset = dataset
        self.clip_seconds = clip_seconds
        self.clock = clock or SimClock()
        #: Fixed simulated seconds per run for preparing sample frames
        #: (decoding and resizing the 10-second sample clip).
        self.prep_overhead = prep_overhead
        self.stats = ProfilerStats()
        if clip_t0 is None:
            self._clip = select_profile_clip(dataset, clip_seconds)
        else:
            self._clip = get_dataset(dataset).content().clip(
                clip_t0, clip_seconds
            )
        self._memo: Dict[Tuple[str, Fidelity], OperatorProfile] = {}

    @property
    def clip(self) -> ClipTruth:
        """The profiling sample clip's ground truth."""
        return self._clip

    def profile(self, operator: str, fidelity: Fidelity) -> OperatorProfile:
        """Measure (accuracy, speed) for one operator at one fidelity.

        Memoized: repeated requests within this profiler are free, which is
        what lets the boundary search and multiple accuracy levels share
        profiling runs.
        """
        key = (operator, fidelity)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached

        op: Operator = self.library.get(operator)
        accuracy = op.accuracy(self._clip, fidelity)
        speed = op.consumption_speed(fidelity)
        # Charge the simulated cost of actually running the operator over
        # the sample clip, plus sample preparation.
        run_seconds = (
            op.consumption_seconds(fidelity, self.clip_seconds) + self.prep_overhead
        )
        self.clock.charge(run_seconds, "profiling")
        self.stats.runs += 1
        self.stats.seconds += run_seconds
        self.stats.runs_by_operator[operator] = (
            self.stats.runs_by_operator.get(operator, 0) + 1
        )
        self.stats.seconds_by_operator[operator] = (
            self.stats.seconds_by_operator.get(operator, 0.0) + run_seconds
        )

        result = OperatorProfile(operator, fidelity, accuracy, speed)
        self._memo[key] = result
        return result

    def reset_stats(self) -> None:
        """Zero the accounting counters (the memo is kept)."""
        self.stats = ProfilerStats()

    def clear_memo(self) -> None:
        """Forget memoized profiles (a fresh configuration round)."""
        self._memo.clear()
