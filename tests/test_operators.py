"""Operator invariants: O1 monotonicity, O2 quality/cost independence,
ingest-fidelity accuracy, and cost-model behaviour (Section 2.4)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.rng import rng_for
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    SAMPLING_RATES,
    richest_fidelity,
)

MID = Fidelity("good", "360p", Fraction(1, 6), 0.75)


def _vary(fid, **kw):
    return Fidelity(
        quality=kw.get("quality", fid.quality),
        resolution=kw.get("resolution", fid.resolution),
        sampling=kw.get("sampling", fid.sampling),
        crop=kw.get("crop", fid.crop),
    )


@pytest.fixture(params=["Diff", "S-NN", "NN", "Motion", "License", "OCR",
                        "Opflow", "Color", "Contour"])
def op(request, library):
    return library.get(request.param)


def _clip_for(op, jackson_clip, dashcam_clip):
    # Operators are profiled on the paper's dataset assignment.
    return dashcam_clip if op.name in ("Motion", "License", "OCR") else jackson_clip


def test_accuracy_is_one_at_ingest_fidelity(op, jackson_clip, dashcam_clip):
    # Exactly 1.0 up to the vanishing tail of the near-threshold sigmoid
    # (the paper's ground-truth normalization).
    clip = _clip_for(op, jackson_clip, dashcam_clip)
    assert op.accuracy(clip, richest_fidelity()) == pytest.approx(1.0, abs=2e-3)


def test_accuracy_bounded(op, jackson_clip, dashcam_clip):
    clip = _clip_for(op, jackson_clip, dashcam_clip)
    for fid in (MID, Fidelity("worst", "60p", Fraction(1, 30), 0.5)):
        assert 0.0 <= op.accuracy(clip, fid) <= 1.0


@pytest.mark.parametrize("knob,values", [
    ("quality", QUALITIES),
    ("resolution", RESOLUTION_ORDER),
    ("sampling", SAMPLING_RATES),
    ("crop", CROP_FACTORS),
])
def test_o1_accuracy_monotone_per_knob(op, jackson_clip, dashcam_clip,
                                       knob, values):
    """Observation O1: richer values never reduce accuracy."""
    clip = _clip_for(op, jackson_clip, dashcam_clip)
    accs = [op.accuracy(clip, _vary(MID, **{knob: v})) for v in values]
    # Tolerance: sample-alignment effects (which exact frames a fractional
    # sampling rate probes) perturb accuracy by a few 1e-3; O1 holds beyond
    # that noise.
    for poorer, richer in zip(accs, accs[1:]):
        assert richer >= poorer - 4e-3


@pytest.mark.parametrize("knob,values", [
    ("resolution", RESOLUTION_ORDER),
    ("sampling", SAMPLING_RATES),
    ("crop", CROP_FACTORS),
])
def test_o1_cost_monotone_per_knob(op, knob, values):
    """Observation O1: richer values never reduce consumption cost."""
    speeds = [op.consumption_speed(_vary(MID, **{knob: v})) for v in values]
    for poorer, richer in zip(speeds, speeds[1:]):
        assert richer <= poorer + 1e-9


def test_o2_quality_does_not_affect_cost(op):
    """Observation O2: image quality never changes consumption cost."""
    costs = {op.cost_per_frame(_vary(MID, quality=q)) for q in QUALITIES}
    assert len(costs) == 1


def test_consumption_speed_reciprocal_of_cost(op):
    fid = MID
    per_frame = op.cost_per_frame(fid)
    assert op.consumption_speed(fid) == pytest.approx(
        1.0 / (per_frame * fid.fps)
    )
    assert op.consumption_seconds(fid, 10.0) == pytest.approx(
        per_frame * fid.fps * 10.0
    )


def test_cost_ordering_matches_paper():
    """Execution costs differ by orders of magnitude across a cascade
    (Section 2.1): Diff << S-NN << NN; Motion << License ~ OCR."""
    from repro.operators.library import default_library

    lib = default_library()
    full = richest_fidelity()

    def cost(name):
        return lib.get(name).cost_per_frame(full)

    assert cost("Diff") < cost("S-NN") < cost("NN")
    assert cost("NN") > 20 * cost("S-NN")
    assert cost("NN") > 100 * cost("Diff")
    assert cost("License") > 5 * cost("Motion")


def test_stochastic_run_shapes(op, jackson_clip, dashcam_clip):
    clip = _clip_for(op, jackson_clip, dashcam_clip)
    out = op.run(clip, MID, rng_for("test", op.name))
    consumed = clip.consumed_index(MID)
    assert np.asarray(out).shape[0] == len(consumed)


def test_expected_positive_fraction_bounds(op, jackson_clip, dashcam_clip):
    clip = _clip_for(op, jackson_clip, dashcam_clip)
    for fid in (richest_fidelity(), MID):
        frac = op.expected_positive_fraction(clip, fid)
        assert 0.0 <= frac <= 1.0


def test_platform_metadata(library):
    assert library.get("NN").platform == "gpu"
    assert library.get("License").platform == "cpu"
