"""Coding profiler: storage format -> (size, encode cost, retrieval speed).

Heuristic-based coalescing (Section 4.3) profiles candidate storage
formats: it encodes a sample clip to measure the video size and ingestion
cost, and decodes it to measure retrieval speed.  Results are memoized —
Section 6.4 reports that 92% of formats examined during coalescing had
already been profiled.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.retrieval.speed import retrieval_speed
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.units import PROFILE_CLIP_SECONDS
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class CodingProfile:
    """Measured properties of one storage format."""

    fmt: StorageFormat
    bytes_per_second: float  # on-disk size per video second
    ingest_cost: float  # one-core CPU seconds per video second
    base_retrieval_speed: float  # x realtime, consumer taking every frame


@dataclass
class CodingProfilerStats:
    """Accounting of coding-profiling effort (Section 6.4)."""

    runs: int = 0
    memo_hits: int = 0
    seconds: float = 0.0


class CodingProfiler:
    """Profiles storage formats on a sample clip."""

    def __init__(
        self,
        activity: float = 0.35,
        clip_seconds: float = PROFILE_CLIP_SECONDS,
        codec: CodecModel = DEFAULT_CODEC,
        disk: DiskModel = DEFAULT_DISK,
        clock: Optional[SimClock] = None,
    ):
        #: Mean content activity of the profiled stream (size calibration).
        self.activity = activity
        self.clip_seconds = clip_seconds
        self.codec = codec
        self.disk = disk
        self.clock = clock or SimClock()
        self.stats = CodingProfilerStats()
        self._memo: Dict[StorageFormat, CodingProfile] = {}

    def profile(self, fmt: StorageFormat) -> CodingProfile:
        """Measure one storage format (memoized)."""
        cached = self._memo.get(fmt)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached

        fidelity, coding = fmt.fidelity, fmt.coding
        bytes_per_second = self.codec.encoded_bytes_per_second(
            fidelity, coding, self.activity
        )
        ingest_cost = self.codec.encode_seconds_per_video_second(fidelity, coding)
        base_speed = retrieval_speed(fmt, None, self.codec, self.disk)

        # Simulated profiling work: encode the sample clip, then decode it
        # (or read it back for raw formats).
        decode_cost = (
            0.0 if base_speed == float("inf") else self.clip_seconds / base_speed
        )
        run_seconds = ingest_cost * self.clip_seconds + decode_cost
        self.clock.charge(run_seconds, "profiling")
        self.stats.runs += 1
        self.stats.seconds += run_seconds

        result = CodingProfile(fmt, bytes_per_second, ingest_cost, base_speed)
        self._memo[fmt] = result
        return result

    def retrieval_speed(
        self, fmt: StorageFormat, consumer_sampling: Optional[Fraction] = None
    ) -> float:
        """Retrieval speed of ``fmt`` for a consumer sampling at the given
        rate; the format itself must have been profiled for accounting."""
        self.profile(fmt)
        return retrieval_speed(fmt, consumer_sampling, self.codec, self.disk)

    def reset_stats(self) -> None:
        self.stats = CodingProfilerStats()

    def clear_memo(self) -> None:
        self._memo.clear()
