"""The Section-5 operator-context scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError
from repro.query.scheduler import dispatch


def test_single_context_is_serial():
    result = dispatch([1.0, 2.0, 3.0], 1)
    assert result.makespan == 6.0
    assert result.speedup == pytest.approx(1.0)
    assert result.assignment == [0, 0, 0]


def test_balanced_dispatch():
    result = dispatch([1.0] * 8, 4)
    assert result.makespan == pytest.approx(2.0)
    assert result.speedup == pytest.approx(4.0)
    assert result.utilization == pytest.approx(1.0)


def test_least_loaded_assignment():
    # 5, then 1,1,1 on the other context, then 2 back on it.
    result = dispatch([5.0, 1.0, 1.0, 1.0, 2.0], 2)
    assert result.makespan == pytest.approx(5.0)
    assert result.loads == [5.0, 5.0]


def test_empty_stream():
    result = dispatch([], 3)
    assert result.makespan == 0.0
    assert result.total_work == 0.0


def test_no_work_claims_no_speedup():
    """Regression: zero-cost dispatches used to report an n_contexts-x
    speedup; with no work there is nothing to parallelize."""
    assert dispatch([], 3).speedup == 1.0
    assert dispatch([0.0, 0.0, 0.0], 4).speedup == 1.0
    assert dispatch([0.0], 1).speedup == 1.0


def test_invalid_inputs():
    with pytest.raises(QueryError):
        dispatch([1.0], 0)
    with pytest.raises(QueryError):
        dispatch([-1.0], 2)


@given(
    costs=st.lists(st.floats(0.0, 100.0), max_size=50),
    n=st.integers(1, 8),
)
def test_makespan_bounds(costs, n):
    """Greedy dispatch: makespan between total/n and total, and never more
    than the classic 2x bound off the lower bound."""
    result = dispatch(costs, n)
    total = sum(costs)
    longest = max(costs, default=0.0)
    lower = max(total / n, longest)
    assert result.makespan >= lower - 1e-9
    assert result.makespan <= max(total, lower * 2 + 1e-9)
    assert result.total_work == pytest.approx(total)


@given(costs=st.lists(st.floats(0.1, 10.0), min_size=4, max_size=40))
def test_more_contexts_never_slower(costs):
    makespans = [dispatch(costs, n).makespan for n in (1, 2, 4, 8)]
    for bigger, smaller in zip(makespans, makespans[1:]):
        assert smaller <= bigger + 1e-9


@given(
    costs=st.lists(st.floats(0.0, 100.0), max_size=60),
    n=st.integers(1, 8),
)
def test_dispatch_fairness_invariants(costs, n):
    """The greedy dispatcher's fairness contract over random costs: every
    assignment goes to a least-loaded context, the utilization never
    exceeds 1.0, and no work is lost or invented."""
    result = dispatch(costs, n)
    loads = [0.0] * n
    for cost, idx in zip(costs, result.assignment):
        assert loads[idx] == min(loads), (
            f"segment assigned to context {idx} with load {loads[idx]}, "
            f"but {min(loads)} was free"
        )
        loads[idx] += cost
    assert result.utilization <= 1.0 + 1e-9
    assert sum(result.loads) == pytest.approx(sum(costs), abs=1e-9)


def test_engine_execution_scales_with_contexts(tmp_path):
    """Parallel contexts accelerate consumption-bound stages end to end."""
    from repro.core.store import VStore
    from repro.operators.library import default_library

    lib = default_library(names=("Motion", "License", "OCR"))
    with VStore(workdir=str(tmp_path / "w"), library=lib) as store:
        store.configure()
        store.ingest("dashcam", n_segments=8)
        engine = store.engine("dashcam")
        from repro.query.cascade import QUERY_B

        serial = engine.execute(QUERY_B, 0.9, store.segments, 0.0, 64.0,
                                contexts=1)
        parallel = engine.execute(QUERY_B, 0.9, store.segments, 0.0, 64.0,
                                  contexts=8)
        assert parallel.compute_seconds < serial.compute_seconds
        assert parallel.speed > serial.speed
