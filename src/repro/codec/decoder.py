"""Decoder: turns a stored segment back into consumable raw frames.

The decoder charges simulated decode time to the clock (category
``"decode"``), honouring chunk skipping when the consumer samples sparsely.
Raw (coding-bypass) segments are not decoded here; they take the disk path
in :mod:`repro.retrieval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cache.plane import CachePlane

from repro.clock import SimClock
from repro.codec.chunks import decoded_frame_count
from repro.codec.encoder import EncodedSegment
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.errors import CodecError
from repro.video.fidelity import Fidelity


@dataclass(frozen=True)
class DecodedFrames:
    """The frames a consumer receives from one segment."""

    source: EncodedSegment
    consumer_fidelity: Fidelity
    n_frames: int  # frames handed to the consumer
    n_decoded: int  # frames the decoder had to touch (>= n_frames)
    seconds: float  # video time covered


@dataclass(frozen=True)
class DecoderPool:
    """A bounded set of hardware decoder contexts (NVDEC sessions).

    The paper's decode path runs on a GPU decoder with a fixed number of
    concurrent sessions.  The concurrent query executor admits at most
    ``contexts`` segment decodes at once; queries needing the decoder
    beyond that wait, modeling multi-tenant decode contention.
    """

    contexts: int = 2

    def __post_init__(self) -> None:
        if self.contexts < 1:
            raise CodecError(f"need at least one decoder context: {self.contexts}")


class Decoder:
    """A decoder instance (NVDEC in the paper).

    With a :class:`~repro.cache.plane.CachePlane` attached, a segment
    already decoded for the same consumer fidelity is served from the
    decoded-frame RAM tier: the decode charge is skipped and only the RAM
    cost is paid (category ``"cache"``); misses populate the tier.
    """

    def __init__(self, model: CodecModel = DEFAULT_CODEC,
                 clock: Optional[SimClock] = None,
                 cache: Optional["CachePlane"] = None):
        self.model = model
        self.clock = clock or SimClock()
        self.cache = cache
        self.frames_decoded = 0

    def decode(
        self, encoded: EncodedSegment, consumer_fidelity: Fidelity
    ) -> DecodedFrames:
        """Decode ``encoded`` for a consumer expecting ``consumer_fidelity``.

        The stored fidelity must be richer than or equal to the consumer's
        (requirement R1); the sampling ratio determines how many stored
        frames can be skipped chunk-wise.
        """
        fmt = encoded.fmt
        if fmt.is_raw:
            raise CodecError("raw segments are read from disk, not decoded")
        if not fmt.fidelity.richer_equal(consumer_fidelity):
            raise CodecError(
                f"stored fidelity {fmt.fidelity.label} cannot supply "
                f"consumer fidelity {consumer_fidelity.label}"
            )
        stride = self.model.consumer_stride(fmt.fidelity, consumer_fidelity.sampling)
        n_stored = encoded.n_frames
        n_decoded = decoded_frame_count(
            n_stored, stride, fmt.coding.keyframe_interval
        )
        n_consumed = len(range(0, n_stored, stride))
        cost = n_decoded * self.model.decode_frame_seconds(fmt.fidelity, fmt.coding)
        if not self._serve_from_cache(encoded, consumer_fidelity,
                                      n_consumed, cost):
            self.clock.charge(cost, "decode")
            self.frames_decoded += n_decoded
        return DecodedFrames(
            source=encoded,
            consumer_fidelity=consumer_fidelity,
            n_frames=n_consumed,
            n_decoded=n_decoded,
            seconds=encoded.segment.seconds,
        )

    def _serve_from_cache(self, encoded: EncodedSegment,
                          consumer_fidelity: Fidelity,
                          n_consumed: int, full_cost: float) -> bool:
        """Serve from the decoded-frame tier if possible; True on a hit."""
        if self.cache is None:
            return False
        from repro.cache.plane import RetrievalAccess

        segment = encoded.segment
        nbytes = n_consumed * self.model.raw_frame_bytes(consumer_fidelity)
        key = self.cache.frame_key(segment.stream, segment.index,
                                   encoded.fmt.label, consumer_fidelity.label)
        access = RetrievalAccess(
            key=key,
            hit=self.cache.frames.peek(key) is not None,
            full_seconds=full_cost,
            hit_seconds=self.cache.hit_seconds(nbytes),
            nbytes=nbytes,
            stored_bytes=float(encoded.size_bytes),
            raw=False,  # decode-bound: builds no fast-tier heat
        )
        return self.cache.serve_retrieval(self.clock, access)

    def decode_speed(
        self, encoded: EncodedSegment,
        consumer_sampling: Optional[Fraction] = None,
    ) -> float:
        """Realtime multiple at which this segment's format decodes."""
        return self.model.decode_speed(
            encoded.fmt.fidelity, encoded.fmt.coding, consumer_sampling
        )
