"""Deriving storage formats by iterative coalescing (Section 4.3).

Starting from one storage format per unique consumption format, plus the
*golden* format (knob-wise maximum fidelity, cheapest-storage coding, the
ultimate erosion fallback), VStore coalesces pairs:

* the merged fidelity is the knob-wise maximum (satisfiable fidelity, R1);
* the merged coding is the cheapest-storage option whose retrieval speed
  still beats every downstream consumer (adequate retrieval, R2), falling
  back to raw frames when no encoded option keeps up;
* **heuristic selection** first harvests "free" merges (less ingest, no
  extra storage), then — only if the ingestion budget is exceeded — trades
  storage for ingest by merging further and by stepping individual formats
  to faster (cheaper to encode, bulkier) coding;
* **distance-based selection** (the evaluated alternative) merges the
  closest pair in normalized knob space without profiling pair outcomes;
* **exhaustive enumeration** (validation baseline) scores every set
  partition of the consumption formats.

Coalescing is *incremental*: pair-merge and coding-bump evaluations are
cached across rounds, so after a merge only moves involving the new format
are scored (O(n) fresh evaluations per round instead of an O(n^2) rescan),
and retrieval-adequacy verdicts are memoized per (format, demand).  The
caches only avoid recomputation — move scoring, iteration order and
tie-breaking of ``heuristic_coalesce`` and ``distance_coalesce`` are
unchanged, so their plans are identical to the non-incremental planner's.
``exhaustive`` enumerates partitions in restricted-growth-string order
(the legacy recursion visited them differently); a partition whose score
*exactly ties* the optimum may therefore resolve to a different, equally
optimal plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.consumption import ConsumptionDecision
from repro.errors import BudgetError, ConfigurationError
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.video.coding import Coding, RAW, SPEED_STEPS, coding_space
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    SAMPLING_RATES,
    knobwise_max,
)
from repro.video.format import StorageFormat

_EPS = 1e-9


@dataclass(frozen=True)
class Demand:
    """One consumer's requirement on its storage format."""

    consumer: Consumer
    cf_fidelity: Fidelity
    required_speed: float  # the consumer's consumption speed (x realtime)
    #: True for a Section-7 legacy subscription: the consumer was bound to
    #: an existing (satisfiable but not derived-for-it) format because
    #: transcoding old footage on its behalf was deferred.  The next
    #: incremental re-plan treats such consumers as newcomers — a legacy
    #: binding is provisional, not a format the planner chose for them.
    legacy: bool = False


@dataclass
class SFPlan:
    """A storage format under construction, with its downstream demands."""

    fidelity: Fidelity
    coding: Coding
    demands: List[Demand] = field(default_factory=list)
    golden: bool = False

    @property
    def fmt(self) -> StorageFormat:
        return StorageFormat(self.fidelity, self.coding)

    @property
    def label(self) -> str:
        return self.fmt.label


@dataclass
class CoalescePlan:
    """The outcome of storage-format derivation."""

    formats: List[SFPlan]
    storage_bytes_per_second: float
    ingest_cores: float
    rounds: int = 0

    @property
    def golden(self) -> SFPlan:
        for sf in self.formats:
            if sf.golden:
                return sf
        raise ConfigurationError("plan lost its golden format")

    def subscription(self, consumer: Consumer) -> SFPlan:
        """The storage format a consumer's CF subscribes to."""
        for sf in self.formats:
            if any(d.consumer == consumer for d in sf.demands):
                return sf
        raise ConfigurationError(f"consumer {consumer} has no storage format")


def _storage_rank(profiler: CodingProfiler, fidelity: Fidelity) -> List[Coding]:
    """Encoded coding options ordered by on-disk size, cheapest first."""
    if profiler.table is not None:
        return list(profiler.table.storage_rank(fidelity))
    options = list(coding_space(include_raw=False))
    options.sort(
        key=lambda c: profiler.codec.encoded_bytes_per_second(
            fidelity, c, profiler.activity
        )
    )
    return options


def coding_is_adequate(
    profiler: CodingProfiler,
    fmt: StorageFormat,
    demands: Sequence[Demand],
) -> bool:
    """R2 check: retrieval beats every downstream consumer's speed."""
    for demand in demands:
        speed = profiler.retrieval_speed(fmt, demand.cf_fidelity.sampling)
        if speed < demand.required_speed - _EPS:
            return False
    return True


def cheapest_adequate_coding(
    profiler: CodingProfiler,
    fidelity: Fidelity,
    demands: Sequence[Demand],
) -> Coding:
    """The lowest-storage coding option meeting all retrieval demands.

    Walks encoded options from smallest on-disk size upward, profiling each
    candidate (memoized by the profiler); when even the cheapest-to-decode
    encoded option is too slow, the coding bypass (raw frames) is chosen —
    exactly the rule of Section 4.3.
    """
    for coding in _storage_rank(profiler, fidelity):
        if coding_is_adequate(profiler, StorageFormat(fidelity, coding), demands):
            return coding
    return RAW


class _MoveCache:
    """Caches pair-merge and coding-bump evaluations across rounds.

    Entries are keyed by the identity of the participating :class:`SFPlan`
    objects (and hold strong references to them, so ids cannot be reused
    while the cache lives).  Formats removed by a merge simply stop being
    looked up; only pairs involving the freshly merged format are ever
    evaluated anew.
    """

    def __init__(self, planner: "StorageFormatPlanner"):
        self._planner = planner
        self._pairs: Dict[tuple, tuple] = {}
        self._bumps: Dict[int, tuple] = {}

    def pair_move(
        self, a: SFPlan, b: SFPlan
    ) -> Optional[Tuple[float, float, SFPlan]]:
        """(d_storage, d_ingest, merged) for a safe merge, else ``None``."""
        key = (id(a), id(b))
        entry = self._pairs.get(key)
        if entry is None:
            p = self._planner
            merged = p.coalesce_pair(a, b)
            if not p._merge_is_safe(merged, (a, b)):
                move = None
            else:
                d_sto = (
                    p.sf_storage(merged) - p.sf_storage(a) - p.sf_storage(b)
                )
                d_ing = p.sf_ingest(merged) - p.sf_ingest(a) - p.sf_ingest(b)
                move = (d_sto, d_ing, merged)
            entry = (a, b, move)
            self._pairs[key] = entry
        return entry[2]

    def bump_move(self, sf: SFPlan) -> Optional[Tuple[float, float, SFPlan]]:
        """(d_storage, d_ingest, bumped) for a useful coding step, else
        ``None`` (raw, already fastest, inadequate, or no ingest saved)."""
        entry = self._bumps.get(id(sf))
        if entry is None:
            entry = (sf, self._planner._evaluate_bump(sf))
            self._bumps[id(sf)] = entry
        return entry[1]


class StorageFormatPlanner:
    """Coalesces consumption formats into storage formats."""

    def __init__(self, profiler: CodingProfiler,
                 budget: IngestBudget = IngestBudget()):
        self.profiler = profiler
        self.budget = budget
        self._adequacy: Dict[Tuple[StorageFormat, Demand], bool] = {}

    # -- construction of the initial SF set ----------------------------------------

    def initial_formats(
        self, decisions: Sequence[ConsumptionDecision]
    ) -> List[SFPlan]:
        """One SF per unique CF (identical fidelity), plus the golden SF."""
        if not decisions:
            raise ConfigurationError("cannot plan storage with no consumers")
        by_cf: Dict[Fidelity, List[Demand]] = {}
        for d in decisions:
            demand = Demand(d.consumer, d.fidelity, d.consumption_speed)
            by_cf.setdefault(d.fidelity, []).append(demand)

        formats = [
            SFPlan(
                fidelity=fid,
                coding=self._cheapest_adequate_coding(fid, demands),
                demands=demands,
            )
            for fid, demands in by_cf.items()
        ]
        golden_fid = knobwise_max([d.fidelity for d in decisions])
        golden_coding = self._cheapest_adequate_coding(golden_fid, [])
        formats.append(SFPlan(golden_fid, golden_coding, demands=[], golden=True))
        return formats

    # -- memoized adequacy ------------------------------------------------------------

    def _demand_adequate(self, fmt: StorageFormat, demand: Demand) -> bool:
        """Memoized R2 verdict for one (format, demand) pair.

        A cache hit is a format examination that reused profiled results;
        it is tallied in ``stats.adequacy_hits``, separate from the
        profiler's own ``memo_hits`` (see :class:`CodingProfilerStats`).
        """
        key = (fmt, demand)
        verdict = self._adequacy.get(key)
        if verdict is None:
            speed = self.profiler.retrieval_speed(
                fmt, demand.cf_fidelity.sampling
            )
            verdict = speed >= demand.required_speed - _EPS
            self._adequacy[key] = verdict
        else:
            self.profiler.stats.adequacy_hits += 1
        return verdict

    def _adequate(self, fmt: StorageFormat, demands: Sequence[Demand]) -> bool:
        return all(self._demand_adequate(fmt, d) for d in demands)

    def _cheapest_adequate_coding(
        self, fidelity: Fidelity, demands: Sequence[Demand]
    ) -> Coding:
        for coding in _storage_rank(self.profiler, fidelity):
            if self._adequate(StorageFormat(fidelity, coding), demands):
                return coding
        return RAW

    # -- cost accounting --------------------------------------------------------------

    def sf_storage(self, sf: SFPlan) -> float:
        return self.profiler.profile(sf.fmt).bytes_per_second

    def sf_ingest(self, sf: SFPlan) -> float:
        return self.profiler.profile(sf.fmt).ingest_cost

    def storage_cost(self, formats: Sequence[SFPlan]) -> float:
        return sum(self.sf_storage(sf) for sf in formats)

    def ingest_cost(self, formats: Sequence[SFPlan]) -> float:
        return sum(self.sf_ingest(sf) for sf in formats)

    def _within_budget(self, formats: Sequence[SFPlan]) -> bool:
        """The ingestion-budget check of :meth:`IngestBudget.allows`, fed
        from memoized profiles instead of fresh codec-surface calls."""
        if self.budget.cores is None:
            return True
        return self.ingest_cost(formats) <= self.budget.cores + _EPS

    # -- pair coalescing ---------------------------------------------------------------

    def coalesce_pair(self, a: SFPlan, b: SFPlan) -> SFPlan:
        """Merge two storage formats (Section 4.3's three-effect move)."""
        fidelity = knobwise_max([a.fidelity, b.fidelity])
        demands = list(a.demands) + list(b.demands)
        coding = self._cheapest_adequate_coding(fidelity, demands)
        return SFPlan(fidelity, coding, demands, golden=a.golden or b.golden)

    def _merge_is_safe(self, merged: SFPlan, parents: Sequence[SFPlan]) -> bool:
        """A merge must not take retrieval adequacy away from a consumer
        that had it before (some ultra-fast consumers are retrieval-bound
        even on raw frames; those may stay retrieval-bound, but an adequate
        consumer must remain adequate)."""
        merged_fmt = merged.fmt
        for parent in parents:
            parent_fmt = parent.fmt
            for demand in parent.demands:
                had = self._demand_adequate(parent_fmt, demand)
                if had and not self._demand_adequate(merged_fmt, demand):
                    return False
        return True

    def _evaluate_bump(
        self, sf: SFPlan
    ) -> Optional[Tuple[float, float, SFPlan]]:
        """Score one format's step to the next-faster coding option."""
        if sf.coding.raw:
            return None
        step_idx = sf.coding.speed_idx
        if step_idx + 1 >= len(SPEED_STEPS):
            return None
        faster = Coding(
            speed_step=SPEED_STEPS[step_idx + 1],
            keyframe_interval=sf.coding.keyframe_interval,
        )
        bumped = replace(sf, coding=faster)
        if not self._adequate(bumped.fmt, bumped.demands):
            return None
        d_sto = self.sf_storage(bumped) - self.sf_storage(sf)
        d_ing = self.sf_ingest(bumped) - self.sf_ingest(sf)
        if d_ing >= -_EPS:
            return None
        return d_sto, d_ing, bumped

    def _pair_moves(
        self, formats: List[SFPlan], cache: Optional[_MoveCache] = None
    ) -> Iterator[Tuple[float, float, int, int, SFPlan]]:
        """All safe pairwise merges as (d_storage, d_ingest, i, j, merged)."""
        cache = cache or _MoveCache(self)
        for i in range(len(formats)):
            for j in range(i + 1, len(formats)):
                move = cache.pair_move(formats[i], formats[j])
                if move is None:
                    continue
                d_sto, d_ing, merged = move
                yield d_sto, d_ing, i, j, merged

    def _coding_bump_moves(
        self, formats: List[SFPlan], cache: Optional[_MoveCache] = None
    ) -> Iterator[Tuple[float, float, int, SFPlan]]:
        """Per-format steps to a faster (cheaper-encode) coding option."""
        cache = cache or _MoveCache(self)
        for i, sf in enumerate(formats):
            move = cache.bump_move(sf)
            if move is None:
                continue
            d_sto, d_ing, bumped = move
            yield d_sto, d_ing, i, bumped

    # -- heuristic-based selection --------------------------------------------------------

    def heuristic_coalesce(
        self, decisions: Sequence[ConsumptionDecision]
    ) -> CoalescePlan:
        """The paper's heuristic: free merges first, then pay storage for
        ingest until the budget is met."""
        return self._climb(self.initial_formats(decisions))

    def _climb(self, formats: List[SFPlan],
               rounds: int = 0) -> CoalescePlan:
        """The shared hill-climb behind both planner entry points.

        Runs the two heuristic phases from an arbitrary seed format set:
        ``heuristic_coalesce`` seeds it with one SF per unique CF,
        ``incremental_coalesce`` with the re-demanded current plan.
        """
        cache = _MoveCache(self)

        # Phase 1: harvest free merges (no storage increase, less ingest).
        while True:
            best = None
            for d_sto, d_ing, i, j, merged in self._pair_moves(formats, cache):
                if d_sto > _EPS or d_ing > -_EPS:
                    continue
                key = (d_ing, d_sto)  # most ingest saved, then most storage
                if best is None or key < best[0]:
                    best = (key, i, j, merged)
            if best is None:
                break
            _, i, j, merged = best
            formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            formats.append(merged)
            rounds += 1

        # Phase 2: trade storage for ingest until under budget.
        while not self._within_budget(formats):
            best = None  # (storage paid per core saved, apply-closure)
            for d_sto, d_ing, i, j, merged in self._pair_moves(formats, cache):
                if d_ing > -_EPS:
                    continue
                price = d_sto / -d_ing
                if best is None or price < best[0]:
                    best = (price, ("merge", i, j, merged))
            for d_sto, d_ing, i, bumped in self._coding_bump_moves(
                formats, cache
            ):
                price = d_sto / -d_ing
                if best is None or price < best[0]:
                    best = (price, ("bump", i, None, bumped))
            if best is None:
                raise BudgetError(
                    f"ingestion budget {self.budget.cores} cores is infeasible: "
                    f"cheapest format set needs "
                    f"{self.ingest_cost(formats):.2f} cores"
                )
            _, (kind, i, j, new_sf) = best
            if kind == "merge":
                formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            else:
                formats = [f for k, f in enumerate(formats) if k != i]
            formats.append(new_sf)
            rounds += 1

        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
            rounds=rounds,
        )

    # -- incremental re-planning ---------------------------------------------------------

    def incremental_coalesce(
        self,
        decisions: Sequence[ConsumptionDecision],
        seed: Sequence[SFPlan],
    ) -> CoalescePlan:
        """Hill-climb from the *current* plan instead of re-enumerating.

        Evolutionary-style re-planning: the input to this round is the
        best plan so far.  The seed's formats are re-seeded with the new
        demand set —

        * a consumer already subscribed in the seed keeps its format (as
          long as that format still covers its CF and the subscription is
          not a provisional legacy binding — see :class:`Demand.legacy`);
        * consumers new to the mix — or whose CF outgrew their old home —
          get dedicated initial formats, one per unique leftover CF;
        * non-golden seed formats left without any demand are dropped;
        * every surviving format's coding is re-tightened to the cheapest
          adequate option for its remaining demands;
        * the golden format follows the new knob-wise maximum (keeping
          the seed's coding when the maximum is unchanged, so stored
          golden segments stay valid)

        — and the shared climb then runs from that set.  On a stationary
        workload the re-seeded set *is* the seed and the climb finds no
        moves, so the plan matches ``heuristic_coalesce``'s; under drift
        only moves touching the changed formats are evaluated, warm via
        the profiler's memo tables.
        """
        if not decisions:
            raise ConfigurationError("cannot plan storage with no consumers")
        seed = list(seed)
        home_of: Dict[Consumer, Tuple[SFPlan, Demand]] = {
            d.consumer: (sf, d) for sf in seed for d in sf.demands
        }
        kept: Dict[int, List[Demand]] = {}
        leftovers: Dict[Fidelity, List[Demand]] = {}
        for d in decisions:
            demand = Demand(d.consumer, d.fidelity, d.consumption_speed)
            home, seed_demand = home_of.get(d.consumer, (None, None))
            if (home is not None and not home.golden
                    and not seed_demand.legacy
                    and home.fidelity.richer_equal(d.fidelity)):
                kept.setdefault(id(home), []).append(demand)
            else:
                leftovers.setdefault(d.fidelity, []).append(demand)

        formats: List[SFPlan] = []
        for sf in seed:
            if sf.golden:
                continue
            demands = kept.get(id(sf))
            if not demands:
                continue  # demand vanished: retire the format
            formats.append(SFPlan(
                sf.fidelity,
                self._cheapest_adequate_coding(sf.fidelity, demands),
                demands,
            ))
        for fid, demands in leftovers.items():
            formats.append(SFPlan(
                fid, self._cheapest_adequate_coding(fid, demands), demands
            ))

        golden_fid = knobwise_max([d.fidelity for d in decisions])
        old_golden = next((sf for sf in seed if sf.golden), None)
        if old_golden is not None and old_golden.fidelity == golden_fid:
            golden_coding = old_golden.coding
        else:
            golden_coding = self._cheapest_adequate_coding(golden_fid, [])
        formats.append(SFPlan(golden_fid, golden_coding, [], golden=True))
        return self._climb(formats)

    # -- distance-based selection ------------------------------------------------------------

    @staticmethod
    def _knob_vector(fidelity: Fidelity) -> np.ndarray:
        """Knob indices normalized to [0, 1] for the similarity metric."""
        return np.array([
            fidelity.quality_idx / (len(QUALITIES) - 1),
            fidelity.resolution_idx / (len(RESOLUTION_ORDER) - 1),
            fidelity.sampling_idx / (len(SAMPLING_RATES) - 1),
            fidelity.crop_idx / (len(CROP_FACTORS) - 1),
        ])

    def distance_coalesce(
        self,
        decisions: Sequence[ConsumptionDecision],
        target_count: Optional[int] = 4,
    ) -> CoalescePlan:
        """The evaluated alternative: merge the closest pair in normalized
        knob space each round, ignoring resource impacts."""
        formats = self.initial_formats(decisions)
        rounds = 0
        vectors: Dict[Fidelity, np.ndarray] = {}
        distances: Dict[Tuple[Fidelity, Fidelity], float] = {}

        def vector(fidelity: Fidelity) -> np.ndarray:
            vec = vectors.get(fidelity)
            if vec is None:
                vec = self._knob_vector(fidelity)
                vectors[fidelity] = vec
            return vec

        def distance(a: SFPlan, b: SFPlan) -> float:
            # Distance depends only on the fidelity pair, so a merged format
            # reuses every distance its fidelity was already scored at.
            key = (a.fidelity, b.fidelity)
            dist = distances.get(key)
            if dist is None:
                dist = float(np.linalg.norm(
                    vector(a.fidelity) - vector(b.fidelity)
                ))
                distances[key] = dist
            return dist

        def done() -> bool:
            under_budget = self._within_budget(formats)
            at_target = target_count is None or len(formats) <= target_count
            return under_budget and at_target

        while len(formats) > 1 and not done():
            best = None
            for i in range(len(formats)):
                for j in range(i + 1, len(formats)):
                    dist = distance(formats[i], formats[j])
                    if best is None or dist < best[0]:
                        best = (dist, i, j)
            _, i, j = best
            merged = self.coalesce_pair(formats[i], formats[j])
            formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            formats.append(merged)
            rounds += 1

        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
            rounds=rounds,
        )

    # -- exhaustive enumeration (validation baseline, Section 6.4) -------------------------------

    def exhaustive(
        self, decisions: Sequence[ConsumptionDecision], max_cfs: int = 12
    ) -> CoalescePlan:
        """Score every set partition of the CFs; minimize storage cost, then
        ingest cost, subject to the ingestion budget.

        Partitions are enumerated iteratively (restricted growth strings)
        and every block — a subset of CFs — is profiled once: its merged
        fidelity, adequate coding, storage and ingest costs are memoized
        across the Bell-number many partitions that share it, so the loop
        body reduces to summing cached floats.  Fresh :class:`SFPlan`
        objects are built only for the winning partition.  Scoring is
        enumeration-order independent except for exact score ties, where
        the first partition visited wins (the legacy recursive enumerator
        visited partitions in a different order).
        """
        by_cf: Dict[Fidelity, List[Demand]] = {}
        for d in decisions:
            by_cf.setdefault(d.fidelity, []).append(
                Demand(d.consumer, d.fidelity, d.consumption_speed)
            )
        cfs = list(by_cf.items())
        if len(cfs) > max_cfs:
            raise ConfigurationError(
                f"exhaustive enumeration over {len(cfs)} CFs is unaffordable "
                f"(limit {max_cfs}); use heuristic_coalesce"
            )
        golden_fid = knobwise_max([d.fidelity for d in decisions])

        # Reference adequacy: what each CF's own dedicated SF can deliver.
        own_adequate: Dict[Fidelity, bool] = {}
        for fid, demands in cfs:
            coding = self._cheapest_adequate_coding(fid, demands)
            own_adequate[fid] = self._adequate(
                StorageFormat(fid, coding), demands
            )

        # Block memo: CF-index subset -> (fidelity, coding, storage, ingest)
        # for feasible blocks, or None for infeasible ones.
        block_memo: Dict[Tuple[int, ...], Optional[tuple]] = {}

        def block_info(key: Tuple[int, ...]) -> Optional[tuple]:
            if key in block_memo:
                return block_memo[key]
            fidelity = knobwise_max([cfs[k][0] for k in key])
            demands = [dem for k in key for dem in cfs[k][1]]
            coding = self._cheapest_adequate_coding(fidelity, demands)
            fmt = StorageFormat(fidelity, coding)
            info: Optional[tuple] = None
            if all(
                not own_adequate[cfs[k][0]] or self._adequate(fmt, cfs[k][1])
                for k in key
            ):
                profile = self.profiler.profile(fmt)
                info = (
                    fidelity, coding,
                    profile.bytes_per_second, profile.ingest_cost,
                )
            block_memo[key] = info
            return info

        golden_costs: Optional[Tuple[Coding, float, float]] = None

        def golden_info() -> Tuple[Coding, float, float]:
            nonlocal golden_costs
            if golden_costs is None:
                coding = self._cheapest_adequate_coding(golden_fid, [])
                profile = self.profiler.profile(
                    StorageFormat(golden_fid, coding)
                )
                golden_costs = (
                    coding, profile.bytes_per_second, profile.ingest_cost
                )
            return golden_costs

        best: Optional[tuple] = None  # (score, blocks, infos, has_golden)
        for blocks in _index_partitions(len(cfs)):
            infos = []
            for block in blocks:
                info = block_info(tuple(block))
                if info is None:
                    break
                infos.append(info)
            else:
                has_golden = any(info[0] == golden_fid for info in infos)
                storage = sum(info[2] for info in infos)
                ingest = sum(info[3] for info in infos)
                if not has_golden:
                    _, g_storage, g_ingest = golden_info()
                    storage += g_storage
                    ingest += g_ingest
                if (self.budget.cores is not None
                        and ingest > self.budget.cores + _EPS):
                    continue
                score = (storage, ingest)
                if best is None or score < best[0]:
                    best = (score, [list(b) for b in blocks], infos,
                            has_golden)
        if best is None:
            raise BudgetError("no partition satisfies the ingestion budget")

        # Materialize fresh SFPlans for the winning partition only; the
        # first block at the golden fidelity (if any) becomes the golden SF.
        _, blocks, infos, has_golden = best
        formats: List[SFPlan] = []
        golden_marked = False
        for block, (fidelity, coding, _, _) in zip(blocks, infos):
            demands = [dem for k in block for dem in cfs[k][1]]
            is_golden = not golden_marked and fidelity == golden_fid
            golden_marked = golden_marked or is_golden
            formats.append(SFPlan(fidelity, coding, demands, golden=is_golden))
        if not has_golden:
            coding, _, _ = golden_info()
            formats.append(SFPlan(golden_fid, coding, [], golden=True))
        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
        )


def _index_partitions(n: int) -> Iterator[List[List[int]]]:
    """All set partitions of range(n), via iterative restricted-growth-string
    enumeration (no recursion, no per-partition allocation beyond blocks)."""
    if n == 0:
        yield []
        return
    a = [0] * n  # a[i] = block number of item i; a restricted growth string
    m = [0] * n  # m[i] = max(a[:i + 1])
    while True:
        blocks: List[List[int]] = [[] for _ in range(m[n - 1] + 1)]
        for i, b in enumerate(a):
            blocks[b].append(i)
        yield blocks
        i = n - 1
        while i > 0 and a[i] == m[i - 1] + 1:
            i -= 1
        if i == 0:
            return
        a[i] += 1
        if a[i] > m[i]:
            m[i] = a[i]
        for j in range(i + 1, n):
            a[j] = 0
            m[j] = m[i]


def _set_partitions(items: List[int]) -> Iterator[List[List[int]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    for blocks in _index_partitions(len(items)):
        yield [[items[i] for i in block] for block in blocks]
