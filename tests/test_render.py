"""Pixel rendering of synthetic frames (the optional visual path)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.video.datasets import get_dataset
from repro.video.fidelity import Fidelity
from repro.video.render import render_clip, render_frame


@pytest.fixture(scope="module")
def model():
    return get_dataset("jackson").content()


def test_frame_dimensions_follow_fidelity(model):
    f = Fidelity("good", "200p", Fraction(1), 0.75)
    img = render_frame(model, 10.0, f)
    assert img.shape == (150, 150)
    assert img.dtype == np.uint8


def test_rendering_is_deterministic(model):
    f = Fidelity("bad", "144p", Fraction(1), 1.0)
    a = render_frame(model, 33.0, f)
    b = render_frame(model, 33.0, f)
    assert (a == b).all()


def test_quality_adds_noise(model):
    t = 20.0
    base = render_frame(model, t, Fidelity("best", "200p", Fraction(1), 1.0))
    noisy = render_frame(model, t, Fidelity("worst", "200p", Fraction(1), 1.0))
    diff = np.abs(base.astype(int) - noisy.astype(int))
    assert diff.mean() > 3.0  # visible compression-like noise


def test_objects_change_pixels(model):
    # Find a time with a visible object; the frame should differ from the
    # empty background at the same nominal time without objects.
    f = Fidelity("best", "200p", Fraction(1), 1.0)
    tracks = model.tracks_between(0.0, 600.0)
    # Pick a high-contrast dark or bright vehicle so the rectangle stands
    # out from the mid-grey background.
    visible = next(
        t for t in tracks
        if t.in_crop((t.t0 + t.t1) / 2, 0.9) and t.size > 0.06
        and t.color in ("white", "black") and t.contrast > 0.7
    )
    mid = (visible.t0 + visible.t1) / 2
    with_obj = render_frame(model, mid, f)
    empty_t = 1e7  # far future; almost surely empty
    if not model.frame_truth(empty_t).visible:
        without = render_frame(model, empty_t, f)
        assert np.abs(with_obj.astype(int) - without.astype(int)).max() > 20


def test_render_clip_respects_sampling(model):
    f = Fidelity("good", "100p", Fraction(1, 6), 1.0)
    clip = render_clip(model, 0.0, 2.0, f)
    assert clip.shape == (10, 100, 100)  # 2 s at 5 fps
