"""Accuracy metric: the F1 score over (expected) confusion counts.

The paper uses F1 — the harmonic mean of precision and recall — with the
operator's output on the ingest-format video as ground truth (Section 6.1).
Confusion counts here are *expected* counts: detection models yield
per-frame probabilities, and summing probabilities gives deterministic,
smooth accuracy surfaces suitable for the monotone boundary search.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Confusion:
    """Expected true-positive / false-positive / false-negative counts."""

    tp: float
    fp: float
    fn: float

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(self.tp + other.tp, self.fp + other.fp, self.fn + other.fn)

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom > 0 else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom > 0 else 1.0

    @property
    def f1(self) -> float:
        return f1_score(self.tp, self.fp, self.fn)


def f1_score(tp: float, fp: float, fn: float) -> float:
    """F1 = 2·TP / (2·TP + FP + FN); defined as 1.0 on an empty clip.

    An empty clip (no positives in truth, none predicted) carries no
    evidence of error, so it scores 1.0 — this also makes the score of the
    ingest fidelity exactly 1.0, the paper's normalization.
    """
    denom = 2.0 * tp + fp + fn
    if denom <= 0.0:
        return 1.0
    return 2.0 * tp / denom
