"""Coding knobs (Table 1)."""

import pytest

from repro.errors import KnobError
from repro.video.coding import (
    Coding,
    KEYFRAME_INTERVALS,
    RAW,
    SPEED_STEPS,
    cheaper_decode_order,
    coding_space,
    coding_space_size,
)


def test_domains_match_table1():
    assert SPEED_STEPS == ("slowest", "slow", "med", "fast", "fastest")
    assert KEYFRAME_INTERVALS == (5, 10, 50, 100, 250)
    assert coding_space_size() == 26
    assert coding_space_size(include_raw=False) == 25


def test_space_contains_raw_once():
    space = list(coding_space())
    assert space.count(RAW) == 1
    assert len(set(space)) == 26


def test_raw_takes_no_knobs():
    assert RAW.raw
    with pytest.raises(KnobError):
        Coding(speed_step="fast", raw=True)
    with pytest.raises(KnobError):
        _ = RAW.speed_idx


def test_illegal_values_rejected():
    with pytest.raises(KnobError):
        Coding(speed_step="turbo", keyframe_interval=250)
    with pytest.raises(KnobError):
        Coding(speed_step="fast", keyframe_interval=7)


def test_label_round_trip():
    c = Coding(speed_step="med", keyframe_interval=50)
    assert c.label == "50-med"
    assert Coding.parse(c.label) == c
    assert Coding.parse("RAW") == RAW


def test_parse_rejects_malformed():
    with pytest.raises(KnobError):
        Coding.parse("garbage")


def test_speed_idx_order():
    assert Coding("slowest", 250).speed_idx == 0
    assert Coding("fastest", 250).speed_idx == 4


def test_cheaper_decode_order_ends_with_raw():
    order = cheaper_decode_order()
    assert order[-1] == RAW
    assert len(order) == 26
    # Faster speed steps come first (cheaper decoding).
    assert order[0].speed_step == "fastest"
