"""Retrieval: streaming stored segments to consumers.

Retrieval speed is the realtime multiple at which a storage format can be
turned back into raw frames for a given consumer: decode-bound for encoded
formats (with chunk skipping under sparse sampling), disk-bound for raw
formats.  Requirement R2 demands that retrieval never be slower than the
downstream consumer.
"""

from repro.retrieval.reader import SegmentReader
from repro.retrieval.speed import retrieval_speed

__all__ = ["SegmentReader", "retrieval_speed"]
