"""Hot-segment promotion between disk tiers.

The paper's store runs off one HDD array; a deployment serving heavy
multi-tenant traffic adds a small fast tier (NVMe/SSD class) in front of
it.  The :class:`TierManager` closes the cross-layer loop: the retrieval
cache observes per-segment access frequency, and a periodic sweep promotes
the hottest segments onto the fast tier — charging the migration I/O to
the simulated clock — and demotes segments that went cold, so raw-format
reads of hot footage run at fast-tier bandwidth instead of HDD bandwidth.

Only the *disk-bound* part of retrieval benefits: encoded segments are
decode-bound in this model, so promotion pays off for raw storage formats
(and for any future format whose retrieval is bandwidth-limited), exactly
as in the paper's bottleneck analysis (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.clock import SimClock
from repro.storage.disk import DiskModel
from repro.units import GB

SegmentId = Tuple[str, int]  # (stream, segment index)


@dataclass(frozen=True)
class StorageTier:
    """Bandwidth/overhead envelope of one storage tier."""

    name: str
    read_bandwidth: float  # bytes per second, sequential
    write_bandwidth: float
    request_overhead: float  # seconds per random request

    def read_seconds(self, n_bytes: float, requests: int = 1) -> float:
        return n_bytes / self.read_bandwidth + requests * self.request_overhead

    def write_seconds(self, n_bytes: float, requests: int = 1) -> float:
        return n_bytes / self.write_bandwidth + requests * self.request_overhead


#: The fast tier the paper's platform would add today (NVMe class).
FAST_TIER = StorageTier(
    name="nvme",
    read_bandwidth=3.2 * GB,
    write_bandwidth=2.0 * GB,
    request_overhead=20e-6,
)


@dataclass(frozen=True)
class TierConfig:
    """Knobs of the promotion loop."""

    fast: StorageTier = FAST_TIER
    capacity_bytes: float = 4.0 * GB  # fast-tier budget
    promote_accesses: int = 3  # accesses within a window to count as hot
    demote_accesses: int = 1  # below this after decay, a segment is cold


@dataclass
class _Placement:
    nbytes: float
    accesses_at_promotion: int


class TierManager:
    """Tracks per-segment heat and migrates segments between tiers."""

    def __init__(self, config: TierConfig):
        self.config = config
        self._accesses: Dict[SegmentId, int] = {}
        self._bytes: Dict[SegmentId, float] = {}
        self._promoted: Dict[SegmentId, _Placement] = {}
        self.fast_bytes = 0.0
        # counters
        self.promotions = 0
        self.demotions = 0
        self.migrated_bytes = 0.0
        self.migration_seconds = 0.0
        self.invalidations = 0

    # -- heat tracking -----------------------------------------------------

    def record_access(self, stream: str, index: int, nbytes: float) -> None:
        """Count one retrieval of a segment (cache hit or miss alike)."""
        seg = (stream, index)
        self._accesses[seg] = self._accesses.get(seg, 0) + 1
        self._bytes[seg] = max(self._bytes.get(seg, 0.0), nbytes)

    def accesses(self, stream: str, index: int) -> int:
        return self._accesses.get((stream, index), 0)

    def is_fast(self, stream: str, index: int) -> bool:
        return (stream, index) in self._promoted

    @property
    def promoted_segments(self) -> int:
        return len(self._promoted)

    def read_params(self, stream: str, index: int, default_bandwidth: float,
                    default_overhead: float) -> Tuple[float, float]:
        """(bandwidth, request overhead) serving this segment's raw reads."""
        if self.is_fast(stream, index):
            fast = self.config.fast
            return fast.read_bandwidth, fast.request_overhead
        return default_bandwidth, default_overhead

    # -- migration ---------------------------------------------------------

    @staticmethod
    def _slow_disk(slow: DiskModel, seg: SegmentId) -> DiskModel:
        """The slow-tier disk serving one segment.

        A :class:`~repro.storage.sharding.ShardedDiskArray` resolves to
        the segment's assigned shard (migration reads/writes occupy that
        spindle); a plain :class:`DiskModel` is its own answer.
        """
        locate = getattr(slow, "segment_disk", None)
        return slow if locate is None else locate(seg[0], seg[1])

    @staticmethod
    def _note_slow_io(slow: DiskModel, seg: SegmentId, seconds: float) -> None:
        note = getattr(slow, "note_slow_io", None)
        if note is not None:
            note(seg[0], seg[1], seconds)

    def sweep(self, clock: SimClock, slow: DiskModel) -> Tuple[int, int]:
        """One promotion/demotion round; returns (promoted, demoted).

        Demotes promoted segments whose decayed access count dropped below
        the cold threshold, then promotes the hottest unpromoted segments
        that fit the fast-tier budget.  Every byte moved is charged to the
        clock under the ``"migrate"`` category: a promotion reads from the
        slow tier and writes to the fast one, a demotion the reverse.  On
        a sharded slow tier the slow-side I/O runs against (and is
        attributed to) the segment's assigned shard.  Access counts are
        halved afterwards so heat reflects a sliding window rather than
        all time.
        """
        fast = self.config.fast
        demoted = 0
        for seg in list(self._promoted):
            if self._accesses.get(seg, 0) < self.config.demote_accesses:
                placement = self._promoted.pop(seg)
                self.fast_bytes -= placement.nbytes
                disk = self._slow_disk(slow, seg)
                # Keep the pre-sharding float association (a + b) + c: the
                # one-shard array must charge bit-identical seconds.
                self._charge(clock,
                             fast.read_seconds(placement.nbytes)
                             + placement.nbytes / disk.write_bandwidth
                             + disk.request_overhead,
                             placement.nbytes)
                self._note_slow_io(slow, seg,
                                   placement.nbytes / disk.write_bandwidth
                                   + disk.request_overhead)
                self.demotions += 1
                demoted += 1

        hot = sorted(
            (
                (count, seg) for seg, count in self._accesses.items()
                if count >= self.config.promote_accesses
                and seg not in self._promoted
            ),
            key=lambda item: (-item[0], item[1]),
        )
        promoted = 0
        for count, seg in hot:
            nbytes = self._bytes.get(seg, 0.0)
            if nbytes <= 0 or self.fast_bytes + nbytes > self.config.capacity_bytes:
                continue
            self._promoted[seg] = _Placement(nbytes, count)
            self.fast_bytes += nbytes
            disk = self._slow_disk(slow, seg)
            slow_seconds = nbytes / disk.read_bandwidth + disk.request_overhead
            self._charge(clock,
                         slow_seconds + fast.write_seconds(nbytes),
                         nbytes)
            self._note_slow_io(slow, seg, slow_seconds)
            self.promotions += 1
            promoted += 1

        self._accesses = {
            seg: count // 2 for seg, count in self._accesses.items()
            if count // 2 > 0 or seg in self._promoted
        }
        # Prune sizes along with the decayed heat: over a long-lived
        # store the observed-bytes map must not outlive the segments'
        # relevance (its siblings are all explicitly byte-budgeted).
        self._bytes = {
            seg: nbytes for seg, nbytes in self._bytes.items()
            if seg in self._accesses or seg in self._promoted
        }
        return promoted, demoted

    def _charge(self, clock: SimClock, seconds: float, nbytes: float) -> None:
        clock.charge(seconds, "migrate")
        self.migration_seconds += seconds
        self.migrated_bytes += nbytes

    # -- invalidation ------------------------------------------------------

    def invalidate(self, stream: str, index: Optional[int] = None) -> int:
        """Forget a segment (or stream): its heat and placement are stale.

        No migration I/O is charged — the segment's bytes were rewritten or
        deleted by the caller; the fast-tier copy is simply dropped.
        """
        doomed = [
            seg for seg in set(self._accesses) | set(self._promoted)
            if seg[0] == stream and (index is None or seg[1] == index)
        ]
        for seg in doomed:
            self._accesses.pop(seg, None)
            self._bytes.pop(seg, None)
            placement = self._promoted.pop(seg, None)
            if placement is not None:
                self.fast_bytes -= placement.nbytes
        self.invalidations += len(doomed)
        return len(doomed)
