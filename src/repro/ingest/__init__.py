"""Ingestion: transcoding arriving streams into the storage-format set.

Each ingested stream is transcoded — in real time, as it arrives — into
every storage format of the current configuration (plus stored raw for
bypass formats).  Ingestion cost is measured in CPU cores: the paper caps
the cores available to one stream's transcoder to impose a budget
(Table 4).
"""

from repro.ingest.budget import IngestBudget
from repro.ingest.pipeline import IngestionPipeline, IngestionReport
from repro.ingest.transcoder import Transcoder

__all__ = ["IngestBudget", "IngestionPipeline", "IngestionReport", "Transcoder"]
