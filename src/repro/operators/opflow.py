"""Opflow: optical-flow tracker for object movements (OpenCV).

Optical flow matches pixels between consecutive *consumed* frames, so it is
the operator most sensitive to frame sampling: when the gap between
consumed frames grows, displacements exceed the flow search window and the
estimate degrades.  The model applies a gap-dependent confidence factor on
top of the usual signal machinery, pulling label probabilities toward
chance as the inter-sample displacement grows.
"""

from __future__ import annotations

import numpy as np

from repro.operators.base import logistic
from repro.operators.signal_op import SignalOperator
from repro.video.content import ClipTruth
from repro.video.fidelity import Fidelity


class OpflowOperator(SignalOperator):
    """Optical-flow movement tracker [OpenCV]."""

    name = "Opflow"
    platform = "cpu"

    # Cost: dense flow is expensive, superlinear in pixels.
    cost_base = 2.5e-4
    cost_per_mp = 3.8e-3
    cost_gamma = 1.0

    threshold = 0.05
    noise_floor = 5.0e-4
    quality_noise = 0.03  # gradients wash out with compression
    quality_alpha = 1.2
    detect_theta = 2.4  # needs textured pixels on the object
    detect_width = 0.55
    camera_weight = 0.9

    #: Normalized displacement between consumed frames beyond which flow
    #: matching starts to fail.
    flow_window: float = 0.035
    flow_sharpness: float = 0.012

    def gap_confidence(self, clip: ClipTruth, fidelity: Fidelity) -> float:
        """Confidence factor in [0,1]: exactly 1 at the ingest sampling rate
        (the normalization that makes ingest-fidelity accuracy 1.0), falling
        toward 0 when inter-sample displacement exceeds the flow window."""
        stride = 1.0 / float(fidelity.sampling)
        if clip.tracks:
            mean_speed = float(np.mean([t.speed for t in clip.tracks]))
        else:
            mean_speed = 0.05

        def raw(gap_seconds: float) -> float:
            displacement = mean_speed * gap_seconds
            return float(
                logistic((self.flow_window - displacement) / self.flow_sharpness)
            )

        dense = raw(1.0 / float(clip.fps))
        if dense <= 0.0:
            return 0.0
        return min(1.0, raw(stride / float(clip.fps)) / dense)

    def label_probability(self, clip: ClipTruth, fidelity: Fidelity) -> np.ndarray:
        base = super().label_probability(clip, fidelity)
        confidence = self.gap_confidence(clip, fidelity)
        # Low confidence pulls the label toward a coin flip.
        return 0.5 + (base - 0.5) * confidence
