"""Alternative configuration schemes evaluated in Figure 11.

* ``1->1`` stores only the golden format and consumes it at full fidelity:
  a classic video database oblivious to algorithmic consumers;
* ``1->N`` stores only the golden format but consumes VStore's derived
  consumption formats, capping every consumer at the golden decode speed;
* ``N->N`` stores one storage format per unique consumption format —
  VStore without coalescing;
* ``VStore`` is the full system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.coalesce import StorageFormatPlanner
from repro.core.config import Configuration
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class AlternativeScheme:
    """One way of mapping consumers to consumption/storage formats."""

    name: str
    consumption_fidelity: Callable[[Consumer], Fidelity]
    storage_format: Callable[[Consumer], StorageFormat]
    storage_formats: List[StorageFormat]
    #: Whether consumers reach their target accuracy (False only for 1->1,
    #: which always consumes at full fidelity and accuracy 1.0).
    honors_targets: bool = True


def _golden(config: Configuration) -> StorageFormat:
    return config.plan.golden.fmt


def vstore_scheme(config: Configuration) -> AlternativeScheme:
    """The full system: derived CFs subscribing to coalesced SFs."""
    return AlternativeScheme(
        name="VStore",
        consumption_fidelity=lambda c: config.decision_for(c).fidelity,
        storage_format=lambda c: config.storage_format(c),
        storage_formats=config.storage_formats,
    )


def one_to_one_scheme(config: Configuration) -> AlternativeScheme:
    """1->1: golden storage, golden consumption (accuracy fixed at 1.0)."""
    golden = _golden(config)
    return AlternativeScheme(
        name="1->1",
        consumption_fidelity=lambda c: golden.fidelity,
        storage_format=lambda c: golden,
        storage_formats=[golden],
        honors_targets=False,
    )


def one_to_n_scheme(config: Configuration) -> AlternativeScheme:
    """1->N: golden storage, VStore consumption formats."""
    golden = _golden(config)
    return AlternativeScheme(
        name="1->N",
        consumption_fidelity=lambda c: config.decision_for(c).fidelity,
        storage_format=lambda c: golden,
        storage_formats=[golden],
    )


def n_to_n_scheme(
    config: Configuration, profiler: CodingProfiler
) -> AlternativeScheme:
    """N->N: one storage format per unique CF — VStore without coalescing.

    Like every scheme, N->N also retains the ingest-fidelity (golden)
    version: the store must keep the footage that defines ground truth and
    serves unforeseen future operators, so skipping coalescing only *adds*
    formats on top of it.
    """
    planner = StorageFormatPlanner(profiler)
    initial = planner.initial_formats(config.decisions)
    by_fidelity: Dict[Fidelity, StorageFormat] = {
        sf.fidelity: sf.fmt for sf in initial if not sf.golden
    }
    golden = next(sf.fmt for sf in initial if sf.golden)

    def sf_for(consumer: Consumer) -> StorageFormat:
        return by_fidelity[config.decision_for(consumer).fidelity]

    formats = list(by_fidelity.values())
    if golden.fidelity not in by_fidelity:
        formats.append(golden)
    return AlternativeScheme(
        name="N->N",
        consumption_fidelity=lambda c: config.decision_for(c).fidelity,
        storage_format=sf_for,
        storage_formats=formats,
    )
