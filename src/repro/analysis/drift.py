"""Regret-vs-oracle report for online evolution under query-mix drift.

The scenario is the two-phase drift workload the online-evolution stack is
judged by.  A store is configured for a *phase-1* consumer mix (the three
"query B" operators), ingests footage, and serves phase-1 queries; then the
mix flips to the *phase-2* operators ("query A") and three arms diverge:

* **frozen** — the Section-7 stopgap only: new consumers subscribe to the
  cheapest existing storage format with satisfiable fidelity
  (:func:`~repro.core.evolve.legacy_configuration`); the store never
  re-encodes, so every phase-2 query retrieves from over-rich formats.
* **online** — same start, but after the drift detector's window flags the
  new mix, :meth:`~repro.core.store.VStore.evolve_online` re-plans
  incrementally and materializes the missing formats with background jobs
  that contend with concurrently admitted foreground queries.
* **oracle** — configured for the union mix from the start (it knew the
  future); its phase-2 cost is the best the planner can do.

The headline number is **recovery**: the fraction of the oracle's
retrieval-cost advantage over the frozen plan that online evolution wins
back, ``(frozen - online) / (frozen - oracle)``.  Retrieval cost is read
off the *plans* of foreground outcomes (summed ``retrieve``-task seconds),
so the comparison is independent of how contention scheduled each run.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.evolve import decide_consumers, legacy_configuration
from repro.core.store import VStore
from repro.errors import ConfigurationError
from repro.operators.library import Consumer, default_library
from repro.units import SEGMENT_SECONDS

__all__ = [
    "DRIFT_PHASE1",
    "DRIFT_PHASE2",
    "DriftRegretReport",
    "EvolutionSummary",
    "drift_regret_report",
    "format_drift_table",
    "retrieval_seconds",
]

#: Phase-1 mix: the benchmark query-B operators (their consumption formats
#: coalesce into a rich 540p golden format, which phase 2 can live off).
DRIFT_PHASE1: Tuple[Consumer, ...] = (
    Consumer("Motion", 0.9),
    Consumer("License", 0.9),
    Consumer("OCR", 0.9),
)

#: Phase-2 mix: the benchmark query-A operators (cheap, low-resolution
#: consumption formats the phase-1 plan never materialized).
DRIFT_PHASE2: Tuple[Consumer, ...] = (
    Consumer("Diff", 0.9),
    Consumer("S-NN", 0.9),
    Consumer("NN", 0.9),
)

_OPERATORS = tuple(c.operator for c in DRIFT_PHASE1 + DRIFT_PHASE2)


def retrieval_seconds(outcomes: Iterable) -> float:
    """Planned retrieve-task seconds over the foreground outcomes.

    Background jobs (``session.klass != 0``) are excluded: migration I/O
    is evolution's *cost*, not query demand.  Durations come from the
    plans, so the metric is identical under any contention schedule.
    """
    return sum(
        task.duration
        for outcome in outcomes
        if getattr(outcome.session, "klass", 0) == 0
        for stage in outcome.session.plan.stages
        for task in stage.tasks
        if task.kind == "retrieve"
    )


@dataclass(frozen=True)
class EvolutionSummary:
    """What one ``evolve_online`` round did, condensed for the report."""

    epoch: int
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    kept: Tuple[str, ...]
    reencoded_segments: int
    retired_segments: int
    foreground_queries: int


@dataclass(frozen=True)
class DriftRegretReport:
    """Three-arm phase-2 retrieval cost and the recovery fraction."""

    dataset: str
    n_segments: int
    phase1: Tuple[Consumer, ...]
    phase2: Tuple[Consumer, ...]
    phase2_queries: int
    #: Phase-2 retrieval seconds per arm (``online`` is None when the
    #: online arm was not run).
    frozen_seconds: float
    oracle_seconds: float
    online_seconds: Optional[float]
    #: Drift score the online arm's detector reported just before
    #: evolving (frozen-arm score when the online arm was skipped).
    drift_score: float
    drifted: bool
    evolution: Optional[EvolutionSummary]

    @property
    def oracle_advantage(self) -> float:
        """Retrieval seconds the oracle saves over the frozen plan."""
        return self.frozen_seconds - self.oracle_seconds

    @property
    def recovery(self) -> Optional[float]:
        """Fraction of the oracle's advantage online evolution won back."""
        if self.online_seconds is None:
            return None
        advantage = self.oracle_advantage
        if advantage <= 0.0:
            # The frozen plan was already optimal; nothing to recover.
            return 1.0
        return (self.frozen_seconds - self.online_seconds) / advantage


def _phase_specs(query: str, dataset: str, accuracy: float,
                 t1: float, count: int) -> List[Dict]:
    return [
        {"query": query, "dataset": dataset, "accuracy": accuracy,
         "t0": 0.0, "t1": t1}
        for _ in range(count)
    ]


def _contended_pools() -> Dict[str, object]:
    # Deliberately tight pools for the shared evolution run, so the report
    # exercises background jobs genuinely contending with foreground
    # queries (retrieval *cost* is plan-side and unaffected either way).
    from repro.codec.decoder import DecoderPool
    from repro.query.scheduler import OperatorContextPool
    from repro.storage.disk import DiskBandwidthPool

    return {
        "disk_pool": DiskBandwidthPool(1),
        "decoder_pool": DecoderPool(1),
        "operator_pool": OperatorContextPool(2),
    }


def drift_regret_report(
    online: bool = True,
    dataset: str = "jackson",
    n_segments: int = 4,
    phase1_queries: int = 4,
    phase2_queries: int = 20,
    detection_queries: int = 4,
    evolution_foreground: int = 2,
    accuracy: float = 0.9,
    workdir: Optional[str] = None,
) -> DriftRegretReport:
    """Run the two-phase drift scenario and report regret vs the oracle.

    The online arm pays honestly for adaptation: ``detection_queries``
    phase-2 queries run at frozen-plan cost before the detector's window
    flags drift, and ``evolution_foreground`` more are admitted as
    foreground work *during* the evolution run (planned against the old
    configuration, so also at frozen cost).  Only the remaining
    ``phase2_queries - detection_queries - evolution_foreground`` queries
    see the evolved formats — recovery < 1 by construction.

    ``workdir`` hosts the three per-arm stores (a temporary directory is
    used and cleaned up when omitted).
    """
    if phase2_queries <= detection_queries + evolution_foreground:
        raise ConfigurationError(
            "phase2_queries must exceed detection_queries + "
            "evolution_foreground, or no query ever sees the evolved plan"
        )
    if not online:
        evolution_foreground = 0

    t1 = n_segments * SEGMENT_SECONDS - 1.0
    phase1 = _phase_specs("B", dataset, accuracy, t1, phase1_queries)

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="vstore-drift-")
        workdir = tmp.name
    try:
        def build(name: str, consumers: Sequence[Consumer]) -> VStore:
            store = VStore(
                workdir=os.path.join(workdir, name),
                library=default_library(names=_OPERATORS),
            )
            store.configure(consumers=list(consumers))
            store.ingest(dataset, n_segments=n_segments)
            store.execute_many(phase1)
            return store

        def adopt_legacy(store: VStore) -> None:
            decisions = decide_consumers(
                store.library, DRIFT_PHASE2, clock=store.clock,
                known={d.consumer: d
                       for d in store.configuration.decisions},
            )
            store.adopt(legacy_configuration(store.configuration, decisions))

        # Arm 1: frozen — legacy subscriptions only, never evolves.
        with build("frozen", DRIFT_PHASE1) as frozen:
            adopt_legacy(frozen)
            frozen_outcomes = frozen.execute_many(
                _phase_specs("A", dataset, accuracy, t1, phase2_queries)
            )
            frozen_seconds = retrieval_seconds(frozen_outcomes)
            frozen_score = frozen.drift.drift_score()
            frozen_drifted = frozen.drift.drifted

        # Arm 2: oracle — knew the union mix from the start.
        with build("oracle", DRIFT_PHASE1 + DRIFT_PHASE2) as oracle:
            oracle_outcomes = oracle.execute_many(
                _phase_specs("A", dataset, accuracy, t1, phase2_queries)
            )
            oracle_seconds = retrieval_seconds(oracle_outcomes)

        # Arm 3: online — frozen start, evolves once drift is detected.
        online_seconds: Optional[float] = None
        drift_score, drifted = frozen_score, frozen_drifted
        evolution: Optional[EvolutionSummary] = None
        if online:
            with build("online", DRIFT_PHASE1) as store:
                adopt_legacy(store)
                detected = store.execute_many(
                    _phase_specs("A", dataset, accuracy, t1,
                                 detection_queries)
                )
                drift_score = store.drift.drift_score()
                drifted = store.drift.drifted
                report = store.evolve_online(
                    foreground=_phase_specs("A", dataset, accuracy, t1,
                                            evolution_foreground),
                    **_contended_pools(),
                )
                remaining = (phase2_queries - detection_queries
                             - evolution_foreground)
                evolved = store.execute_many(
                    _phase_specs("A", dataset, accuracy, t1, remaining)
                )
                online_seconds = (
                    retrieval_seconds(detected)
                    + retrieval_seconds(report.foreground)
                    + retrieval_seconds(evolved)
                )
                replan = report.replan
                evolution = EvolutionSummary(
                    epoch=report.epoch,
                    added=tuple(sf.label for sf in replan.added),
                    removed=tuple(sf.label for sf in replan.removed),
                    kept=tuple(sf.label for sf in replan.kept),
                    reencoded_segments=report.reencoded_segments,
                    retired_segments=report.retired_segments,
                    foreground_queries=len(report.foreground),
                )
    finally:
        if tmp is not None:
            tmp.cleanup()

    return DriftRegretReport(
        dataset=dataset,
        n_segments=n_segments,
        phase1=DRIFT_PHASE1,
        phase2=DRIFT_PHASE2,
        phase2_queries=phase2_queries,
        frozen_seconds=frozen_seconds,
        oracle_seconds=oracle_seconds,
        online_seconds=online_seconds,
        drift_score=drift_score,
        drifted=drifted,
        evolution=evolution,
    )


def format_drift_table(report: DriftRegretReport) -> str:
    """Human-readable regret report (the CLI ``evolve`` command's output)."""
    lines = [
        f"drift scenario on {report.dataset} "
        f"({report.n_segments} segments, "
        f"{report.phase2_queries} phase-2 queries)",
        "  phase 1: " + ", ".join(
            f"{c.operator}@{c.accuracy:.2f}" for c in report.phase1),
        "  phase 2: " + ", ".join(
            f"{c.operator}@{c.accuracy:.2f}" for c in report.phase2),
        f"  drift score at detection: {report.drift_score:.3f} "
        f"({'drifted' if report.drifted else 'stationary'})",
        "",
        f"  {'arm':>8}  retrieval seconds (phase 2)",
        f"  {'frozen':>8}  {report.frozen_seconds:12.4f}",
    ]
    if report.online_seconds is not None:
        lines.append(f"  {'online':>8}  {report.online_seconds:12.4f}")
    lines.append(f"  {'oracle':>8}  {report.oracle_seconds:12.4f}")
    if report.evolution is not None:
        ev = report.evolution
        lines += [
            "",
            f"  evolution (epoch {ev.epoch}): "
            f"re-encoded {ev.reencoded_segments} segments, "
            f"retired {ev.retired_segments}, "
            f"{ev.foreground_queries} foreground queries ran alongside",
            "    added:   " + (", ".join(ev.added) or "-"),
            "    removed: " + (", ".join(ev.removed) or "-"),
            "    kept:    " + (", ".join(ev.kept) or "-"),
        ]
    recovery = report.recovery
    if recovery is not None:
        lines += [
            "",
            f"  oracle advantage: {report.oracle_advantage:.4f} s; "
            f"online recovered {recovery:.1%} of it",
        ]
    return "\n".join(lines)
