"""Open-loop workload generation: arrival processes and tenant mixes.

A *closed-loop* benchmark admits every query at t=0 and measures the
drain; an *open-loop* one feeds the executor a continuous arrival stream
whose rate does not react to the store's speed — the regime where
queueing delay, admission control and SLOs actually mean something.
This module builds those streams deterministically:

* :func:`poisson_arrivals` — memoryless arrivals at a fixed rate;
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson
  process (MMPP): calm and burst phases with different rates, the
  classic model for camera fleets that go quiet at night and spike on
  events;
* :func:`diurnal_arrivals` — a non-homogeneous Poisson process thinned
  against a sinusoidal rate curve (one "day" per ``period``);
* :func:`trace_arrivals` — replay explicit timestamps from a recorded
  trace.

Every generator is a pure function of its parameters and a seed
(:func:`repro.rng.rng_for` underneath), so the same spec always yields
the same stream — workloads are as reproducible as the queries they
carry.

:class:`TenantSpec` bundles a tenant's arrival process with its *query
mix* (weighted :class:`QueryMixEntry` choices), SLO, fair-share weight
and admission quota; :func:`build_workload` merges the per-tenant
streams into one deterministic arrival list, and
:func:`workload_specs` lowers it to ``execute_many``-style admit specs
(``arrival``, ``tenant`` and ``deadline = arrival + slo`` included) —
what :meth:`VStore.serve` feeds the executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.rng import rng_for

__all__ = [
    "ArrivalSpec",
    "Arrival",
    "QueryMixEntry",
    "TenantSpec",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "trace_arrivals",
    "generate_arrivals",
    "build_workload",
    "workload_specs",
]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


def poisson_arrivals(rate: float, horizon: float, seed: object) -> List[float]:
    """Poisson arrivals at ``rate`` per simulated second over ``horizon``.

    Inter-arrival gaps are i.i.d. exponential draws from a generator
    seeded by ``("poisson", seed)`` — same seed, same stream.
    """
    if rate <= 0:
        raise QueryError(f"arrival rate must be positive: {rate}")
    if horizon <= 0:
        raise QueryError(f"horizon must be positive: {horizon}")
    rng = rng_for("workload", "poisson", seed)
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            return times
        times.append(t)


def bursty_arrivals(
    rate_calm: float,
    rate_burst: float,
    horizon: float,
    seed: object,
    *,
    dwell_calm: float = 10.0,
    dwell_burst: float = 2.0,
) -> List[float]:
    """Two-state MMPP: exponential dwell in each phase, Poisson within.

    Starts calm; phase switches are part of the same seeded stream, so
    the burst placement is reproducible.  ``dwell_*`` are the *mean*
    phase lengths in simulated seconds.
    """
    for name, value in (("rate_calm", rate_calm), ("rate_burst", rate_burst),
                        ("dwell_calm", dwell_calm),
                        ("dwell_burst", dwell_burst)):
        if value <= 0:
            raise QueryError(f"{name} must be positive: {value}")
    if horizon <= 0:
        raise QueryError(f"horizon must be positive: {horizon}")
    rng = rng_for("workload", "bursty", seed)
    times: List[float] = []
    t = 0.0
    burst = False
    phase_end = rng.exponential(dwell_calm)
    while t < horizon:
        rate = rate_burst if burst else rate_calm
        t_next = t + rng.exponential(1.0 / rate)
        if t_next >= phase_end:
            # No arrival before the phase flips; restart the memoryless
            # draw from the switch instant at the new rate.
            t = phase_end
            burst = not burst
            phase_end = t + rng.exponential(
                dwell_burst if burst else dwell_calm
            )
            continue
        t = t_next
        if t >= horizon:
            break
        times.append(t)
    return times


def diurnal_arrivals(
    rate: float,
    horizon: float,
    seed: object,
    *,
    period: float = 86400.0,
    amplitude: float = 0.8,
) -> List[float]:
    """Non-homogeneous Poisson arrivals under a sinusoidal rate curve.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t /
    period))`` — mean ``rate``, peak ``rate*(1+amplitude)`` — sampled by
    thinning: candidates are drawn at the peak rate and kept with
    probability ``rate(t)/peak``, the textbook exact method.
    """
    if rate <= 0:
        raise QueryError(f"arrival rate must be positive: {rate}")
    if horizon <= 0:
        raise QueryError(f"horizon must be positive: {horizon}")
    if not 0.0 <= amplitude < 1.0:
        raise QueryError(f"amplitude must be in [0, 1): {amplitude}")
    if period <= 0:
        raise QueryError(f"period must be positive: {period}")
    rng = rng_for("workload", "diurnal", seed)
    peak = rate * (1.0 + amplitude)
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak)
        if t >= horizon:
            return times
        instantaneous = rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        )
        if rng.random() * peak <= instantaneous:
            times.append(t)


def trace_arrivals(times: Sequence[float]) -> List[float]:
    """Validate and normalize a recorded arrival trace.

    Returns the timestamps sorted ascending; negative entries are
    rejected (arrivals predate the run origin).  Round-trips: a list
    that is already sorted comes back equal.
    """
    out = sorted(float(t) for t in times)
    if out and out[0] < 0:
        raise QueryError(f"trace arrivals must be >= 0: {out[0]}")
    return out


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative arrival process, resolvable via :func:`generate_arrivals`.

    ``kind`` selects the generator: ``"poisson"`` (uses ``rate``),
    ``"bursty"`` (``rate`` calm, ``rate_burst``, mean ``dwell_calm`` /
    ``dwell_burst``), ``"diurnal"`` (``rate``, ``period``,
    ``amplitude``), or ``"trace"`` (explicit ``trace`` timestamps;
    ``rate`` is ignored).
    """

    kind: str = "poisson"
    rate: float = 1.0
    rate_burst: float = 4.0
    dwell_calm: float = 10.0
    dwell_burst: float = 2.0
    period: float = 86400.0
    amplitude: float = 0.8
    trace: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "bursty", "diurnal", "trace"):
            raise QueryError(
                f"unknown arrival kind {self.kind!r}; "
                f"known: poisson, bursty, diurnal, trace"
            )


def generate_arrivals(spec: ArrivalSpec, horizon: float,
                      seed: object) -> List[float]:
    """Resolve an :class:`ArrivalSpec` to its deterministic timestamps."""
    if spec.kind == "poisson":
        return poisson_arrivals(spec.rate, horizon, seed)
    if spec.kind == "bursty":
        return bursty_arrivals(
            spec.rate, spec.rate_burst, horizon, seed,
            dwell_calm=spec.dwell_calm, dwell_burst=spec.dwell_burst,
        )
    if spec.kind == "diurnal":
        return diurnal_arrivals(
            spec.rate, horizon, seed,
            period=spec.period, amplitude=spec.amplitude,
        )
    return [t for t in trace_arrivals(spec.trace) if t < horizon]


# ---------------------------------------------------------------------------
# Tenants and query mixes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryMixEntry:
    """One weighted choice in a tenant's query mix."""

    query: str  # query name ("A"/"B"), resolved by the store facade
    dataset: str
    accuracy: float = 0.9
    t0: float = 0.0
    t1: float = 16.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise QueryError(f"mix weight must be positive: {self.weight}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: who arrives, what they ask, what they are owed.

    ``slo_seconds`` turns into a per-query deadline ``arrival + slo``;
    ``weight`` feeds weighted fair sharing (admission *and*
    :class:`~repro.query.scheduler.WeightedFairSharePolicy`); ``quota``
    caps the tenant's in-flight queries under admission control.
    """

    name: str
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    mix: Tuple[QueryMixEntry, ...] = ()
    slo_seconds: Optional[float] = None
    weight: float = 1.0
    quota: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("tenant needs a non-empty name")
        if not self.mix:
            raise QueryError(f"tenant {self.name!r} needs a query mix")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise QueryError(
                f"tenant {self.name!r}: slo must be positive: "
                f"{self.slo_seconds}"
            )
        if self.weight <= 0:
            raise QueryError(
                f"tenant {self.name!r}: weight must be positive: "
                f"{self.weight}"
            )
        if self.quota is not None and self.quota < 1:
            raise QueryError(
                f"tenant {self.name!r}: quota must be >= 1: {self.quota}"
            )


@dataclass(frozen=True)
class Arrival:
    """One materialized arrival: when, whose, and which query."""

    t: float
    tenant: str
    entry: QueryMixEntry
    deadline: Optional[float] = None


def build_workload(tenants: Sequence[TenantSpec], horizon: float,
                   seed: object) -> List[Arrival]:
    """Merge every tenant's arrival stream into one deterministic list.

    Each tenant draws its arrival times and mix choices from its own
    ``(seed, tenant name)``-derived generator — adding a tenant never
    perturbs another's stream.  The merged list is sorted by ``(t,
    tenant, index)``, so equal-instant arrivals across tenants order
    deterministically too.
    """
    if not tenants:
        raise QueryError("workload needs at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise QueryError(f"duplicate tenant names: {sorted(names)}")
    merged: List[Tuple[float, str, int, Arrival]] = []
    for tenant in tenants:
        times = generate_arrivals(tenant.arrivals, horizon,
                                  (seed, tenant.name))
        mix_rng = rng_for("workload", "mix", seed, tenant.name)
        weights = [e.weight for e in tenant.mix]
        total = sum(weights)
        probs = [w / total for w in weights]
        for i, t in enumerate(times):
            choice = int(mix_rng.choice(len(tenant.mix), p=probs))
            entry = tenant.mix[choice]
            deadline = (t + tenant.slo_seconds
                        if tenant.slo_seconds is not None else None)
            merged.append((t, tenant.name, i,
                           Arrival(t=t, tenant=tenant.name, entry=entry,
                                   deadline=deadline)))
    merged.sort(key=lambda item: item[:3])
    return [item[3] for item in merged]


def workload_specs(arrivals: Sequence[Arrival]) -> List[Dict[str, object]]:
    """Lower arrivals to ``execute_many``-style admit specs."""
    specs: List[Dict[str, object]] = []
    for a in arrivals:
        spec: Dict[str, object] = {
            "query": a.entry.query,
            "dataset": a.entry.dataset,
            "accuracy": a.entry.accuracy,
            "t0": a.entry.t0,
            "t1": a.entry.t1,
            "arrival": a.t,
            "tenant": a.tenant,
        }
        if a.deadline is not None:
            spec["deadline"] = a.deadline
        specs.append(spec)
    return specs
