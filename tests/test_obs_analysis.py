"""Critical-path, queue-depth and utilization analysis on trace streams.

Synthetic streams with hand-computable answers first (the analysis must
be exact, not plausible), then the store-level facade
(``VStore.observability()``) that ties a real run to the same code.
"""

from __future__ import annotations

import pytest

from repro.analysis.obs import (
    critical_paths,
    format_critical_path_table,
    format_metrics_table,
    format_queue_depth_table,
    queue_depth_series,
    utilization_rows,
)
from repro.core.store import VStore
from repro.obs.trace import task_event
from repro.operators.library import default_library


def _chain(query, *tasks):
    """Serial start/finish events for (kind, operator, resource, t0, t1)."""
    events = []
    for kind, operator, resource, t0, t1 in tasks:
        events.append(task_event("start", t0, query, kind, operator,
                                 resource, t1 - t0))
        events.append(task_event("finish", t1, query, kind, operator,
                                 resource, t1 - t0))
    return events


#: Two overlapping queries on one disk: q0 holds the disk over [0, 2);
#: q1's retrieval is submitted at 0 but starts at 2 (waited 2 s), then
#: consumes over [2, 3).  q0 consumes over [2, 6).
EVENTS = sorted(
    _chain("q0",
           ("retrieve", "NN", "disk", 0.0, 2.0),
           ("consume", "NN", "operators", 2.0, 6.0))
    + _chain("q1",
             ("retrieve", "NN", "disk", 2.0, 2.5),
             ("consume", "NN", "operators", 2.5, 3.0)),
    key=lambda e: (e["t"], e["event"] == "start"),
)


def test_critical_paths_attribute_the_binding_resource():
    paths = {p.query: p for p in critical_paths(EVENTS, 0.0)}
    q0 = paths["q0"]
    assert q0.bound_resource == "operators"  # 4 s consume dominates
    assert q0.bound_seconds == pytest.approx(4.0)
    assert q0.bound_fraction == pytest.approx(4.0 / 6.0)
    q1 = paths["q1"]
    # q1: 2 s disk wait + 0.5 s disk service vs 0.5 s operators service.
    assert q1.bound_resource == "disk"
    assert q1.bound_seconds == pytest.approx(2.5)
    assert q1.span.latency == pytest.approx(3.0)


def test_queue_depth_series_counts_running_and_waiting():
    series = queue_depth_series(EVENTS, 0.0)
    disk = dict((t, (r, w)) for t, r, w in series["disk"])
    # At t=0 q0 starts on the disk while q1 is already queued behind it.
    assert disk[0.0] == (1, 1)
    # q0 releases and q1 is granted at t=2; nobody waits any more.
    assert disk[2.0] == (1, 0)
    assert disk[2.5] == (0, 0)
    ops = dict((t, (r, w)) for t, r, w in series["operators"])
    assert ops[2.5] == (2, 0)  # both consumes overlap on the pool
    assert ops[6.0] == (0, 0)


def test_utilization_rows_flatten_the_series():
    rows = utilization_rows(EVENTS, 0.0)
    assert {r["resource"] for r in rows} == {"disk", "operators"}
    assert all(set(r) == {"resource", "t", "running", "waiting"}
               for r in rows)
    total_points = sum(len(p) for p in queue_depth_series(EVENTS, 0.0)
                       .values())
    assert len(rows) == total_points


def test_format_tables_render():
    cp = format_critical_path_table(critical_paths(EVENTS, 0.0))
    assert "bound by" in cp
    assert "q1" in cp and "disk" in cp
    qd = format_queue_depth_table(queue_depth_series(EVENTS, 0.0))
    assert "peak wait" in qd
    snap = {"counters": {"executor.runs": 1.0}, "gauges": {},
            "histograms": {"query.latency_seconds": {
                "count": 2, "mean": 4.5, "min": 3.0, "max": 6.0,
                "p50": 3.0, "p95": 6.0, "p99": 6.0}}}
    mt = format_metrics_table(snap)
    assert "executor.runs" in mt
    assert "p95" in mt


# ---------------------------------------------------------------------------
# The store facade
# ---------------------------------------------------------------------------


def test_store_observability_facade(tmp_path):
    lib = default_library(names=("Motion", "License", "OCR"))
    with VStore(workdir=str(tmp_path / "store"), library=lib) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        obs = store.observability()
        with pytest.raises(ValueError, match="no traced run"):
            obs.spans()
        specs = [{"query": "B", "dataset": "jackson", "accuracy": 0.9,
                  "t0": 0.0, "t1": 16.0} for _ in range(2)]
        store.execute_many(specs)
        obs = store.observability()
        spans = obs.spans()
        assert len(spans) == 2
        paths = obs.critical_paths()
        assert len(paths) == 2
        assert obs.queue_depths()
        summary = obs.summary()
        assert "bound by" in summary
        assert "executor.runs" in summary
        written = obs.export(str(tmp_path / "out"))
        assert "chrome_trace" in written
        assert "metrics" in written
