"""Fidelity knobs (Table 1) and the richer-than partial order (Section 2.3).

A *fidelity option* is a combination of four knob values:

* ``quality`` — image quality, the loss due to compression
  (``worst/bad/good/best``, the paper's CRF 50/40/23/0);
* ``crop`` — crop factor, the fraction of the frame's linear dimensions
  kept around the center (50%, 75%, 100%);
* ``resolution`` — named resolution ("60p" ... "720p", ten values);
* ``sampling`` — frame sampling rate as a fraction of the ingest frame
  rate (1/30, 1/6, 1/2, 2/3, 1).

Between two options the paper defines a *richer-than* partial order:
X is richer than Y iff X is at least as rich on every knob and strictly
richer on at least one.  Video can only be degraded along this order (R1).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import FidelityError, KnobError

#: Image-quality levels, poorest first, with the equivalent x264 CRF value.
QUALITIES: Tuple[str, ...] = ("worst", "bad", "good", "best")
QUALITY_CRF: Dict[str, int] = {"worst": 50, "bad": 40, "good": 23, "best": 0}

#: Crop factors: fraction of each linear dimension kept around the center.
CROP_FACTORS: Tuple[float, ...] = (0.50, 0.75, 1.00)

#: Named resolutions and their pixel dimensions (width, height).  The small
#: resolutions are square analysis frames as in the paper's Figure 8; 720p is
#: the 16:9 ingest resolution.  Heights are strictly increasing and so are
#: pixel counts, which keeps the richer-than order consistent with cost.
RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "60p": (60, 60),
    "100p": (100, 100),
    "144p": (144, 144),
    "180p": (180, 180),
    "200p": (200, 200),
    "360p": (360, 360),
    "400p": (400, 400),
    "540p": (540, 540),
    "600p": (600, 600),
    "720p": (1280, 720),
}

#: Resolution names ordered poorest to richest.
RESOLUTION_ORDER: Tuple[str, ...] = tuple(RESOLUTIONS)

#: Frame sampling rates, sparsest first (fractions of the ingest frame rate).
SAMPLING_RATES: Tuple[Fraction, ...] = (
    Fraction(1, 30),
    Fraction(1, 6),
    Fraction(1, 2),
    Fraction(2, 3),
    Fraction(1, 1),
)

#: Frame rate of every ingested stream (720p at 30 fps, Section 6.1).
INGEST_FPS = 30


def _index(seq: Sequence, value, knob: str) -> int:
    try:
        return list(seq).index(value)
    except ValueError:
        raise KnobError(f"illegal value {value!r} for knob {knob!r}") from None


def sampling_from_str(text: str) -> Fraction:
    """Parse a sampling rate written as in the paper, e.g. ``"1/30"`` or ``"1"``."""
    return Fraction(text)


@dataclass(frozen=True, order=False)
class Fidelity:
    """One fidelity option: a value for each of the four fidelity knobs."""

    quality: str
    resolution: str
    sampling: Fraction
    crop: float

    def __post_init__(self) -> None:
        _index(QUALITIES, self.quality, "quality")
        _index(RESOLUTION_ORDER, self.resolution, "resolution")
        _index(SAMPLING_RATES, self.sampling, "sampling")
        _index(CROP_FACTORS, self.crop, "crop")

    # -- knob index helpers (poorest value has index 0) --------------------

    @property
    def quality_idx(self) -> int:
        return QUALITIES.index(self.quality)

    @property
    def resolution_idx(self) -> int:
        return RESOLUTION_ORDER.index(self.resolution)

    @property
    def sampling_idx(self) -> int:
        return SAMPLING_RATES.index(self.sampling)

    @property
    def crop_idx(self) -> int:
        return CROP_FACTORS.index(self.crop)

    # -- derived quantities -------------------------------------------------

    @property
    def dimensions(self) -> Tuple[int, int]:
        """Pixel dimensions (width, height) after resizing and cropping."""
        w, h = RESOLUTIONS[self.resolution]
        return (int(round(w * self.crop)), int(round(h * self.crop)))

    @property
    def pixels(self) -> int:
        """Pixels per frame after resolution and crop are applied."""
        w, h = self.dimensions
        return w * h

    @property
    def fps(self) -> float:
        """Frames per second after sampling the 30 fps ingest stream."""
        return float(INGEST_FPS * self.sampling)

    @property
    def crf(self) -> int:
        """The x264 CRF equivalent of this option's image quality."""
        return QUALITY_CRF[self.quality]

    # -- partial order -------------------------------------------------------

    def _knob_indices(self) -> Tuple[int, int, int, int]:
        return (self.quality_idx, self.resolution_idx, self.sampling_idx, self.crop_idx)

    def richer_equal(self, other: "Fidelity") -> bool:
        """True iff self is richer than or equal to ``other`` on every knob."""
        return all(a >= b for a, b in zip(self._knob_indices(), other._knob_indices()))

    def richer_than(self, other: "Fidelity") -> bool:
        """Strict richer-than: richer-or-equal everywhere, strictly on one knob."""
        return self.richer_equal(other) and self != other

    def comparable(self, other: "Fidelity") -> bool:
        """True iff the two options are ordered by richer-than (either way)."""
        return self.richer_equal(other) or other.richer_equal(self)

    def degrade_to(self, other: "Fidelity") -> "Fidelity":
        """Check that ``other`` is reachable by degradation and return it.

        Degradation (resize, crop, drop frames, re-quantize) can only move
        *down* the richer-than order; anything else raises
        :class:`~repro.errors.FidelityError` (requirement R1).
        """
        if not self.richer_equal(other):
            raise FidelityError(f"cannot degrade {self} to non-poorer {other}")
        return other

    # -- presentation --------------------------------------------------------

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``best-720p-1-100%``."""
        return (
            f"{self.quality}-{self.resolution}-{self.sampling}"
            f"-{int(self.crop * 100)}%"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label

    @classmethod
    def parse(cls, label: str) -> "Fidelity":
        """Parse a label produced by :attr:`label`."""
        parts = label.split("-")
        if len(parts) != 4:
            raise KnobError(f"malformed fidelity label: {label!r}")
        quality, resolution, sampling, crop = parts
        if not crop.endswith("%"):
            raise KnobError(f"malformed crop in fidelity label: {label!r}")
        return cls(
            quality=quality,
            resolution=resolution,
            sampling=Fraction(sampling),
            crop=float(crop[:-1]) / 100.0,
        )


def fidelity_space() -> Iterator[Fidelity]:
    """Iterate the full 4-D fidelity space F (600 options)."""
    for quality, resolution, sampling, crop in product(
        QUALITIES, RESOLUTION_ORDER, SAMPLING_RATES, CROP_FACTORS
    ):
        yield Fidelity(quality, resolution, sampling, crop)


def richest_fidelity() -> Fidelity:
    """The knob-wise maximum of the whole space (the ingest format)."""
    return Fidelity(
        quality=QUALITIES[-1],
        resolution=RESOLUTION_ORDER[-1],
        sampling=SAMPLING_RATES[-1],
        crop=CROP_FACTORS[-1],
    )


def knobwise_max(options: Sequence[Fidelity]) -> Fidelity:
    """The knob-wise maximum fidelity of ``options`` (used when coalescing).

    The result is the cheapest fidelity that is richer than or equal to every
    input, i.e. the join in the richer-than lattice.
    """
    if not options:
        raise FidelityError("knobwise_max of an empty set")
    return Fidelity(
        quality=QUALITIES[max(f.quality_idx for f in options)],
        resolution=RESOLUTION_ORDER[max(f.resolution_idx for f in options)],
        sampling=SAMPLING_RATES[max(f.sampling_idx for f in options)],
        crop=CROP_FACTORS[max(f.crop_idx for f in options)],
    )


def knob_counts() -> Dict[str, int]:
    """Number of possible values per fidelity knob (for overhead analysis)."""
    return {
        "quality": len(QUALITIES),
        "resolution": len(RESOLUTION_ORDER),
        "sampling": len(SAMPLING_RATES),
        "crop": len(CROP_FACTORS),
    }


def fidelity_space_size() -> int:
    """|F| — the number of fidelity options (600 in this reproduction)."""
    sizes = knob_counts().values()
    total = 1
    for n in sizes:
        total *= n
    return total


def downgrades_of(fid: Fidelity) -> List[Fidelity]:
    """All options poorer than or equal to ``fid`` (its down-set in F)."""
    return [f for f in fidelity_space() if fid.richer_equal(f)]
