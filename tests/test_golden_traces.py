"""Golden-trace regression tests for the concurrent executor.

The executor is a discrete-event simulation whose value lies in *exact*
event ordering: which task starts when, on which resource, and when each
query finishes.  A refactor that silently reorders execution — a changed
tie-break, a float regrouping, a different pool scan order — would slip
through coarse assertions, so these tests pin the complete task
start/finish trace and the per-query makespans for each scheduling policy
on a small fixed fleet, byte-for-byte, against committed JSON files.

Regenerate the golden files after an *intentional* scheduler change with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden

and commit the diff — the point is that the diff is reviewed, not silent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import (
    DeadlinePolicy,
    FIFOPolicy,
    FairSharePolicy,
    OperatorContextPool,
)
from repro.storage.disk import DiskBandwidthPool

GOLDEN_DIR = Path(__file__).parent / "golden"

POLICIES = {
    "fifo": FIFOPolicy,
    "fair": FairSharePolicy,
    "edf": DeadlinePolicy,
}


#: Shard widths each policy's trace is pinned at: the single-disk layout
#: (the PR 2 contract) and a genuinely sharded 4-spindle array whose
#: per-shard channel pools give the trace ``disk:i`` resources.
SHARD_WIDTHS = (1, 4)


def _suffix(shards: int) -> str:
    return "" if shards == 1 else f"_shards{shards}"


@pytest.fixture(scope="module", params=SHARD_WIDTHS,
                ids=lambda s: f"shards{s}")
def trace_store(request, tmp_path_factory):
    """The fixed fleet every golden trace runs against, per shard width."""
    shards = request.param
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp(f"golden{shards}")),
                library=lib, shards=shards) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        store.ingest("jackson", n_segments=4, stream="cam01")
        yield store


def _round(value: float) -> float:
    """Canonical float for the JSON trace.

    Nine decimals keep every scheduling decision visible (task durations
    are >= the 1e-4 s request overhead) while staying clear of the last
    couple of float64 digits.
    """
    return round(value, 9)


def _run_trace(store, policy_name: str, core: str = "heap") -> dict:
    """One canonical contended run; returns the JSON-ready payload."""
    ex = store.executor(
        policy=POLICIES[policy_name](),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(1),
        operator_pool=OperatorContextPool(2),
        core=core,
    )
    ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0)
    ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 16.0, deadline=3.0)
    ex.admit(QUERY_A, "jackson", 0.8, 0.0, 16.0, stream="cam01")
    ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0, contexts=2)
    outcomes = ex.run()
    stats = ex.stats()
    return {
        "policy": stats.policy,
        "makespan": _round(stats.makespan),
        "events": [
            {
                "event": e["event"],
                "t": _round(e["t"]),
                "query": e["query"],
                "kind": e["kind"],
                "operator": e["operator"],
                "resource": e["resource"],
                "duration": _round(e["duration"]),
            }
            for e in ex.trace_events
        ],
        "queries": [
            {
                "label": o.session.label,
                "latency": _round(o.latency),
                "service": _round(o.service_seconds),
                "waited": _round(o.waited_seconds),
                "finished_at": _round(o.session.finished_at),
            }
            for o in outcomes
        ],
    }


def _canonical_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=1,
                       ensure_ascii=True) + "\n").encode("utf-8")


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_trace_matches_golden(trace_store, policy_name, request):
    data = _canonical_bytes(_run_trace(trace_store, policy_name))
    path = (GOLDEN_DIR
            / f"trace_{policy_name}{_suffix(trace_store.n_shards)}.json")
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_bytes(data)
        return
    assert path.exists(), (
        f"missing golden trace {path}; generate it with "
        f"pytest tests/test_golden_traces.py --update-golden"
    )
    assert path.read_bytes() == data, (
        f"the {policy_name} execution trace drifted from {path}; if the "
        f"scheduler change is intentional, regenerate with --update-golden "
        f"and review the diff"
    )


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_trace_is_well_formed(trace_store, policy_name):
    """Structural invariants of any trace, independent of the golden bytes."""
    payload = _run_trace(trace_store, policy_name)
    events = payload["events"]
    assert events, "a contended run must record events"
    starts = [e for e in events if e["event"] == "start"]
    finishes = [e for e in events if e["event"] == "finish"]
    assert len(starts) == len(finishes)
    # Event times never run backwards.
    times = [e["t"] for e in events]
    assert times == sorted(times)
    # Every query finishes, and the last finish is the makespan.
    assert len(payload["queries"]) == 4
    assert payload["makespan"] == pytest.approx(
        max(q["finished_at"] for q in payload["queries"])
    )


def test_traces_differ_across_policies(trace_store):
    """The three policies schedule this contended fleet differently —
    otherwise three golden files would pin one behavior thrice."""
    traces = {name: _canonical_bytes(_run_trace(trace_store, name))
              for name in POLICIES}
    assert traces["fifo"] != traces["fair"]
    assert traces["fifo"] != traces["edf"]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_heap_core_replays_reference_trace(trace_store, policy_name):
    """The event-heap core and the legacy rescan loop must emit the very
    same byte stream — the golden files pin one of them, this pins them
    to each other on both shard widths."""
    heap = _canonical_bytes(_run_trace(trace_store, policy_name, "heap"))
    ref = _canonical_bytes(_run_trace(trace_store, policy_name,
                                      "reference"))
    assert heap == ref
