"""The command-line interface."""

import pytest

from repro.cli import main


def test_datasets_lists_all_six(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("jackson", "miami", "tucson", "dashcam", "park", "airport"):
        assert name in out


def test_focus_command(capsys):
    assert main(["focus", "--selectivity", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "r = 3" in out


def test_configure_command(capsys):
    assert main(["configure", "--operators", "Motion,License,OCR"]) == 0
    out = capsys.readouterr().out
    assert "SFg" in out
    assert "ingest cost" in out


def test_configure_with_storage_budget(capsys):
    assert main([
        "configure", "--operators", "Motion,License",
        "--storage-budget-tb", "1.0",
    ]) == 0
    out = capsys.readouterr().out
    assert "decay factor" in out


def test_query_command(capsys):
    assert main([
        "query", "B", "--operators", "Motion,License,OCR",
        "--dataset", "dashcam", "--accuracy", "0.8",
    ]) == 0
    out = capsys.readouterr().out
    assert "x realtime" in out
    assert "Motion" in out


def test_ingest_and_execute_roundtrip(tmp_path, capsys):
    workdir = str(tmp_path / "store")
    assert main([
        "ingest", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--segments", "4",
    ]) == 0
    assert main([
        "execute", "B", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam",
        "--accuracy", "0.8", "--t0", "0", "--t1", "32",
    ]) == 0
    out = capsys.readouterr().out
    assert "ingested 4 segments" in out
    assert "executed query" in out


def test_trace_summary_and_metrics_commands(tmp_path, capsys):
    workdir = str(tmp_path / "store")
    assert main([
        "ingest", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--segments", "4",
    ]) == 0
    assert main([
        "trace", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--query", "B",
        "--accuracy", "0.8", "--t1", "32", "--queries", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "bound by" in out  # critical-path table
    assert "peak wait" in out  # queue-depth table
    assert "executor.runs" in out  # metrics table
    assert main([
        "metrics", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--query", "B",
        "--accuracy", "0.8", "--t1", "32", "--queries", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "query.latency_seconds" in out
    assert "p99" in out


def test_trace_export_command(tmp_path, capsys):
    workdir = str(tmp_path / "store")
    outdir = tmp_path / "bundle"
    assert main([
        "ingest", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--segments", "4",
    ]) == 0
    assert main([
        "trace", "export", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--query", "B",
        "--accuracy", "0.8", "--t1", "32", "--queries", "2",
        "--outdir", str(outdir),
    ]) == 0
    out = capsys.readouterr().out
    assert "chrome_trace" in out
    assert (outdir / "chrome_trace.json").exists()
    # The columnar tables landed in whichever format the host supports.
    assert any(p.name.startswith("trace_events.")
               for p in outdir.iterdir())


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
