"""Failure injection: crashes mid-write, bit rot, and recovery."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.kvstore import KVStore


def _fill(path, items):
    with KVStore(path) as kv:
        for k, v in items:
            kv.put(k, v)


class TestTornWrites:
    def test_torn_tail_value_is_dropped(self, tmp_path):
        """A crash mid-value leaves a partial trailing record; reopening
        recovers by truncating it, keeping every earlier record."""
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha"), ("b", b"beta" * 100)])
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 37)  # tear into the last value
        with KVStore(path) as kv:
            assert kv.get("a") == b"alpha"
            assert "b" not in kv
            # The store is writable again after recovery.
            kv.put("c", b"gamma")
            assert kv.get("c") == b"gamma"

    def test_torn_tail_header_is_dropped(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha")])
        with open(path, "ab") as f:
            f.write(b"\x52")  # one stray byte: less than a header
        with KVStore(path) as kv:
            assert kv.get("a") == b"alpha"
            assert len(kv) == 1

    def test_torn_tail_key_is_dropped(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha")])
        import struct
        with open(path, "ab") as f:
            # A valid header announcing a 100-byte key, but no key bytes.
            f.write(struct.pack("<IIQI", 0x56535452, 100, 5, 0))
        with KVStore(path) as kv:
            assert kv.get("a") == b"alpha"


class TestRecoveryCounters:
    """Reopen repair is observable: truncations and byte fates counted."""

    def test_clean_open_counts_no_truncations(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha"), ("b", b"beta")])
        with KVStore(path) as kv:
            assert kv.torn_truncations == 0
            assert kv.dropped_bytes == 0
            assert kv.recovered_bytes == len(b"alpha") + len(b"beta")

    def test_torn_tail_counters_account_for_the_damage(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha"), ("b", b"beta" * 100)])
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 37)  # tear into the last value
        with KVStore(path) as kv:
            assert kv.torn_truncations == 1
            # The dropped span is the torn record's surviving prefix:
            # 20-byte header + 1-byte key + 400-byte value, short 37.
            assert kv.dropped_bytes == 20 + 1 + 400 - 37
            assert kv.recovered_bytes == len(b"alpha")

    def test_stray_byte_is_counted_as_dropped(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha")])
        with open(path, "ab") as f:
            f.write(b"\x52")
        with KVStore(path) as kv:
            assert kv.torn_truncations == 1
            assert kv.dropped_bytes == 1
            assert kv.recovered_bytes == len(b"alpha")

    def test_metrics_registry_exposes_recovery_counters(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"alpha"), ("b", b"beta" * 100)])
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 37)
        with KVStore(path) as kv:
            registry = MetricsRegistry()
            registry.observe_kvstore(kv)
            gauges = registry.snapshot()["gauges"]
            assert gauges["kv.torn_truncations"] == 1
            assert gauges["kv.dropped_bytes"] == kv.dropped_bytes
            assert gauges["kv.recovered_bytes"] == len(b"alpha")


class TestBitRot:
    def test_verify_detects_flipped_bit(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("seg", bytes(range(256)) * 8)])
        with KVStore(path) as kv:
            val_off, val_len = kv._index[b"seg"]
        with open(path, "r+b") as f:
            f.seek(val_off + val_len // 2)
            byte = f.read(1)
            f.seek(val_off + val_len // 2)
            f.write(bytes([byte[0] ^ 0x40]))
        with KVStore(path) as kv:
            # Unverified reads return the rotten data...
            assert kv.get("seg") != bytes(range(256)) * 8
            # ...verification catches it.
            with pytest.raises(StorageError, match="checksum"):
                kv.get("seg", verify=True)

    def test_verify_passes_on_clean_data(self, tmp_path):
        path = str(tmp_path / "kv.log")
        _fill(path, [("seg", b"payload")])
        with KVStore(path) as kv:
            assert kv.get("seg", verify=True) == b"payload"

    def test_mid_file_corruption_still_raises(self, tmp_path):
        """Only *trailing* damage is recoverable; corruption in the body is
        an integrity failure the store must refuse to silently skip."""
        path = str(tmp_path / "kv.log")
        _fill(path, [("a", b"one"), ("b", b"two")])
        with open(path, "r+b") as f:
            f.seek(0)
            f.write(b"XXXX")  # destroy the first record's magic
        with pytest.raises(StorageError, match="corrupt"):
            KVStore(path)


class TestErosionResilience:
    def test_erosion_of_missing_segments_is_harmless(self, tmp_path):
        """Applying an erosion plan twice, or after manual deletions, never
        errors — deletions are idempotent."""
        from repro.clock import SimClock
        from repro.codec.encoder import Encoder
        from repro.storage.disk import DiskModel
        from repro.storage.lifespan import apply_erosion_step
        from repro.storage.segment_store import SegmentStore
        from repro.video.coding import Coding
        from repro.video.fidelity import Fidelity
        from repro.video.format import StorageFormat
        from repro.video.segment import Segment

        fmt = StorageFormat(Fidelity.parse("bad-100p-1/30-50%"),
                            Coding("fastest", 5))
        kv = KVStore(str(tmp_path / "seg.log"))
        store = SegmentStore(kv, DiskModel(clock=SimClock()))
        enc = Encoder(clock=SimClock())
        for i in range(40):
            store.put(enc.encode(Segment("cam", i), fmt, 0.2))
        store.delete("cam", fmt, 3)  # manual hole
        plan = {(1, fmt): 0.5}
        first = apply_erosion_step(store, "cam", plan, 40 * 8.0, 10)
        second = apply_erosion_step(store, "cam", plan, 40 * 8.0, 10)
        assert first > 0
        assert second == 0
        kv.close()
