"""Tiered-cache effectiveness: cache size x query count over the fleet.

PR 2's contention sweep showed N concurrent queries slowing each other
~3x on constrained shared pools — while every query re-read, re-decoded
and re-ran operators over the same hot segments.  This benchmark reruns
that workload (same fleet, same pools) against the tiered retrieval
cache, sweeping the decoded-frame budget and the query count, and
measures for each cell:

* the **cold** run (empty cache, single-flight dedup only) and
* the **warm** repeat (decoded frames + operator results resident),

with parity asserted cell by cell: whatever the cache configuration,
every query's outputs stay bit-identical to the uncached baseline.  The
headline acceptance number is the 16-query cell: warm mean slowdown must
drop measurably below cold.
"""

import pytest

from repro.analysis import concurrency_report
from repro.analysis.cache import (
    WarmColdComparison,
    format_cache_table,
    format_warm_cold_table,
)
from repro.cache import CacheConfig
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import FIFOPolicy, OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.units import MB
from repro.video.datasets import DATASETS

N_QUERIES = (4, 16)
CACHE_MB = (16.0, 256.0)
SEGMENTS_PER_STREAM = 4
QUERY_SPAN = 32.0
N_STREAMS = 8

#: Eight fleet cameras, round-robin over the six dataset content models
#: (identical to the PR 2 contention sweep).
FLEET = [(f"cam{i:02d}", list(DATASETS)[i % len(DATASETS)])
         for i in range(N_STREAMS)]


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    with VStore(workdir=str(tmp_path_factory.mktemp("fleet")),
                library=library) as store:
        store.configure()
        for stream, dataset in FLEET:
            store.ingest(dataset, n_segments=SEGMENTS_PER_STREAM,
                         stream=stream)
        yield store


def _config(cache_mb: float) -> CacheConfig:
    return CacheConfig(frame_capacity_bytes=cache_mb * MB,
                       result_capacity_bytes=cache_mb * MB / 4.0)


def _run(store, n_queries):
    """One cell: admit, run, report (the PR 2 sweep's pool constraints)."""
    executor = store.executor(
        policy=FIFOPolicy(),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(2),
        operator_pool=OperatorContextPool(4),
    )
    for i in range(n_queries):
        stream, dataset = FLEET[i % N_STREAMS]
        query = QUERY_A if dataset in ("jackson", "miami", "tucson") else QUERY_B
        executor.admit(query, dataset, 0.9, 0.0, QUERY_SPAN, stream=stream)
    outcomes = executor.run()
    return outcomes, concurrency_report(outcomes, executor.stats())


def _outputs(outcomes):
    return [(o.result.positives_per_stage, o.result.segments_per_stage)
            for o in outcomes]


def test_cache_size_query_count_sweep(benchmark, record, fleet_store):
    baseline = {}
    for n in N_QUERIES:
        fleet_store.set_cache(None)
        baseline[n] = _run(fleet_store, n)

    cells = {}
    for cache_mb in CACHE_MB:
        for n in N_QUERIES:
            fleet_store.set_cache(_config(cache_mb))
            cold = _run(fleet_store, n)
            warm = _run(fleet_store, n)
            cells[(cache_mb, n)] = (cold, warm, fleet_store.cache_stats())
            # Parity: cold and warm, under every cache size, every query's
            # outputs are bit-identical to the uncached baseline.
            assert _outputs(cold[0]) == _outputs(baseline[n][0])
            assert _outputs(warm[0]) == _outputs(baseline[n][0])
            # A warm cache never loses wall time, whatever its size.
            assert warm[1].makespan <= cold[1].makespan + 1e-9

    # time the heaviest warm cell for the perf trajectory
    benchmark.pedantic(lambda: _run(fleet_store, max(N_QUERIES)),
                       rounds=1, iterations=1)

    # NOTE: slowdown is latency over the query's *planned* service time;
    # warm result-cache hits shrink that denominator, so under a small
    # frame budget the warm ratio can exceed the cold one even while the
    # makespan improves — read the ratio and makespan columns together.
    lines = [f"{'cache':>8} {'queries':>8} {'base slowdn':>12} "
             f"{'cold slowdn':>12} {'warm slowdn':>12} {'cold mksp':>10} "
             f"{'warm mksp':>10} {'frames hr':>10} {'results hr':>11}"]
    for (cache_mb, n), (cold, warm, stats) in sorted(cells.items()):
        lines.append(
            f"{cache_mb:>6.0f}MB {n:>8} "
            f"{baseline[n][1].mean_slowdown:>11.2f}x "
            f"{cold[1].mean_slowdown:>11.2f}x "
            f"{warm[1].mean_slowdown:>11.2f}x "
            f"{cold[1].makespan:>9.3f}s "
            f"{warm[1].makespan:>9.3f}s "
            f"{stats.frames.hit_rate:>9.1%} {stats.results.hit_rate:>10.1%}"
        )
    record("Tiered retrieval cache — size x query-count sweep",
           "\n".join(lines))

    headline_cold, headline_warm, headline_stats = cells[(max(CACHE_MB),
                                                          max(N_QUERIES))]
    comparison = WarmColdComparison(cold=headline_cold[1],
                                    warm=headline_warm[1])
    record("Tiered retrieval cache — warm vs cold (16 queries)",
           format_warm_cold_table(comparison))
    record("Tiered retrieval cache — plane stats (256 MB, 16 queries)",
           format_cache_table(headline_stats))

    # The acceptance criterion: a warm cache drops the 16-query mean
    # slowdown measurably below the cold run (and below the uncached
    # baseline of the PR 2 sweep).
    assert (headline_warm[1].mean_slowdown
            < headline_cold[1].mean_slowdown - 0.05)
    assert (headline_warm[1].mean_slowdown
            < baseline[16][1].mean_slowdown - 0.05)
    # Warm sharing also wins wall time, not just fairness.
    assert headline_warm[1].makespan < baseline[16][1].makespan
    # The cache actually worked: committed results zero the warm stages
    # (their retrievals are skipped outright), and the cold run's
    # identical in-flight work was single-flighted.
    assert headline_stats.results.hits > 0
    assert headline_stats.single_flight_hits > 0
    assert headline_stats.seconds_saved > 0


def test_single_flight_tames_cold_contention(record, fleet_store):
    """Even with an empty cache, in-flight dedup of identical concurrent
    work keeps the worst contention cell below the uncached baseline."""
    n = max(N_QUERIES)
    fleet_store.set_cache(None)
    _, base_report = _run(fleet_store, n)
    fleet_store.set_cache(_config(max(CACHE_MB)))
    _, cold_report = _run(fleet_store, n)
    record(
        "Tiered retrieval cache — cold single-flight effect",
        (f"{n} queries uncached: mean slowdown "
         f"{base_report.mean_slowdown:.2f}x, makespan "
         f"{base_report.makespan:.3f}s\n"
         f"{n} queries cold cache: mean slowdown "
         f"{cold_report.mean_slowdown:.2f}x, makespan "
         f"{cold_report.makespan:.3f}s"),
    )
    assert cold_report.makespan <= base_report.makespan
    stats = fleet_store.cache_stats()
    assert stats.single_flight_hits > 0
