"""Deterministic random-stream helpers.

Every stochastic element of the simulation (scene content, detector noise)
draws from a generator seeded by a *stable hash* of its identifying context,
so results are reproducible across processes and runs regardless of
iteration order.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from any printable context parts.

    Unlike ``hash()``, this is stable across interpreter runs (no hash
    randomization) which keeps dataset content and profiles deterministic.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(*parts: object) -> np.random.Generator:
    """A numpy generator seeded from the given context parts."""
    return np.random.default_rng(stable_seed(*parts))
