"""Cross-query operator-result memoization.

Operator outputs in this reproduction are deterministic per
``(stream, segment, dataset, operator, fidelity, sampling)`` — they are
seeded by exactly that tuple — so one query's stage output over a segment
is every other query's output too.  The result cache exploits that twice:

* an **output memo** keeps the actual output arrays (byte-bounded, LRU),
  so planning a repeat query never re-runs the operator's real compute;
* a **committed set** (a :class:`~repro.cache.frames.ByteBudgetCache` over
  the outputs' byte sizes) models which results are resident in simulated
  RAM — only committed results zero the stage's simulated consume cost,
  and capacity pressure evicts them like any cache.

The memo without a committed entry is the honest middle state: the repeat
query skips redundant *real* compute (a planning convenience) but is still
*charged* full simulated consume time, because the simulated store no
longer holds the result.

The dataset is part of the key on purpose: a stream alias is normally
bound to one dataset, but nothing forces a caller to keep that pairing at
query time, and two datasets' outputs over the same stream must never
alias in the memo.

Invalidation drops both layers for a segment: erosion (``age``) and
re-ingest reach this through the segment store's write/delete hooks, so no
stale output survives a content change.

Accounting follows the simulated timeline: :meth:`is_committed` (used at
plan time) is side-effect-free; hits are counted by
:meth:`record_charged_hit` and misses by :meth:`commit` when the producing
consume actually runs on the clock.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.cache.frames import ByteBudgetCache, CacheKey, EvictionPolicy


class ResultCache:
    """Memoizes per-segment operator outputs across queries."""

    def __init__(self, capacity_bytes: float, policy: EvictionPolicy,
                 memo_capacity_bytes: Optional[float] = None):
        self.committed = ByteBudgetCache(capacity_bytes, policy)
        self.memo_capacity_bytes = (
            memo_capacity_bytes if memo_capacity_bytes is not None
            else 4.0 * capacity_bytes
        )
        self._outputs: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._memo_bytes = 0.0
        self.memo_hits = 0
        self.memo_misses = 0

    @staticmethod
    def key(stream: str, index: int, dataset: str, operator: str,
            fidelity_label: str, sampling: str) -> CacheKey:
        return (stream, index, dataset, operator, fidelity_label, sampling)

    # -- output memo (real compute) ----------------------------------------

    def get_output(self, key: CacheKey) -> Optional[np.ndarray]:
        output = self._outputs.get(key)
        if output is None:
            self.memo_misses += 1
            return None
        self._outputs.move_to_end(key)
        self.memo_hits += 1
        return output

    def record_output(self, key: CacheKey, output: np.ndarray) -> None:
        if key in self._outputs:
            self._memo_bytes -= float(self._outputs[key].nbytes)
        self._outputs[key] = output
        self._outputs.move_to_end(key)
        self._memo_bytes += float(output.nbytes)
        # The memo holds real arrays in real process RAM: bound it (LRU)
        # so a long-lived store cannot grow without limit.
        while (self._memo_bytes > self.memo_capacity_bytes
               and len(self._outputs) > 1):
            _, dropped = self._outputs.popitem(last=False)
            self._memo_bytes -= float(dropped.nbytes)

    # -- committed set (simulated RAM) -------------------------------------

    def is_committed(self, key: CacheKey) -> bool:
        """True when ``key`` is resident in simulated RAM (no counters)."""
        return self.committed.peek(key) is not None

    def record_charged_hit(self, key: CacheKey, saved_seconds: float) -> None:
        """Count a committed hit when its consume runs on the clock.

        ``saved_seconds`` is the simulated consume time the hit avoided.
        """
        entry = self.committed.peek(key)
        nbytes = entry.nbytes if entry is not None else 0.0
        self.committed.record_hit(key, nbytes, saved_seconds)

    def commit(self, key: CacheKey, saved_seconds: float,
               nbytes: Optional[float] = None) -> bool:
        """A consume computed this result: count the miss, make it resident.

        ``nbytes`` is the output's size as measured by the producer; when
        omitted it is read from the memo.  A result whose size is unknown
        (memo already evicted it) is *not* committed — a zero-byte entry
        would exert no capacity pressure and live forever.
        """
        self.committed.misses += 1
        if nbytes is None:
            output = self._outputs.get(key)
            nbytes = float(output.nbytes) if output is not None else 0.0
        if nbytes <= 0:
            return False
        return self.committed.put(key, nbytes, saved_seconds)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, stream: str, index: Optional[int] = None) -> int:
        doomed = [
            key for key in self._outputs
            if key[0] == stream and (index is None or key[1] == index)
        ]
        for key in doomed:
            self._memo_bytes -= float(self._outputs.pop(key).nbytes)
        return self.committed.invalidate(stream, index)
