"""End-to-end backward derivation (Figure 7, Table 3)."""

import pytest

from repro.clock import SimClock
from repro.core.config import DEFAULT_PROFILE_DATASETS, derive_configuration
from repro.errors import ConfigurationError
from repro.ingest.budget import IngestBudget, cores_required
from repro.operators.library import Consumer, default_library


def test_default_profile_datasets_match_paper():
    for op in ("Diff", "S-NN", "NN"):
        assert DEFAULT_PROFILE_DATASETS[op] == "jackson"
    for op in ("Motion", "License", "OCR"):
        assert DEFAULT_PROFILE_DATASETS[op] == "dashcam"


def test_configuration_covers_all_consumers(configuration, query_library):
    assert len(configuration.consumers) == 24  # 6 operators x 4 accuracies
    for consumer in configuration.consumers:
        decision = configuration.decision_for(consumer)
        assert decision.accuracy >= consumer.accuracy
        sf = configuration.storage_plan_for(consumer)
        assert sf.fidelity.richer_equal(decision.fidelity)  # R1


def test_consumption_formats_deduplicate(configuration):
    # Several consumers share CFs (the paper sees 21 unique out of 24).
    assert configuration.unique_cf_count <= len(configuration.consumers)
    assert configuration.unique_cf_count >= 10


def test_storage_formats_consolidated(configuration):
    # Tens of CFs collapse into a handful of SFs (Table 3b has 4).
    assert 2 <= len(configuration.plan.formats) <= 8
    assert configuration.plan.golden.golden


def test_knob_count_scale(configuration):
    # The paper's configuration sets ~109 knobs; ours is the same order.
    assert 50 <= configuration.knob_count <= 150


def test_erosion_plan_attached(configuration):
    assert configuration.erosion is not None
    assert configuration.erosion.k == 0.0  # no storage budget given


def test_stats_accounting(configuration):
    stats = configuration.stats
    assert stats.operator_runs > 50
    assert stats.coding_runs > 0
    assert stats.coding_memo_hits > stats.coding_runs  # heavy memoization
    assert stats.total_seconds > 0


def test_unknown_operator_dataset_raises():
    lib = default_library(names=("Diff",))
    with pytest.raises(ConfigurationError):
        derive_configuration(lib, profile_datasets={})


def test_empty_consumers_raises(query_library):
    with pytest.raises(ConfigurationError):
        derive_configuration(query_library, consumers=[])


def test_configuration_respects_ingest_budget(query_library):
    unbudgeted = derive_configuration(query_library)
    cap = max(0.5, unbudgeted.plan.ingest_cores * 0.6)
    budgeted = derive_configuration(query_library,
                                    ingest_budget=IngestBudget(cap))
    assert cores_required(budgeted.storage_formats) <= cap + 1e-9
    # The trade: storage grows, bounded (Table 4 reports +17%).
    assert (budgeted.plan.storage_bytes_per_second
            <= unbudgeted.plan.storage_bytes_per_second * 2.0)


def test_configuration_respects_storage_budget(query_library):
    free = derive_configuration(query_library)
    assert free.erosion is not None
    floor = free.erosion  # k == 0
    budget = floor.total_bytes * 0.9
    tight = derive_configuration(query_library,
                                 storage_budget_bytes=budget)
    assert tight.erosion.k > 0
    assert tight.erosion.total_bytes <= budget


def test_shared_clock_collects_profiling(query_library):
    clock = SimClock()
    derive_configuration(query_library, clock=clock)
    assert clock.spent("profiling") > 0


def test_subset_of_consumers(query_library):
    consumers = [Consumer("NN", 0.9), Consumer("Diff", 0.8)]
    config = derive_configuration(query_library, consumers=consumers)
    assert len(config.decisions) == 2
