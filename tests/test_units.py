"""Unit helpers."""

import pytest

from repro.units import (
    DAY,
    GB,
    KB,
    MB,
    SEGMENT_SECONDS,
    TB,
    bytes_per_day,
    fmt_bytes,
    fmt_speed,
    speed_x_realtime,
)


def test_binary_units_scale():
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert TB == 1024 * GB


def test_day_seconds():
    assert DAY == 86400.0


def test_segment_length_matches_paper():
    assert SEGMENT_SECONDS == 8.0


def test_bytes_per_day():
    assert bytes_per_day(1.0) == 86400.0


def test_speed_x_realtime_basic():
    # 1 second of video processed in 1 ms is 1000x realtime (Section 2.2).
    assert speed_x_realtime(1.0, 0.001) == pytest.approx(1000.0)


def test_speed_x_realtime_zero_compute_is_infinite():
    assert speed_x_realtime(1.0, 0.0) == float("inf")


def test_fmt_bytes_picks_unit():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2.00 KB"
    assert fmt_bytes(3 * GB) == "3.00 GB"


def test_fmt_speed_forms():
    assert fmt_speed(float("inf")) == "inf"
    assert fmt_speed(12000) == "12.0k x"
    assert fmt_speed(150) == "150x"
    assert fmt_speed(2.5) == "2.5x"
