"""Event-heap core of the concurrent executor: O(log n) scheduling.

The original :meth:`ConcurrentExecutor.run
<repro.query.scheduler.ConcurrentExecutor.run>` loop rescanned the whole
waiting list on every grant (``min`` over a filtered list comprehension)
and picked completions with ``min``/``remove`` over a Python list, so one
simulated run cost O(T * W) in total task count T and waiting-set size W —
quadratic once hundreds of queries queue on a few bounded pools, and the
simulator's wall-clock became scheduler-bound rather than hardware-bound.

This module holds the three data structures that replace those scans,
each O(log n) per event:

* :class:`CompletionHeap` — a ``heapq`` of running tasks keyed by
  ``(end, seq)``, replacing the ``min(running, ...)`` scan;
* :class:`ReadyHeapIndex` — one ready heap per registered resource, keyed
  by ``(policy priority, seq)``, with *lazy invalidation*: fair-share
  priorities grow as a session accumulates service, so entries carry the
  session's priority-version stamp and a stale head is re-keyed and
  re-pushed instead of rescanning the heap.  Entries that do not fit the
  pool's current free capacity are *parked* per resource and re-admitted
  only when that resource releases units — the backfilling semantics of
  the original scan without its repeated passes;
* :class:`DependencyTracker` — per-task dependency counters (decrement on
  completion, hand back for enqueueing at zero), replacing the
  ``all(d in completed)`` scan over every waiting task.  Single-flight
  cache followers wake up through exactly this path.

The heap core is bit-identical to the legacy loop by construction: the
globally minimal fitting entry across the per-resource heaps is the same
task the full rescan would have granted (heap heads are per-resource
minima; parked entries cannot fit again until a release because pool usage
only grows within one grant round), and ties carry the same ``seq``
tie-break.  The one soundness requirement is that a policy's priority for
a waiting task never *decreases* while it waits — true for FIFO (constant),
EDF (constant) and fair share (attained service only grows; and a session's
own service cannot change while its single in-flight task waits) — so a
stale entry can only have risen in priority key and is corrected when it
surfaces at a heap head.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "CompletionHeap",
    "DependencyTracker",
    "ReadyHeapIndex",
    "TimelineCursor",
    "blocked_triples",
]


class TimelineCursor:
    """A sorted stream of timestamped exogenous events, consumed in
    simulated-time order.

    Both executor cores interleave *completions* (endogenous: produced
    by running tasks) with exogenous timelines — query arrivals and
    shard failure events.  Each timeline is the same shape: a
    time-sorted list walked front to back, whose head timestamp is
    compared against the other streams' heads and whose same-instant
    entries drain as one batch.  The cursor owns that walk;
    :meth:`next_t` returns ``+inf`` once drained, so cores ``min()``
    several cursors against :meth:`CompletionHeap.next_end` without
    per-stream sentinel bookkeeping.

    ``items`` must already be sorted by ``timestamp`` — the cursor
    consumes, it does not sort.
    """

    def __init__(self, items: Iterable[object],
                 timestamp: Callable[[object], float]) -> None:
        self._items: List[object] = list(items)
        self._timestamp = timestamp
        self._i = 0

    def __len__(self) -> int:
        """Events not yet consumed."""
        return len(self._items) - self._i

    def next_t(self) -> float:
        """The head event's timestamp, or ``+inf`` when drained."""
        if self._i >= len(self._items):
            return float("inf")
        return self._timestamp(self._items[self._i])

    def pop_batch(self) -> List[object]:
        """Every event sharing the head timestamp, in stream order.

        Same-instant events form one batch so the caller advances the
        clock once and processes the whole instant in a single pass —
        the exogenous mirror of :meth:`CompletionHeap.pop_batch`.
        """
        items, stamp = self._items, self._timestamp
        t = stamp(items[self._i])
        batch = [items[self._i]]
        self._i += 1
        while self._i < len(items) and stamp(items[self._i]) == t:
            batch.append(items[self._i])
            self._i += 1
        return batch


class CompletionHeap:
    """Running tasks keyed by ``(end, seq)``: next completion in O(log n).

    ``seq`` is the executor's grant sequence number, so simultaneous
    completions pop in exactly the order the legacy ``min(running,
    key=(end, seq))`` scan chose them.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, object]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, end: float, seq: int, item: object) -> None:
        heapq.heappush(self._heap, (end, seq, item))

    def pop(self) -> object:
        """The running task with the smallest ``(end, seq)``."""
        return heapq.heappop(self._heap)[2]

    def next_end(self) -> float:
        """Completion instant of the head entry (heap must be non-empty);
        the open-loop executor compares it against the next arrival to
        interleave the two event streams in simulated-time order."""
        return self._heap[0][0]

    def pop_batch(self) -> List[object]:
        """All running tasks sharing the smallest ``end``, in seq order.

        This is the batch-drain entry point: same-timestamp completions
        are popped together so the executor advances the clock once and
        accounts for the whole batch in a single pass.  Tasks *granted
        while the batch is being processed* (zero-duration tasks can
        complete at the very same instant) are not in the returned batch —
        they carry a larger ``seq`` than every popped entry, so the next
        ``pop_batch`` call yields them in exactly the order the one-at-a-
        time ``pop`` loop would have.
        """
        heap = self._heap
        end, _, first = heapq.heappop(heap)
        batch = [first]
        while heap and heap[0][0] == end:
            batch.append(heapq.heappop(heap)[2])
        return batch


class ReadyHeapIndex:
    """Per-resource ready heaps with lazy invalidation and capacity parking.

    ``priority(w)`` returns the policy's sort key for a waiting entry (it
    must be non-decreasing over the entry's waiting lifetime — see the
    module docstring), ``version(w)`` the entry's current priority-version
    stamp (bumped by the executor whenever a session's policy-relevant
    state changes), and ``free_units(resource)`` the pool's free capacity
    (``None`` for an unbounded pool).

    Waiting entries are duck-typed: ``w.seq`` (admission sequence) and
    ``w.task.units`` are read here; everything else is opaque.
    """

    def __init__(
        self,
        priority: Callable[[object], tuple],
        version: Callable[[object], int],
        free_units: Callable[[str], Optional[int]],
    ) -> None:
        self._priority = priority
        self._version = version
        self._free = free_units
        #: resource -> heap of ((priority, seq), version, waiting)
        self._heaps: Dict[str, List[tuple]] = {}
        #: resource -> entries whose units exceed the pool's free capacity
        self._parked: Dict[str, List[tuple]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def register(self, resource: str) -> None:
        """Pre-register a resource (e.g. one per disk shard channel pool)."""
        self._heaps.setdefault(resource, [])
        self._parked.setdefault(resource, [])

    def push(self, resource: str, waiting: object) -> None:
        """Enqueue a ready (dependency-free) entry on its resource heap."""
        self.register(resource)
        entry = ((self._priority(waiting), waiting.seq),
                 self._version(waiting), waiting)
        heapq.heappush(self._heaps[resource], entry)
        self._size += 1

    def _head(self, resource: str) -> Optional[tuple]:
        """The minimal *fitting* entry of one resource, or ``None``.

        Stale heads (version mismatch) are re-keyed at the current
        priority and re-sifted; heads that do not fit the pool's free
        capacity are parked — pool usage only grows until the next
        release, so they cannot fit before then either.
        """
        heap = self._heaps[resource]
        if not heap:
            return None
        free = self._free(resource)
        if free is not None and free <= 0:
            return None  # nothing fits a full pool (units are >= 1)
        parked = self._parked[resource]
        while heap:
            key, version, waiting = heap[0]
            current = self._version(waiting)
            if version != current:
                heapq.heapreplace(
                    heap,
                    ((self._priority(waiting), waiting.seq), current, waiting),
                )
                continue
            if free is not None and waiting.task.units > free:
                parked.append(heapq.heappop(heap))
                continue
            return heap[0]
        return None

    def pop_best(self, resources: Optional[Iterable[str]] = None
                 ) -> Optional[object]:
        """Remove and return the globally minimal fitting waiting entry.

        Scans the per-resource heads (a handful of pools) and compares
        their ``(priority, seq)`` keys — exactly the order the legacy
        full-list ``min`` produced, at O(resources + log n) per grant.

        ``resources`` restricts the scan to the given *dirty* pools — the
        batch-drain loop passes only the resources whose state changed
        since the last grant round (capacity freed, or entries pushed).
        Every other pool is *grant-stable*: its previous round ended with
        no fitting head and nothing has changed since, so skipping it
        returns the same entry the full scan would.  Callers own that
        invariant; passing ``None`` always scans everything.
        """
        best_key: Optional[tuple] = None
        best_resource: Optional[str] = None
        for resource in (self._heaps if resources is None else resources):
            entry = self._head(resource)
            if entry is not None and (best_key is None or entry[0] < best_key):
                best_key = entry[0]
                best_resource = resource
        if best_resource is None:
            return None
        entry = heapq.heappop(self._heaps[best_resource])
        self._size -= 1
        return entry[2]

    def release(self, resource: str) -> None:
        """Capacity was freed on a resource: re-admit its parked entries."""
        parked = self._parked.get(resource)
        if parked:
            heap = self._heaps[resource]
            for entry in parked:
                heapq.heappush(heap, entry)
            parked.clear()

    def pending(self) -> Iterator[object]:
        """Every entry still enqueued or parked (deadlock reporting)."""
        for resource, heap in self._heaps.items():
            for _, _, waiting in heap:
                yield waiting
            for _, _, waiting in self._parked[resource]:
                yield waiting


class DependencyTracker:
    """Dependency counters over runtime-task uids.

    Built once from the materialized chains: ``pending[uid]`` counts the
    task's unfinished dependencies and ``dependents[uid]`` lists who waits
    on it.  :meth:`submit` parks an entry whose counter is still positive;
    :meth:`complete` decrements dependents and hands back the parked
    entries that just became ready — the executor pushes those onto the
    ready-heap index, which is how single-flight cache followers are woken
    through the event queue instead of being rediscovered by a scan.
    """

    def __init__(self, chains: Iterable[Iterable[object]]) -> None:
        self._pending: Dict[int, int] = {}
        self._dependents: Dict[int, List[int]] = {}
        self._parked: Dict[int, object] = {}
        for chain in chains:
            for task in chain:
                if task.deps:
                    self._pending[task.uid] = len(task.deps)
                    for dep in task.deps:
                        self._dependents.setdefault(dep, []).append(task.uid)

    def submit(self, waiting: object) -> bool:
        """True when the entry is ready now; otherwise park it."""
        uid = waiting.task.uid
        if self._pending.get(uid, 0) == 0:
            return True
        self._parked[uid] = waiting
        return False

    def complete(self, uid: int) -> List[object]:
        """A task finished: release parked entries whose last dep this was."""
        released: List[object] = []
        for dependent in self._dependents.pop(uid, ()):
            remaining = self._pending[dependent] - 1
            self._pending[dependent] = remaining
            if remaining == 0:
                waiting = self._parked.pop(dependent, None)
                if waiting is not None:
                    released.append(waiting)
        return released

    def parked(self) -> List[object]:
        """Entries still blocked on dependencies (deadlock reporting)."""
        return list(self._parked.values())


def blocked_triples(waiting: Iterable[object]) -> List[Tuple[int, str, int]]:
    """Sorted ``(qid, resource, units)`` triples of stuck waiting entries,
    the payload of the executor's deadlock diagnostics."""
    return sorted(
        (w.session.qid, w.task.resource, w.task.units) for w in waiting
    )
