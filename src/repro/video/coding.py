"""Coding knobs (Table 1): speed step, keyframe interval, coding bypass.

Coding knobs trade off ingestion (encode) cost, storage size and retrieval
(decode) cost without affecting consumer behaviour (Section 2.3).  A coding
option is either

* an encoded option ``Coding(speed_step, keyframe_interval)``, or
* the bypass option :data:`RAW`, storing raw YUV420 frames on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import KnobError

#: Encoder speed steps, slowest first, with the equivalent x264 preset.
SPEED_STEPS: Tuple[str, ...] = ("slowest", "slow", "med", "fast", "fastest")
SPEED_PRESET: Dict[str, str] = {
    "slowest": "veryslow",
    "slow": "medium",
    "med": "veryfast",
    "fast": "superfast",
    "fastest": "ultrafast",
}

#: Keyframe intervals in frames (the GOP length).
KEYFRAME_INTERVALS: Tuple[int, ...] = (5, 10, 50, 100, 250)


@dataclass(frozen=True)
class Coding:
    """One coding option.

    ``raw`` selects the coding-bypass path; the other two knobs are then
    meaningless and must be ``None``.
    """

    speed_step: Optional[str] = None
    keyframe_interval: Optional[int] = None
    raw: bool = False

    def __post_init__(self) -> None:
        if self.raw:
            if self.speed_step is not None or self.keyframe_interval is not None:
                raise KnobError("raw coding takes no speed step / keyframe interval")
            return
        if self.speed_step not in SPEED_STEPS:
            raise KnobError(f"illegal speed step: {self.speed_step!r}")
        if self.keyframe_interval not in KEYFRAME_INTERVALS:
            raise KnobError(f"illegal keyframe interval: {self.keyframe_interval!r}")

    @property
    def speed_idx(self) -> int:
        """Index of the speed step, slowest (cheapest storage) first."""
        if self.raw:
            raise KnobError("raw coding has no speed step")
        return SPEED_STEPS.index(self.speed_step)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``250-slowest`` or ``RAW``."""
        if self.raw:
            return "RAW"
        return f"{self.keyframe_interval}-{self.speed_step}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label

    @classmethod
    def parse(cls, label: str) -> "Coding":
        """Parse a label produced by :attr:`label`."""
        if label == "RAW":
            return RAW
        interval_text, _, step = label.partition("-")
        if not step:
            raise KnobError(f"malformed coding label: {label!r}")
        return cls(speed_step=step, keyframe_interval=int(interval_text))


#: The coding-bypass option: store raw YUV420 frames.
RAW = Coding(raw=True)


def coding_space(include_raw: bool = True) -> Iterator[Coding]:
    """Iterate the coding space C (25 encoded options, plus RAW)."""
    for interval, step in product(KEYFRAME_INTERVALS, SPEED_STEPS):
        yield Coding(speed_step=step, keyframe_interval=interval)
    if include_raw:
        yield RAW


def coding_space_size(include_raw: bool = True) -> int:
    """|C| — the number of coding options."""
    return len(SPEED_STEPS) * len(KEYFRAME_INTERVALS) + (1 if include_raw else 0)


def cheaper_decode_order() -> Tuple[Coding, ...]:
    """Coding options ordered from cheapest to costliest decoding.

    Used when coalescing storage formats: if the current coding cannot keep
    up with consumers, the coalescer walks this order toward cheaper decode
    (ending at RAW, whose "decoding" is a disk read).
    """
    encoded = sorted(
        (c for c in coding_space(include_raw=False)),
        key=lambda c: (-c.speed_idx, c.keyframe_interval),
    )
    return tuple(encoded) + (RAW,)
