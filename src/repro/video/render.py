"""Optional pixel rendering of synthetic frames.

Most of the system reasons about content analytically (see
:mod:`repro.video.content`); actual pixels are only needed when a caller
wants to *see* a frame — examples, debugging, and a few integration tests
that exercise the full frame path.  Rendering is deterministic: the same
(dataset, time, fidelity) always produces the same image.
"""

from __future__ import annotations

import numpy as np

from repro.rng import rng_for
from repro.video.content import ContentModel
from repro.video.fidelity import Fidelity

#: Gaussian pixel-noise sigma per image-quality level (compression artifacts).
QUALITY_NOISE_SIGMA = {"best": 0.0, "good": 2.0, "bad": 8.0, "worst": 20.0}

#: Grey level a vehicle of each color is drawn with.
_COLOR_LEVEL = {"white": 235, "silver": 190, "red": 120, "blue": 95, "black": 35}


def render_frame(model: ContentModel, t: float, fidelity: Fidelity) -> np.ndarray:
    """Render the frame at time ``t`` as a uint8 grayscale image.

    The image reflects the fidelity option: dimensions follow resolution and
    crop, objects outside the crop window are absent, and image quality adds
    deterministic compression-like noise.
    """
    w, h = fidelity.dimensions
    # Static background: a smooth gradient unique to the dataset.
    gy = np.linspace(0.0, 1.0, h)[:, None]
    gx = np.linspace(0.0, 1.0, w)[None, :]
    phase = (rng_for(model.name, "bg").uniform(0.0, np.pi))
    img = 110.0 + 40.0 * np.sin(3.0 * gx + phase) * np.cos(2.0 * gy)

    # Camera motion shifts the background slightly (dash cameras shake).
    shift = model.camera_activity(t) * 4.0
    if shift > 0.05:
        img = np.roll(img, int(round(shift * np.sin(t * 9.0))), axis=1)

    # Objects: filled rectangles at their normalized position, remapped into
    # the crop window.
    margin = (1.0 - fidelity.crop) / 2.0
    truth = model.frame_truth(t)
    for tr in truth.visible:
        x, y = tr.position(t)
        if not (margin <= x <= 1.0 - margin and margin <= y <= 1.0 - margin):
            continue  # outside the cropped field of view
        cx = (x - margin) / fidelity.crop
        cy = (y - margin) / fidelity.crop
        half_h = tr.size / fidelity.crop / 2.0
        half_w = half_h * 1.6 if tr.kind == "car" else half_h * 0.5
        r0 = max(0, int((cy - half_h) * h))
        r1 = min(h, int((cy + half_h) * h) + 1)
        c0 = max(0, int((cx - half_w) * w))
        c1 = min(w, int((cx + half_w) * w) + 1)
        if r1 > r0 and c1 > c0:
            level = _COLOR_LEVEL.get(tr.color, 150)
            img[r0:r1, c0:c1] = level * tr.contrast + 110 * (1 - tr.contrast)

    sigma = QUALITY_NOISE_SIGMA[fidelity.quality]
    if sigma > 0.0:
        noise = rng_for(model.name, "noise", round(t * 30), fidelity.quality,
                        fidelity.resolution).normal(0.0, sigma, size=img.shape)
        img = img + noise
    return np.clip(img, 0, 255).astype(np.uint8)


def render_clip(
    model: ContentModel, t0: float, duration: float, fidelity: Fidelity
) -> np.ndarray:
    """Render the consumed frames of a clip as an (n, h, w) uint8 array."""
    stride = int(round(1.0 / float(fidelity.sampling)))
    n_total = int(round(duration * 30))
    frames = [
        render_frame(model, t0 + i / 30.0, fidelity)
        for i in range(0, n_total, max(1, stride))
    ]
    return np.stack(frames) if frames else np.zeros((0, 1, 1), dtype=np.uint8)
