"""Operator-context scheduler (Section 5).

The paper scales the CPU-bound OpenALPR operators by running multiple
contexts and dispatching video segments across them.  This module provides
that dispatcher: greedy least-loaded assignment of per-segment costs onto
``n_contexts`` workers, returning the simulated makespan (the wall time of
the slowest context).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import QueryError


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one stage's segments across contexts."""

    n_contexts: int
    makespan: float  # simulated seconds until the slowest context finishes
    loads: List[float]  # per-context busy time
    assignment: List[int]  # context index per segment

    @property
    def total_work(self) -> float:
        return sum(self.loads)

    @property
    def speedup(self) -> float:
        """Achieved parallel speedup over a single context."""
        if self.makespan <= 0:
            return float(self.n_contexts)
        return self.total_work / self.makespan

    @property
    def utilization(self) -> float:
        """Fraction of context-time spent busy (1.0 = perfectly balanced)."""
        capacity = self.makespan * self.n_contexts
        return self.total_work / capacity if capacity > 0 else 1.0


def dispatch(segment_costs: Sequence[float], n_contexts: int) -> DispatchResult:
    """Greedy least-loaded dispatch of segments onto operator contexts.

    Segments are assigned in arrival order (streams are consumed in time
    order), each to the context with the smallest accumulated load — the
    natural online policy for the paper's segment dispatcher.
    """
    if n_contexts <= 0:
        raise QueryError(f"need at least one context: {n_contexts}")
    if any(c < 0 for c in segment_costs):
        raise QueryError("segment costs must be non-negative")
    loads = [0.0] * n_contexts
    assignment: List[int] = []
    for cost in segment_costs:
        idx = min(range(n_contexts), key=loads.__getitem__)
        loads[idx] += cost
        assignment.append(idx)
    return DispatchResult(
        n_contexts=n_contexts,
        makespan=max(loads) if loads else 0.0,
        loads=loads,
        assignment=assignment,
    )
