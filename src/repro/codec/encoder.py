"""Encoder: turns a segment of an ingested stream into one stored version.

The encoder charges its simulated CPU cost to the clock (category
``"ingest"``) and produces an :class:`EncodedSegment` record whose size comes
from the codec size model.  Payload bytes are optional: long-running
experiments account sizes analytically, while storage tests can ask for a
materialized payload to exercise the byte path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.rng import rng_for
from repro.video.format import StorageFormat
from repro.video.segment import Segment


@dataclass(frozen=True)
class EncodedSegment:
    """One stored segment of one storage format."""

    segment: Segment
    fmt: StorageFormat
    size_bytes: int
    n_frames: int
    activity: float
    payload: Optional[bytes] = None

    @property
    def key(self) -> str:
        """Storage key: segment key qualified by the format label."""
        return f"{self.segment.key}@{self.fmt.label}"


class Encoder:
    """A software encoder instance (one FFmpeg process in the paper)."""

    def __init__(self, model: CodecModel = DEFAULT_CODEC,
                 clock: Optional[SimClock] = None):
        self.model = model
        self.clock = clock or SimClock()
        self.segments_encoded = 0
        self.bytes_produced = 0

    def encode(
        self,
        segment: Segment,
        fmt: StorageFormat,
        activity: float,
        materialize: bool = False,
    ) -> EncodedSegment:
        """Transcode ``segment`` into storage format ``fmt``.

        ``activity`` is the clip's mean frame-change measure (content model);
        it drives encoded size.  When ``materialize`` is set, a deterministic
        pseudo-bitstream payload of the modeled size is generated so the
        storage backend moves real bytes.
        """
        fidelity, coding = fmt.fidelity, fmt.coding
        seconds = segment.seconds
        cost = self.model.encode_seconds_per_video_second(fidelity, coding) * seconds
        self.clock.charge(cost, "ingest")

        size = int(round(
            self.model.encoded_bytes_per_second(fidelity, coding, activity) * seconds
        ))
        n_frames = int(round(fidelity.fps * seconds))
        payload = None
        if materialize:
            rng = rng_for("payload", segment.key, fmt.label)
            payload = rng.integers(0, 256, size=max(1, size), dtype=np.uint8).tobytes()
        self.segments_encoded += 1
        self.bytes_produced += size
        return EncodedSegment(
            segment=segment,
            fmt=fmt,
            size_bytes=size,
            n_frames=n_frames,
            activity=activity,
            payload=payload,
        )

    def encode_speed(self, fmt: StorageFormat) -> float:
        """Realtime multiple at which this encoder produces ``fmt``."""
        return self.model.encode_speed(fmt.fidelity, fmt.coding)
