"""Segments: the unit of storage and erosion."""

from itertools import islice

from repro.video.segment import (
    Segment,
    iter_segments,
    segment_index_for,
    segments_for_range,
)


def test_segment_times():
    s = Segment("jackson", 3)
    assert s.t0 == 24.0
    assert s.t1 == 32.0
    assert s.key == "jackson/000000000003"


def test_index_for_time():
    assert segment_index_for(0.0) == 0
    assert segment_index_for(7.999) == 0
    assert segment_index_for(8.0) == 1
    assert segment_index_for(100.0) == 12


def test_segments_for_range_covers_exactly():
    segs = segments_for_range("s", 10.0, 30.0)
    assert [s.index for s in segs] == [1, 2, 3]
    # Boundary-exclusive end: 16.0 ends inside segment 1 only.
    assert [s.index for s in segments_for_range("s", 8.0, 16.0)] == [1]


def test_empty_range():
    assert segments_for_range("s", 10.0, 10.0) == []
    assert segments_for_range("s", 10.0, 5.0) == []


def test_iter_segments_sequential():
    got = list(islice(iter_segments("s"), 4))
    assert [s.index for s in got] == [0, 1, 2, 3]
