"""Multi-age integration: erosion plans executed against real segments.

Simulates a store holding several days' worth of footage (with a scaled
segment length so the test stays small), applies a budgeted erosion plan,
and checks the on-disk state: per-age deletion fractions realized, golden
format intact, total footprint shrinking toward the plan.
"""

import pytest

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner
from repro.operators.library import Consumer, default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.lifespan import apply_erosion_step
from repro.storage.segment_store import SegmentStore
from repro.units import DAY
from repro.video.segment import Segment

#: Scaled segment length: 50 segments per "day" keeps the test small.
SEG_SECONDS = DAY / 50.0
DAYS = 4


@pytest.fixture(scope="module")
def plan_formats():
    library = default_library(names=("Motion", "License", "OCR"))
    planner = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    decisions = planner.derive_all(
        [Consumer(op, acc) for op in ("Motion", "License", "OCR")
         for acc in (0.9, 0.7)]
    )
    profiler = CodingProfiler(activity=0.6)
    plan = StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    return plan, rates


def test_budgeted_erosion_end_to_end(tmp_path, plan_formats):
    plan, rates = plan_formats
    erosion_planner = ErosionPlanner(plan.formats, rates,
                                     lifespan_days=DAYS)
    unbounded = erosion_planner.plan(None).total_bytes
    floor = erosion_planner.plan_for_k(16.0).total_bytes
    budget = floor + 0.4 * (unbounded - floor)
    erosion = erosion_planner.plan(budget)
    assert erosion.k > 0

    # Materialize DAYS days of footage (scaled segments).
    kv = KVStore(str(tmp_path / "seg.log"))
    store = SegmentStore(kv, DiskModel(clock=SimClock()))
    enc = Encoder(clock=SimClock())
    n_segments = DAYS * 50
    for i in range(n_segments):
        segment = Segment("cam", i, seconds=SEG_SECONDS)
        for sf in plan.formats:
            store.put(enc.encode(segment, sf.fmt, activity=0.6))

    now = n_segments * SEG_SECONDS
    fraction_map = erosion.deleted_fraction_map(plan.formats)
    deleted = apply_erosion_step(store, "cam", fraction_map, now, DAYS,
                                 segment_seconds=SEG_SECONDS)
    assert deleted > 0

    golden = plan.golden
    # The golden format is fully intact.
    assert store.segment_count("cam", golden.fmt) == n_segments

    # Realized deletion fractions per age track the plan (the rank spread
    # is pseudo-uniform, so allow sampling slack on 50 segments).
    for sf in plan.formats:
        if sf.golden:
            continue
        for age in range(1, DAYS + 1):
            lo = (n_segments - age * 50)
            indices = set(store.indices("cam", sf.fmt))
            present = sum(1 for i in range(lo, lo + 50) if i in indices)
            planned = fraction_map.get((age, sf.fmt), 0.0)
            realized = 1.0 - present / 50.0
            assert realized == pytest.approx(planned, abs=0.18)

    # Applying the same plan again deletes nothing (idempotent).
    assert apply_erosion_step(store, "cam", fraction_map, now, DAYS,
                              segment_seconds=SEG_SECONDS) == 0
    kv.close()


def test_erosion_keeps_queries_answerable(tmp_path, plan_formats):
    """After erosion, every consumer still has a satisfiable format for any
    surviving time range — the golden fallback guarantee."""
    plan, rates = plan_formats
    golden = plan.golden
    for sf in plan.formats:
        for demand in sf.demands:
            assert golden.fidelity.richer_equal(demand.cf_fidelity)
