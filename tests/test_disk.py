"""Disk bandwidth/seek model."""

from fractions import Fraction

import pytest

from repro.clock import SimClock
from repro.storage.disk import DiskModel
from repro.units import GB, MB
from repro.video.fidelity import Fidelity


@pytest.fixture()
def disk():
    return DiskModel(read_bandwidth=1.0 * GB, write_bandwidth=0.8 * GB,
                     request_overhead=0.1e-3, clock=SimClock())


def test_read_charges_bandwidth_and_seek(disk):
    seconds = disk.read(1.0 * GB, requests=1)
    assert seconds == pytest.approx(1.0 + 0.1e-3)
    assert disk.clock.spent("disk") == pytest.approx(seconds)


def test_write_charges(disk):
    seconds = disk.write(0.8 * GB)
    assert seconds == pytest.approx(1.0 + 0.1e-3)


def test_sequential_read_speed(disk):
    # A 1 MB/s format streams at ~1024x realtime off a 1 GB/s disk.
    assert disk.sequential_read_speed(1.0 * MB) == pytest.approx(1024.0)
    assert disk.sequential_read_speed(0.0) == float("inf")


def test_raw_read_speed_full_scan_is_bandwidth_bound(disk):
    fid = Fidelity.parse("best-200p-1-100%")
    frame = 200 * 200 * 1.5
    speed = disk.raw_read_speed(fid, frame)
    assert speed == pytest.approx(
        1.0 / (30 * frame / (1.0 * GB) + 0.1e-3 / 8), rel=1e-6
    )
    # Hundreds of x realtime for a small raw format (Table 3b note 2).
    assert speed > 300


def test_raw_read_sampled_frames_individually(disk):
    fid = Fidelity.parse("best-200p-1-100%")
    frame = 200 * 200 * 1.5
    sparse = disk.raw_read_speed(fid, frame, Fraction(1, 30))
    full = disk.raw_read_speed(fid, frame, Fraction(1))
    # Sampling 1 frame/s touches 1/30 of the data: much faster retrieval.
    assert sparse > 5 * full


def test_negative_bytes_rejected(disk):
    # A negative size would charge negative seconds, silently rewinding
    # the simulated clock.
    with pytest.raises(ValueError):
        disk.read(-1.0)
    with pytest.raises(ValueError):
        disk.write(-1.0 * MB)
    assert disk.clock.now == 0.0


def test_negative_requests_rejected(disk):
    with pytest.raises(ValueError):
        disk.read(1.0 * MB, requests=-1)
    with pytest.raises(ValueError):
        disk.write(1.0 * MB, requests=-2)
    assert disk.clock.now == 0.0


def test_zero_sized_transfers_allowed(disk):
    # Zero bytes / zero requests are legal no-ops (plus any request cost).
    assert disk.read(0.0, requests=0) == 0.0
    assert disk.write(0.0) == pytest.approx(0.1e-3)


def test_raw_read_speed_monotone_in_sampling(disk):
    fid = Fidelity.parse("best-200p-1-100%")
    frame = 200 * 200 * 1.5
    speeds = [
        disk.raw_read_speed(fid, frame, s)
        for s in (Fraction(1), Fraction(2, 3), Fraction(1, 2), Fraction(1, 6),
                  Fraction(1, 30))
    ]
    assert speeds == sorted(speeds)
