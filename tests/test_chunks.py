"""GOP structure and chunk-skip decode accounting (Figure 3b)."""

import pytest
from hypothesis import given, strategies as st

from repro.codec.chunks import (
    decoded_frame_count,
    decoded_frame_fraction,
    gop_layout,
)
from repro.errors import CodecError


def test_gop_layout_exact_division():
    assert gop_layout(100, 10) == [10] * 10


def test_gop_layout_remainder():
    assert gop_layout(25, 10) == [10, 10, 5]


def test_gop_layout_rejects_bad_interval():
    with pytest.raises(CodecError):
        gop_layout(100, 0)


def test_dense_sampling_decodes_everything():
    assert decoded_frame_count(240, 1, 50) == 240
    assert decoded_frame_fraction(1, 50) == 1.0


def test_sampling_within_gop_cannot_skip():
    # Stride below the keyframe interval: the reference chain forces the
    # decoder through every frame up to each sample.
    n = 250
    count = decoded_frame_count(n, 5, 250)
    # Frames up to the last sample (index 245) are all decoded.
    assert count == 246


def test_sparse_sampling_skips_chunks():
    # Stride 50 over 10-frame chunks: per sample, decode from that chunk's
    # keyframe (multiple of 10) to the sample - exactly 1 frame when the
    # sample lands on a keyframe.
    count = decoded_frame_count(500, 50, 10)
    assert count == 10  # samples 0,50,...,450 all land on keyframes
    assert decoded_frame_fraction(50, 10) == pytest.approx(10 / 500)


def test_sparse_sampling_off_keyframe():
    # Stride 75, kf 50: samples at 0, 75, 150, ... land mid-chunk half the
    # time; each mid-chunk sample decodes (pos-in-chunk + 1) frames.
    count = decoded_frame_count(300, 75, 50)
    # samples: 0 (decode 1), 75 (decode 50..75: 26), 150 (1), 225 (26)
    assert count == 1 + 26 + 1 + 26


def test_smaller_keyframe_interval_speeds_sparse_decode():
    # Figure 3b: under sparse consumer sampling, smaller GOPs decode less.
    # (Stride 253 is coprime with every interval, so samples do not line up
    # with keyframes — the generic case.)
    fractions = [decoded_frame_fraction(253, m) for m in (5, 10, 50, 100, 250)]
    assert fractions == sorted(fractions)
    assert fractions[0] < fractions[-1] / 5  # several-fold difference


def test_stride_aligned_with_gop_decodes_only_keyframes():
    # When the stride is an exact multiple of the GOP, every sample lands
    # on a keyframe and exactly one frame is decoded per sample.
    assert decoded_frame_count(1000, 250, 250) == 4


def test_invalid_stride_rejected():
    with pytest.raises(CodecError):
        decoded_frame_count(100, 0, 10)


def test_empty_stream():
    assert decoded_frame_count(0, 10, 10) == 0


@given(
    n=st.integers(1, 600),
    stride=st.integers(1, 300),
    kf=st.sampled_from([5, 10, 50, 100, 250]),
)
def test_decoded_count_bounds(n, stride, kf):
    count = decoded_frame_count(n, stride, kf)
    n_samples = len(range(0, n, stride))
    assert n_samples <= count <= n


@given(
    stride=st.integers(1, 300),
    kf=st.sampled_from([5, 10, 50, 100, 250]),
)
def test_fraction_in_unit_interval(stride, kf):
    f = decoded_frame_fraction(stride, kf)
    assert 0.0 < f <= 1.0


@given(
    n=st.integers(1, 500),
    stride=st.integers(1, 100),
    kf=st.sampled_from([5, 10, 50, 100, 250]),
)
def test_decoder_never_reaches_past_last_sample(n, stride, kf):
    # The decoder touches at most every frame up to the last sample, and
    # never fewer than one frame per sample.
    count = decoded_frame_count(n, stride, kf)
    samples = list(range(0, n, stride))
    assert len(samples) <= count <= samples[-1] + 1
