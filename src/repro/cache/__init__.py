"""Tiered retrieval cache: decoded frames, operator results, hot tiers.

See :mod:`repro.cache.plane` for the facade the rest of the system talks
to; :class:`VStore(cache_config=...) <repro.core.store.VStore>` is the
public entry point.
"""

from repro.cache.frames import (
    ByteBudgetCache,
    CacheEntry,
    CacheError,
    CostAwarePolicy,
    DecodedFrameCache,
    EvictionPolicy,
    LFUPolicy,
    LRUPolicy,
    POLICIES,
    policy_named,
)
from repro.cache.plane import (
    CacheConfig,
    CachePlane,
    CacheStats,
    RetrievalAccess,
    TierCounters,
    TieringStats,
)
from repro.cache.results import ResultCache
from repro.cache.tiers import FAST_TIER, StorageTier, TierConfig, TierManager

__all__ = [
    "ByteBudgetCache",
    "CacheConfig",
    "CacheEntry",
    "CacheError",
    "CachePlane",
    "CacheStats",
    "CostAwarePolicy",
    "DecodedFrameCache",
    "EvictionPolicy",
    "FAST_TIER",
    "LFUPolicy",
    "LRUPolicy",
    "POLICIES",
    "ResultCache",
    "RetrievalAccess",
    "StorageTier",
    "TierConfig",
    "TierCounters",
    "TieringStats",
    "TierManager",
    "policy_named",
]
