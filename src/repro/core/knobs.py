"""Knob-space arithmetic: the sizes that motivate automatic configuration.

Section 4.1 counts the possible global configurations to argue exhaustive
search is infeasible; this module exposes those counts for our knob domains
(600 fidelity options, 26 coding options, |F x C| = 15,600 storage formats —
the paper's "15K possible combinations").
"""

from __future__ import annotations

from repro.video.coding import coding_space_size
from repro.video.fidelity import fidelity_space_size, knob_counts


def consumption_space_size() -> int:
    """|F| — options for one consumption format."""
    return fidelity_space_size()


def storage_space_size(include_raw: bool = True) -> int:
    """|F x C| — options for one storage format (~15K)."""
    return fidelity_space_size() * coding_space_size(include_raw)


def configuration_space_size(n_consumers: int, n_storage_formats: int) -> int:
    """Size of the global configuration space for a deployment: every
    consumer picks a consumption format and every stored version picks a
    storage format (the paper's 2415^150-scale number)."""
    return (
        consumption_space_size() ** n_consumers
        * storage_space_size() ** n_storage_formats
    )


def boundary_search_run_bound() -> int:
    """Upper bound on profiling runs per consumer for the Section 4.2
    search: O((N_sample + N_res) * N_crop + N_quality)."""
    counts = knob_counts()
    return (counts["sampling"] + counts["resolution"]) * counts["crop"] + counts[
        "quality"
    ]


def exhaustive_run_bound() -> int:
    """Profiling runs per consumer under exhaustive search: |F|."""
    return fidelity_space_size()
