"""Benchmark trajectory comparison: ``python -m repro bench-diff``.

Every benchmark session rewrites ``benchmarks/BENCH.json`` (schema 1:
``{"schema": 1, "tests": {nodeid: wall}, "metrics": {cell: fields}}``).
Until now the trajectory was eyeballed against RESULTS.md; this module
diffs two such files cell by cell and applies a regression tolerance, so
CI can *gate* on throughput instead of merely archiving it:

* cells are matched by name across the two files; a cell present on one
  side only is reported but never gates;
* the gated quantity is ``events_per_second`` (scheduling throughput —
  the number the executor-core work is optimizing); ``wall_seconds`` is
  shown alongside as context but does not gate, because a cell's wall
  includes simulated-workload changes that are not regressions;
* a cell whose recorded throughput is 0 is *excluded* from gating:
  ``ExecutorStats.events_per_second`` reports 0.0 when the run finished
  under the wall-clock resolution (``wall_seconds == 0``), and a ratio
  against an honest zero is noise, not signal;
* cells are self-describing: ``core`` / ``shards`` / ``queries`` fields
  (optional — old baselines without them still load and display ``--``)
  are shown in the table, and a cell whose ``core`` differs between the
  two runs is excluded from gating rather than compared as a
  regression — a dispatch change is a finding, not a slowdown.

The committed ``benchmarks/BENCH_BASELINE.json`` pins the last accepted
run; the CI perf-smoke job diffs the fresh smoke cell against it and
fails on a >30% throughput drop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "BenchDiff",
    "CellDelta",
    "DEFAULT_TOLERANCE",
    "diff_bench",
    "format_bench_diff",
    "load_bench",
]

#: Throughput may drop this fraction before a cell counts as a
#: regression — headroom for noisy shared CI workers.
DEFAULT_TOLERANCE = 0.30


def load_bench(path: str) -> Dict:
    """Load one BENCH.json; raises ValueError on an unknown schema."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != 1:
        raise ValueError(
            f"{path}: unsupported BENCH schema {data.get('schema')!r}"
        )
    return data


#: Optional self-describing cell fields surfaced in the diff table.
_META_KEYS = ("core", "shards", "queries")


def _cell_meta(fields: Dict) -> Dict[str, object]:
    """The cell's declared metadata subset (may be empty on old files)."""
    return {k: fields[k] for k in _META_KEYS if k in fields}


@dataclass(frozen=True)
class CellDelta:
    """One metric cell compared across two benchmark runs."""

    cell: str
    old_eps: Optional[float]  # events/s, None when absent on that side
    new_eps: Optional[float]
    old_wall: Optional[float]
    new_wall: Optional[float]
    excluded: str = ""  # non-empty: why this cell does not gate
    old_meta: Optional[Dict] = None  # core/shards/queries, when declared
    new_meta: Optional[Dict] = None

    @property
    def ratio(self) -> Optional[float]:
        """new/old throughput; None when the cell cannot be compared."""
        if self.excluded or not self.old_eps or self.new_eps is None:
            return None
        return self.new_eps / self.old_eps

    def regressed(self, tolerance: float) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio < 1.0 - tolerance


@dataclass(frozen=True)
class BenchDiff:
    """Cell-by-cell comparison of two benchmark runs."""

    deltas: Tuple[CellDelta, ...]
    tolerance: float

    @property
    def regressions(self) -> List[CellDelta]:
        return [d for d in self.deltas if d.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _cell_numbers(
    fields: Dict,
) -> Tuple[Optional[float], Optional[float], str]:
    """Extract (events/s, wall, exclusion reason) from one cell's fields."""
    eps = fields.get("events_per_second")
    wall = fields.get("wall_seconds")
    if eps is None:
        return None, wall, "no events_per_second recorded"
    if eps <= 0:
        # An honest zero: the run finished under the timer's resolution.
        return eps, wall, "sub-resolution run (events_per_second == 0)"
    return eps, wall, ""


def diff_bench(old: Dict, new: Dict,
               tolerance: float = DEFAULT_TOLERANCE) -> BenchDiff:
    """Compare two loaded BENCH.json payloads cell by cell."""
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    deltas: List[CellDelta] = []
    for cell in sorted(set(old_metrics) | set(new_metrics)):
        if cell not in old_metrics:
            deltas.append(CellDelta(cell, None, None, None,
                                    new_metrics[cell].get("wall_seconds"),
                                    excluded="new cell (no baseline)",
                                    new_meta=_cell_meta(new_metrics[cell])))
            continue
        if cell not in new_metrics:
            deltas.append(CellDelta(cell, None, None,
                                    old_metrics[cell].get("wall_seconds"),
                                    None, excluded="cell gone from new run",
                                    old_meta=_cell_meta(old_metrics[cell])))
            continue
        old_eps, old_wall, old_why = _cell_numbers(old_metrics[cell])
        new_eps, new_wall, new_why = _cell_numbers(new_metrics[cell])
        old_meta = _cell_meta(old_metrics[cell])
        new_meta = _cell_meta(new_metrics[cell])
        why = old_why or new_why
        if (not why and old_meta.get("core") and new_meta.get("core")
                and old_meta["core"] != new_meta["core"]):
            # Different executor core on the two sides: a dispatch change,
            # not a like-for-like throughput comparison.
            why = (f"core changed ({old_meta['core']} -> "
                   f"{new_meta['core']})")
        deltas.append(CellDelta(cell, old_eps, new_eps, old_wall, new_wall,
                                excluded=why, old_meta=old_meta,
                                new_meta=new_meta))
    return BenchDiff(deltas=tuple(deltas), tolerance=tolerance)


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "--"
    if unit == "s":
        return f"{value:.4f}s"
    return f"{value:,.0f}"


def _fmt_meta(meta: Optional[Dict]) -> str:
    """Compact core/shards/queries tag, ``--`` for undeclared (old) cells."""
    if not meta:
        return "--"
    parts: List[str] = []
    if "core" in meta:
        parts.append(str(meta["core"]))
    if "shards" in meta:
        parts.append(f"s{meta['shards']}")
    if "queries" in meta:
        parts.append(f"q{meta['queries']}")
    return " ".join(parts)


def format_bench_diff(diff: BenchDiff) -> str:
    """Render the diff the way CI logs want it: table, then verdict."""
    lines: List[str] = []
    header = (f"{'cell':<34} {'config':>18} {'old ev/s':>12} "
              f"{'new ev/s':>12} {'ratio':>7} {'old wall':>10} "
              f"{'new wall':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for d in diff.deltas:
        ratio = d.ratio
        if ratio is not None:
            verdict = f"{ratio:6.2f}x"
        else:
            verdict = "   excl"
        lines.append(
            f"{d.cell:<34} {_fmt_meta(d.new_meta or d.old_meta):>18} "
            f"{_fmt(d.old_eps):>12} {_fmt(d.new_eps):>12} "
            f"{verdict:>7} {_fmt(d.old_wall, 's'):>10} "
            f"{_fmt(d.new_wall, 's'):>10}"
        )
        if d.excluded:
            lines.append(f"{'':<34}   [excluded: {d.excluded}]")
    regressions = diff.regressions
    floor = 1.0 - diff.tolerance
    if regressions:
        lines.append("")
        for d in regressions:
            lines.append(
                f"REGRESSION: {d.cell} at {d.ratio:.2f}x of baseline "
                f"throughput (floor {floor:.2f}x)"
            )
    else:
        compared = sum(1 for d in diff.deltas if d.ratio is not None)
        lines.append("")
        lines.append(
            f"OK: {compared} cell(s) compared, none below "
            f"{floor:.2f}x of baseline throughput"
        )
    return "\n".join(lines)
