"""Deterministic seeded randomness."""

from repro.rng import rng_for, stable_seed


def test_stable_seed_is_deterministic():
    assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)


def test_stable_seed_distinguishes_context():
    assert stable_seed("a", 1) != stable_seed("a", 2)
    assert stable_seed("a") != stable_seed("b")


def test_stable_seed_order_matters():
    assert stable_seed("a", "b") != stable_seed("b", "a")


def test_rng_for_reproducible_streams():
    a = rng_for("dataset", 7).normal(size=16)
    b = rng_for("dataset", 7).normal(size=16)
    assert (a == b).all()


def test_rng_for_independent_streams():
    a = rng_for("dataset", 7).normal(size=16)
    b = rng_for("dataset", 8).normal(size=16)
    assert (a != b).any()
