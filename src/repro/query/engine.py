"""Query engine: estimating and executing cascades against the store.

``estimate`` composes per-stage speeds analytically (how Figure 11a is
produced); ``execute`` actually streams segments from a segment store
through the decoder/disk to stochastic operator runs, charging all costs
to a simulated clock — the full data path of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cache.plane import CachePlane

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.core.config import Configuration
from repro.errors import QueryError
from repro.operators.library import Consumer, OperatorLibrary
from repro.query.alternatives import AlternativeScheme, vstore_scheme
from repro.query.cascade import QueryCascade, stages_with_coverage
from repro.retrieval.reader import SegmentReader
from repro.retrieval.speed import retrieval_speed
from repro.rng import rng_for
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.storage.segment_store import SegmentStore
from repro.video.datasets import get_dataset
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import segments_for_range


@dataclass(frozen=True)
class StageReport:
    """Speed breakdown of one cascade stage."""

    operator: str
    accuracy: float  # target accuracy (1.0 under the 1->1 scheme)
    fidelity: Fidelity
    storage_format: StorageFormat
    consumption_speed: float  # x realtime
    retrieval_speed: float  # x realtime
    coverage: float  # fraction of the queried span this stage scans
    selectivity: float  # fraction of frames it passes downstream

    @property
    def effective_speed(self) -> float:
        """The stage runs at the slower of retrieval and consumption."""
        return min(self.consumption_speed, self.retrieval_speed)


@dataclass(frozen=True)
class QueryReport:
    """End-to-end analytic query outcome."""

    query: str
    dataset: str
    scheme: str
    accuracy: float
    duration: float  # queried video seconds
    stages: List[StageReport]

    @property
    def total_seconds(self) -> float:
        return sum(
            s.coverage * self.duration / s.effective_speed
            for s in self.stages
            if s.effective_speed > 0
        )

    @property
    def speed(self) -> float:
        """Query speed in x video realtime (Figure 11a's metric)."""
        total = self.total_seconds
        return float("inf") if total <= 0 else self.duration / total


@dataclass
class ExecutionResult:
    """Outcome of actually executing a cascade against a segment store."""

    query: str
    dataset: str
    video_seconds: float
    compute_seconds: float
    speed: float
    positives_per_stage: Dict[str, int] = field(default_factory=dict)
    segments_per_stage: Dict[str, int] = field(default_factory=dict)


class QueryEngine:
    """Runs cascades against one dataset under one configuration."""

    #: Sample length (video seconds) used for selectivity estimation.
    SELECTIVITY_SAMPLE = 32.0

    def __init__(
        self,
        config: Configuration,
        library: OperatorLibrary,
        dataset: str,
        codec: CodecModel = DEFAULT_CODEC,
        disk: DiskModel = DEFAULT_DISK,
        cache: Optional["CachePlane"] = None,
    ):
        self.config = config
        self.library = library
        self.dataset = dataset
        self.codec = codec
        self.disk = disk
        self.cache = cache
        self._content = get_dataset(dataset).content()
        self._sample = self._content.clip(0.0, self.SELECTIVITY_SAMPLE)

    # -- analytic estimation --------------------------------------------------------

    def estimate(
        self,
        query: QueryCascade,
        accuracy: float,
        duration: float,
        scheme: Optional[AlternativeScheme] = None,
    ) -> QueryReport:
        """Analytic end-to-end query speed under a configuration scheme."""
        return self.estimate_mixed(
            query, {name: accuracy for name in query}, duration, scheme
        )

    def estimate_mixed(
        self,
        query: QueryCascade,
        accuracies: Dict[str, float],
        duration: float,
        scheme: Optional[AlternativeScheme] = None,
    ) -> QueryReport:
        """Like :meth:`estimate`, with a per-operator accuracy selection —
        users pick accuracy levels per constituting operator (Section 6.1).
        """
        scheme = scheme or vstore_scheme(self.config)
        selectivities: List[float] = []
        stages: List[StageReport] = []
        for name in query:
            op = self.library.get(name)
            try:
                accuracy = accuracies[name]
            except KeyError:
                raise QueryError(
                    f"no accuracy selected for operator {name!r}"
                ) from None
            consumer = Consumer(name, accuracy)
            fidelity = scheme.consumption_fidelity(consumer)
            fmt = scheme.storage_format(consumer)
            selectivities.append(
                op.expected_positive_fraction(self._sample, fidelity)
            )
            stages.append(
                StageReport(
                    operator=name,
                    accuracy=accuracy if scheme.honors_targets else 1.0,
                    fidelity=fidelity,
                    storage_format=fmt,
                    consumption_speed=op.consumption_speed(fidelity),
                    retrieval_speed=retrieval_speed(
                        fmt, fidelity.sampling, self.codec, self.disk
                    ),
                    coverage=1.0,  # placeholder, fixed below
                    selectivity=selectivities[-1],
                )
            )
        coverages = stages_with_coverage(selectivities)
        stages = [
            StageReport(
                operator=s.operator,
                accuracy=s.accuracy,
                fidelity=s.fidelity,
                storage_format=s.storage_format,
                consumption_speed=s.consumption_speed,
                retrieval_speed=s.retrieval_speed,
                coverage=c,
                selectivity=s.selectivity,
            )
            for s, c in zip(stages, coverages)
        ]
        return QueryReport(
            query=query.label,
            dataset=self.dataset,
            scheme=scheme.name,
            accuracy=min(accuracies[name] for name in query),
            duration=duration,
            stages=stages,
        )

    # -- actual execution ----------------------------------------------------------------

    def plan(
        self,
        query: QueryCascade,
        accuracy: float,
        store: SegmentStore,
        t0: float,
        t1: float,
        *,
        stream: Optional[str] = None,
        scheme: Optional[AlternativeScheme] = None,
        contexts: int = 1,
    ) -> "QueryPlan":
        """Plan a query's full task chain without charging any clock.

        Stage i+1 only touches segments in which stage i produced at least
        one positive frame — the cascade structure of Figure 2 at segment
        granularity.  Operator outputs are seeded per segment, so the plan
        is independent of how its tasks are later scheduled.  ``stream``
        lets one content model (this engine's dataset) stand in for footage
        ingested under another stream name (a camera fleet).
        """
        from repro.query.scheduler import (
            QueryPlan,
            ResourceTask,
            StagePlan,
            dispatch,
        )

        if t1 <= t0:
            raise QueryError(f"empty query range [{t0}, {t1})")
        stream = stream or self.dataset
        scheme = scheme or vstore_scheme(self.config)
        active = list(segments_for_range(stream, t0, t1))
        stages: List[StagePlan] = []

        for name in query:
            op = self.library.get(name)
            consumer = Consumer(name, accuracy)
            fidelity = scheme.consumption_fidelity(consumer)
            fmt = scheme.storage_format(consumer)
            reader = SegmentReader(store, fmt, fidelity, self.codec,
                                   cache=self.cache)
            tasks: List[ResourceTask] = []
            survivors = []
            n_pos = 0
            consume_costs: List[float] = []
            result_keys: List[Optional[tuple]] = []
            result_nbytes: List[float] = []  # output bytes, for commits
            result_hits: List[tuple] = []  # (key, saved seconds) per hit
            # One vectorized pass builds the whole stage's retrieval costs
            # and consume-cost array (bit-identical to the scalar loop);
            # only the stochastic operator outputs stay per-segment.
            assessed = reader.assess_cached_many(
                stream, [segment.index for segment in active]
            )
            base_costs = (
                op.cost_per_frame(fidelity)
                * np.asarray([r.n_frames for r, _ in assessed],
                             dtype=np.int64)
            ).tolist()
            for segment, (retrieved, access), cost in zip(
                    active, assessed, base_costs):
                clip = self._content.clip(segment.t0, segment.seconds)
                rkey = None
                if self.cache is not None:
                    rkey = self.cache.result_key(
                        stream, segment.index, self.dataset, name,
                        fidelity.label, str(fidelity.sampling),
                    )
                output = self._stage_output(op, name, clip, fidelity,
                                            segment.index, rkey)
                result_hit = False
                if rkey is not None:
                    if self.cache.results.is_committed(rkey):
                        # The result is resident in simulated RAM: this
                        # segment's consume is free for this stage (the
                        # hit is counted when the consume task runs).
                        # Result outputs are orders of magnitude smaller
                        # than frames, so unlike frame hits no RAM-read
                        # time is modeled — charging a near-zero epsilon
                        # would only poison latency/service ratios.
                        result_hits.append((rkey, cost))
                        cost = 0.0
                        result_hit = True
                consume_costs.append(cost)
                # A committed hit has nothing to produce or deduplicate:
                # its key is cleared so the executor's single-flight pass
                # leaves it alone.
                result_keys.append(None if result_hit else rkey)
                result_nbytes.append(float(output.nbytes))
                hits = int(np.asarray(output).sum())
                if hits > 0:
                    survivors.append(segment)
                    n_pos += hits
                if result_hit:
                    # The stage output is already resident: the frames are
                    # never needed, so no retrieval is planned at all —
                    # charging disk/decode for provably unused data would
                    # overstate warm latency and pool contention.
                    continue
                cache_hit = access is not None and access.hit
                tasks.append(ResourceTask(
                    kind="retrieve",
                    resource="cache" if cache_hit
                    else ("disk" if fmt.is_raw else "decoder"),
                    units=1,
                    duration=retrieved.retrieval_seconds,
                    category="cache" if cache_hit else reader.category,
                    operator=name,
                    access=access,
                    hit=cache_hit,
                    shard=store.shard_of(stream, fmt, segment.index),
                ))
            # A stage with fewer segments than contexts can never load the
            # extra contexts (least-loaded dispatch leaves them idle), and
            # zero-cost (result-cache-hit) segments do no work either, so
            # only hold as many pool units as can actually do work.
            busy_segments = sum(1 for c in consume_costs if c > 0)
            tasks.append(ResourceTask(
                kind="consume",
                resource="operators",
                units=max(1, min(contexts, busy_segments)),
                duration=dispatch(consume_costs, contexts).makespan,
                category="consume",
                operator=name,
            ))
            stages.append(StagePlan(
                operator=name,
                tasks=tuple(tasks),
                touched=len(active),
                positives=n_pos,
                consume_costs=tuple(consume_costs),
                result_keys=tuple(result_keys),
                result_nbytes=tuple(result_nbytes),
                result_hits=tuple(result_hits),
            ))
            active = survivors

        return QueryPlan(
            label=query.label,
            dataset=self.dataset,
            stream=stream,
            video_seconds=t1 - t0,
            stages=tuple(stages),
            contexts=contexts,
        )

    def _stage_output(self, op, name: str, clip, fidelity: Fidelity,
                      index: int, rkey: Optional[tuple]) -> np.ndarray:
        """One stage's deterministic output over one segment.

        Outputs are seeded per (operator, dataset, segment, fidelity), so
        the result cache's memo (keyed by the caller-supplied ``rkey``)
        can serve them without re-running the operator's real compute;
        simulated charging is decided separately by the committed set
        (see :mod:`repro.cache.results`).
        """
        if rkey is not None:
            cached = self.cache.results.get_output(rkey)
            if cached is not None:
                return cached
        rng = rng_for("query", name, self.dataset, index, fidelity.label)
        output = np.asarray(op.run(clip, fidelity, rng))
        if rkey is not None:
            self.cache.results.record_output(rkey, output)
        return output

    def execute(
        self,
        query: QueryCascade,
        accuracy: float,
        store: SegmentStore,
        t0: float,
        t1: float,
        scheme: Optional[AlternativeScheme] = None,
        clock: Optional[SimClock] = None,
        contexts: int = 1,
        stream: Optional[str] = None,
        core: str = "heap",
        trace: Optional[bool] = None,
    ) -> ExecutionResult:
        """Stream segments through retrieval into stochastic operator runs.

        This is the degenerate (N=1, uncontended) case of the concurrent
        executor: the query's task chain runs serially with no other query
        competing for the disk, decoder or operator pools, charging the
        same costs in the same order as the sequential data path of
        Figure 1.  ``contexts`` > 1 scales consumption the way the paper's
        Section-5 scheduler does: segments are dispatched across that many
        operator contexts and the stage pays the makespan.  ``core``
        selects the executor engine (``"heap"`` or the legacy
        ``"reference"`` loop); the two are bit-identical.
        """
        from repro.query.scheduler import ConcurrentExecutor

        clock = clock or SimClock()
        executor = ConcurrentExecutor(
            self.config,
            self.library,
            store,
            codec=self.codec,
            clock=clock,
            engines={self.dataset: self},
            cache=self.cache,
            core=core,
            trace=trace,
        )
        executor.admit(query, self.dataset, accuracy, t0, t1,
                       stream=stream, scheme=scheme, contexts=contexts)
        outcome = executor.run()[0]

        video_seconds = t1 - t0
        compute = clock.now
        return ExecutionResult(
            query=query.label,
            dataset=self.dataset,
            video_seconds=video_seconds,
            compute_seconds=compute,
            speed=float("inf") if compute <= 0 else video_seconds / compute,
            positives_per_stage=outcome.result.positives_per_stage,
            segments_per_stage=outcome.result.segments_per_stage,
        )

    def _execute_sequential(
        self,
        query: QueryCascade,
        accuracy: float,
        store: SegmentStore,
        t0: float,
        t1: float,
        scheme: Optional[AlternativeScheme] = None,
        clock: Optional[SimClock] = None,
        contexts: int = 1,
    ) -> ExecutionResult:
        """Reference implementation: the original single-query loop.

        Kept verbatim so tests can assert that :meth:`execute` — now the
        N=1 case of the concurrent executor — reproduces it bit-identically.
        """
        from repro.query.scheduler import dispatch

        if t1 <= t0:
            raise QueryError(f"empty query range [{t0}, {t1})")
        scheme = scheme or vstore_scheme(self.config)
        clock = clock or SimClock()
        segments = segments_for_range(self.dataset, t0, t1)
        active = list(segments)
        positives: Dict[str, int] = {}
        touched: Dict[str, int] = {}

        for name in query:
            op = self.library.get(name)
            consumer = Consumer(name, accuracy)
            fidelity = scheme.consumption_fidelity(consumer)
            fmt = scheme.storage_format(consumer)
            reader = SegmentReader(store, fmt, fidelity, self.codec, clock)
            survivors = []
            n_pos = 0
            consume_costs = []
            for segment in active:
                retrieved = reader.read(self.dataset, segment.index)
                clip = self._content.clip(segment.t0, segment.seconds)
                consume_costs.append(
                    op.cost_per_frame(fidelity) * retrieved.n_frames
                )
                rng = rng_for("query", name, self.dataset, segment.index,
                              fidelity.label)
                output = op.run(clip, fidelity, rng)
                hits = int(np.asarray(output).sum())
                if hits > 0:
                    survivors.append(segment)
                    n_pos += hits
            clock.charge(dispatch(consume_costs, contexts).makespan,
                         "consume")
            positives[name] = n_pos
            touched[name] = len(active)
            active = survivors

        video_seconds = t1 - t0
        compute = clock.now
        return ExecutionResult(
            query=query.label,
            dataset=self.dataset,
            video_seconds=video_seconds,
            compute_seconds=compute,
            speed=float("inf") if compute <= 0 else video_seconds / compute,
            positives_per_stage=positives,
            segments_per_stage=touched,
        )
