"""Programmatic figure data: the series behind the paper's plots.

The benchmarks print human-readable tables; downstream users who want to
*plot* Figure 3/11/13 need the raw series.  Each function here returns
plain dictionaries of lists, ready for any plotting library.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.core.config import Configuration
from repro.core.erosion import ErosionPlan
from repro.operators.library import OperatorLibrary
from repro.query.alternatives import (
    AlternativeScheme,
    one_to_n_scheme,
    one_to_one_scheme,
    vstore_scheme,
)
from repro.query.cascade import QueryCascade
from repro.query.engine import QueryEngine
from repro.video.coding import Coding, KEYFRAME_INTERVALS, SPEED_STEPS
from repro.video.fidelity import Fidelity, richest_fidelity


def speed_step_series(
    fidelity: Optional[Fidelity] = None,
    activity: float = 0.4,
    codec: CodecModel = DEFAULT_CODEC,
) -> Dict[str, List[float]]:
    """Figure 3a series: encode/decode speed and size per speed step."""
    fidelity = fidelity or richest_fidelity()
    out: Dict[str, List[float]] = {
        "step": [], "encode_speed": [], "decode_speed": [],
        "bytes_per_second": [],
    }
    for step in SPEED_STEPS:
        coding = Coding(step, 250)
        out["step"].append(step)
        out["encode_speed"].append(codec.encode_speed(fidelity, coding))
        out["decode_speed"].append(codec.decode_speed(fidelity, coding))
        out["bytes_per_second"].append(
            codec.encoded_bytes_per_second(fidelity, coding, activity)
        )
    return out


def keyframe_series(
    consumer_sampling: Fraction = Fraction(1, 30),
    fidelity: Optional[Fidelity] = None,
    activity: float = 0.4,
    codec: CodecModel = DEFAULT_CODEC,
) -> Dict[str, List[float]]:
    """Figure 3b series: decode speed (sparse and dense) and size per GOP."""
    fidelity = fidelity or richest_fidelity()
    out: Dict[str, List[float]] = {
        "keyframe_interval": [], "decode_sparse": [], "decode_dense": [],
        "bytes_per_second": [],
    }
    for kf in KEYFRAME_INTERVALS:
        coding = Coding("slowest", kf)
        out["keyframe_interval"].append(kf)
        out["decode_sparse"].append(
            codec.decode_speed(fidelity, coding, consumer_sampling)
        )
        out["decode_dense"].append(
            codec.decode_speed(fidelity, coding, Fraction(1))
        )
        out["bytes_per_second"].append(
            codec.encoded_bytes_per_second(fidelity, coding, activity)
        )
    return out


def query_speed_series(
    config: Configuration,
    library: OperatorLibrary,
    query: QueryCascade,
    dataset: str,
    accuracies: Sequence[float] = (0.95, 0.9, 0.8, 0.7),
    duration: float = 3600.0,
    schemes: Optional[Dict[str, AlternativeScheme]] = None,
) -> Dict[str, List[float]]:
    """Figure 11a series: per-scheme query speed across target accuracies."""
    engine = QueryEngine(config, library, dataset)
    if schemes is None:
        schemes = {
            "VStore": vstore_scheme(config),
            "1->1": one_to_one_scheme(config),
            "1->N": one_to_n_scheme(config),
        }
    out: Dict[str, List[float]] = {"accuracy": list(accuracies)}
    for name, scheme in schemes.items():
        out[name] = [
            engine.estimate(query, acc, duration, scheme).speed
            for acc in accuracies
        ]
    return out


def erosion_series(plan: ErosionPlan) -> Dict[str, List[float]]:
    """Figure 13 series: overall speed and residual bytes by age."""
    ages = list(range(1, plan.lifespan_days + 1))
    out: Dict[str, List[float]] = {
        "age": ages,
        "overall_speed": [plan.overall_speed[a] for a in ages],
        "total_residual_bytes": [
            sum(plan.residual_bytes[(a, label)] for label in plan.labels)
            for a in ages
        ],
    }
    for label in plan.labels:
        out[f"residual:{label}"] = [
            plan.residual_bytes[(a, label)] for a in ages
        ]
    return out
