"""The concurrent multi-query executor: degenerate parity, contention,
policies, and shared-resource accounting."""

import pytest

from repro.clock import SimClock
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.errors import QueryError
from repro.operators.library import default_library
from repro.query.alternatives import one_to_one_scheme
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import (
    DeadlinePolicy,
    FIFOPolicy,
    FairSharePolicy,
    OperatorContextPool,
)
from repro.storage.disk import DiskBandwidthPool


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp("vstore")),
                library=lib) as s:
        s.configure()
        s.ingest("dashcam", n_segments=8)
        s.ingest("jackson", n_segments=8)
        s.ingest("jackson", n_segments=8, stream="cam01")
        yield s


class TestDegenerateParity:
    """execute is now the N=1 case of the concurrent path — and must be
    bit-identical to the original sequential loop."""

    @pytest.mark.parametrize("contexts", [1, 4])
    def test_execute_matches_sequential_reference(self, store, contexts):
        engine = store.engine("dashcam")
        new = engine.execute(QUERY_B, 0.9, store.segments, 0.0, 64.0,
                             contexts=contexts)
        ref = engine._execute_sequential(QUERY_B, 0.9, store.segments,
                                         0.0, 64.0, contexts=contexts)
        assert new.compute_seconds == ref.compute_seconds  # bit-identical
        assert new.speed == ref.speed
        assert new.positives_per_stage == ref.positives_per_stage
        assert new.segments_per_stage == ref.segments_per_stage

    def test_parity_under_alternative_scheme(self, store):
        engine = store.engine("jackson")
        scheme = one_to_one_scheme(store.configuration)
        new = engine.execute(QUERY_A, 0.8, store.segments, 0.0, 32.0,
                             scheme=scheme)
        ref = engine._execute_sequential(QUERY_A, 0.8, store.segments,
                                         0.0, 32.0, scheme=scheme)
        assert new.compute_seconds == ref.compute_seconds
        assert new.positives_per_stage == ref.positives_per_stage

    def test_executor_n1_matches_execute(self, store):
        engine = store.engine("dashcam")
        direct = engine.execute(QUERY_B, 0.9, store.segments, 0.0, 64.0)
        ex = store.executor()
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        outcome = ex.run()[0]
        assert outcome.result.compute_seconds == direct.compute_seconds
        assert outcome.slowdown == 1.0  # nothing to contend with
        assert outcome.waited_seconds == 0.0

    def test_clock_categories_cover_all_time(self, store):
        """Every simulated second is attributed to a charge category."""
        clock = SimClock()
        engine = store.engine("dashcam")
        engine.execute(QUERY_B, 0.9, store.segments, 0.0, 64.0, clock=clock)
        assert sum(clock.by_category.values()) == pytest.approx(clock.now)


class TestContention:
    def test_constrained_decoder_slows_queries_down(self, store):
        ex = store.executor(decoder_pool=DecoderPool(1))
        for _ in range(4):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        outcomes = ex.run()
        assert all(o.slowdown > 1.0 for o in outcomes)
        assert all(o.latency > o.service_seconds for o in outcomes)
        # the pool still parallelizes non-decoder work: the whole run is
        # faster than running the four queries back to back
        stats = ex.stats()
        assert stats.makespan < sum(o.service_seconds for o in outcomes)

    def test_uncontended_pools_do_not_slow_down(self, store):
        ex = store.executor()  # all pools unbounded
        for _ in range(4):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        outcomes = ex.run()
        assert all(o.slowdown == pytest.approx(1.0) for o in outcomes)

    def test_resource_accounting_conserved(self, store):
        ex = store.executor(decoder_pool=DecoderPool(2),
                            operator_pool=OperatorContextPool(2))
        for _ in range(3):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        outcomes = ex.run()
        stats = ex.stats()
        # busy seconds per resource equal the admitted plans' task durations
        for resource in ("disk", "decoder", "operators"):
            planned = sum(
                t.duration * t.units
                for o in outcomes
                for t in o.session.plan.tasks
                if t.resource == resource
            )
            assert stats.busy_seconds[resource] == pytest.approx(planned)
        util = stats.utilization("decoder")
        assert util is not None and 0.0 < util <= 1.0
        assert stats.utilization("disk") is None or stats.utilization("disk") <= 1.0

    def test_gang_contexts_clamped_to_pool(self, store):
        ex = store.executor(operator_pool=OperatorContextPool(2))
        session = ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0, contexts=8)
        assert session.contexts == 2
        consume_units = {t.units for t in session.plan.tasks
                        if t.kind == "consume"}
        assert consume_units == {2}

    def test_consume_units_never_exceed_stage_work(self, store):
        """A stage with fewer surviving segments than contexts cannot use
        the extra contexts; it must not gang-reserve them either."""
        ex = store.executor(operator_pool=OperatorContextPool(8))
        session = ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0, contexts=8)
        for stage in session.plan.stages:
            consume = stage.tasks[-1]
            assert consume.kind == "consume"
            assert consume.units == max(1, min(8, stage.touched))

    def test_multi_stream_fleet(self, store):
        """Queries over distinct streams contend only on shared hardware."""
        ex = store.executor(decoder_pool=DecoderPool(1),
                            disk_pool=DiskBandwidthPool(1))
        ex.admit(QUERY_A, "jackson", 0.8, 0.0, 32.0)
        ex.admit(QUERY_A, "jackson", 0.8, 0.0, 32.0, stream="cam01")
        a, b = ex.run()
        # aliased footage is the same content: identical isolated cost
        assert a.service_seconds == b.service_seconds
        assert a.result.positives_per_stage == b.result.positives_per_stage


class TestStreamAlias:
    def test_conflicting_dataset_for_stream_rejected(self, store):
        """One stream has one content model: re-ingesting an existing
        stream name with a different dataset must fail loudly instead of
        silently reusing the cached pipeline's content."""
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            store.ingest("dashcam", n_segments=1, stream="cam01")
        with pytest.raises(ConfigurationError):
            store.ingest("dashcam", n_segments=1, stream="jackson")

    def test_slash_in_stream_name_rejected(self, store):
        """Keys are '/'-structured: a '/' in a stream alias would leak it
        into other streams' prefix scans."""
        with pytest.raises(ValueError):
            store.ingest("dashcam", n_segments=1, stream="cam/front")

    def test_ingestion_report_for_aliased_stream(self, store):
        report = store.ingestion_report("jackson", stream="cam01")
        assert report.stream == "cam01"
        plain = store.ingestion_report("jackson")
        assert report.bytes_per_day == pytest.approx(plain.bytes_per_day)

    def test_alias_executes_identically_to_dataset_stream(self, store):
        engine = store.engine("jackson")
        direct = engine.execute(QUERY_A, 0.8, store.segments, 0.0, 32.0)
        aliased = engine.execute(QUERY_A, 0.8, store.segments, 0.0, 32.0,
                                 stream="cam01")
        assert aliased.compute_seconds == direct.compute_seconds
        assert aliased.positives_per_stage == direct.positives_per_stage


class TestPolicies:
    def test_fifo_finishes_identical_queries_in_admit_order(self, store):
        ex = store.executor(decoder_pool=DecoderPool(1), policy=FIFOPolicy())
        for _ in range(4):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        outcomes = ex.run()
        finishes = [o.session.finished_at for o in outcomes]
        assert finishes == sorted(finishes)

    def _last_light_latency(self, store, policy):
        ex = store.executor(decoder_pool=DecoderPool(1), policy=policy)
        for _ in range(3):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        light = ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0)
        outcomes = ex.run()
        return next(o for o in outcomes if o.session is light).latency

    def test_fair_share_protects_the_light_query(self, store):
        fifo = self._last_light_latency(store, FIFOPolicy())
        fair = self._last_light_latency(store, FairSharePolicy())
        assert fair <= fifo

    def test_deadline_policy_prioritizes_dated_query(self, store):
        def run(policy):
            ex = store.executor(decoder_pool=DecoderPool(1), policy=policy)
            for _ in range(3):
                ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
            dated = ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 32.0,
                             deadline=2.0)
            outcomes = ex.run()
            return next(o for o in outcomes if o.session is dated)

        fifo = run(FIFOPolicy())
        edf = run(DeadlinePolicy())
        assert edf.latency < fifo.latency
        assert edf.deadline_met is not None

    def test_deadline_outcome_reported(self, store):
        ex = store.executor()
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0, deadline=1e9)
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0)
        met, undated = ex.run()
        assert met.deadline_met is True
        assert undated.deadline_met is None


class TestAdmissionErrors:
    def test_empty_range_rejected_at_admit(self, store):
        ex = store.executor()
        with pytest.raises(QueryError):
            ex.admit(QUERY_B, "dashcam", 0.9, 8.0, 8.0)

    def test_admit_after_run_rejected(self, store):
        ex = store.executor()
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0)
        ex.run()
        with pytest.raises(QueryError):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0)
        with pytest.raises(QueryError):
            ex.run()

    def test_invalid_contexts_rejected(self, store):
        ex = store.executor()
        with pytest.raises(QueryError):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0, contexts=0)


class TestFacade:
    def test_execute_many_round_trip(self, store):
        outcomes = store.execute_many(
            [
                dict(query="B", dataset="dashcam", accuracy=0.9,
                     t0=0.0, t1=32.0),
                dict(query="A", dataset="jackson", accuracy=0.8,
                     t0=0.0, t1=32.0, stream="cam01"),
            ],
            decoder_pool=DecoderPool(1),
        )
        assert len(outcomes) == 2
        assert outcomes[0].session.dataset == "dashcam"
        assert outcomes[1].session.stream == "cam01"
        assert all(o.latency > 0 for o in outcomes)

    def test_executor_requires_workdir(self):
        lib = default_library(names=("Motion", "License", "OCR"))
        store = VStore(library=lib)
        store.configure()
        with pytest.raises(QueryError):
            store.executor()


class TestReports:
    def test_concurrency_report_and_table(self, store):
        from repro.analysis import (
            concurrency_report,
            format_concurrency_table,
            jain_index,
        )

        ex = store.executor(decoder_pool=DecoderPool(1))
        for _ in range(3):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 32.0)
        outcomes = ex.run()
        report = concurrency_report(outcomes, ex.stats())
        assert report.n_queries == 3
        assert len(report.rows) == 3
        assert report.mean_slowdown >= 1.0
        assert report.max_latency == max(r.latency for r in report.rows)
        assert 1.0 / 3 <= report.fairness <= 1.0
        assert report.makespan == pytest.approx(
            max(o.session.finished_at for o in outcomes)
        )
        text = format_concurrency_table(report)
        assert "fairness (Jain)" in text
        assert "q0:B@dashcam" in text

        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3)
        assert jain_index([]) == 1.0


class TestTraceOptIn:
    """Per-event trace recording is opt-in past TRACE_AUTO_QUERIES.

    ``stats().events`` must stay honest either way — the counter always
    runs; only the per-event dict allocation is skipped."""

    def _run(self, store, n, **kwargs):
        ex = store.executor(**kwargs)
        for _ in range(n):
            ex.admit(QUERY_A, "jackson", 0.9, 0.0, 8.0)
        ex.run()
        return ex

    def test_small_fleet_traces_by_default(self, store):
        ex = self._run(store, 2)
        assert ex.trace_events
        assert len(ex.trace_events) == ex.stats().events

    def test_forced_off_keeps_event_count(self, store):
        traced = self._run(store, 2)
        silent = self._run(store, 2, trace=False)
        assert silent.trace_events == []
        assert silent.stats().events == traced.stats().events > 0

    def test_auto_threshold_is_inclusive(self, store):
        from repro.query.scheduler import TRACE_AUTO_QUERIES

        at = self._run(store, TRACE_AUTO_QUERIES)
        assert at.trace_events  # 64 queries still trace by default
        over = self._run(store, TRACE_AUTO_QUERIES + 1)
        assert over.trace_events == []
        assert over.stats().events > at.stats().events

    def test_forced_on_overrides_threshold(self, store):
        from repro.query.scheduler import TRACE_AUTO_QUERIES

        ex = self._run(store, TRACE_AUTO_QUERIES + 1, trace=True)
        assert len(ex.trace_events) == ex.stats().events

    def test_cli_flag_parses_three_ways(self):
        from repro.cli import build_parser

        parser = build_parser()
        base = ["execute", "A", "--workdir", "w"]
        assert parser.parse_args(base).trace is None
        assert parser.parse_args(base + ["--trace"]).trace is True
        assert parser.parse_args(base + ["--no-trace"]).trace is False
