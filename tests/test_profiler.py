"""Operator and coding profilers: memoization and accounting."""

import pytest

from repro.clock import SimClock
from repro.operators.library import default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler, select_profile_clip
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity, richest_fidelity
from repro.video.format import StorageFormat


def test_profile_measures_accuracy_and_speed(jackson_profiler):
    p = jackson_profiler.profile("NN", richest_fidelity())
    assert p.accuracy == pytest.approx(1.0, abs=1e-6)
    assert p.consumption_speed > 0
    assert p.consumption_cost == pytest.approx(1.0 / p.consumption_speed)


def test_memoization_avoids_repeated_runs():
    lib = default_library(names=("Diff",))
    prof = OperatorProfiler(lib, "tucson")
    fid = Fidelity.parse("good-200p-1/6-100%")
    first = prof.profile("Diff", fid)
    runs = prof.stats.runs
    second = prof.profile("Diff", fid)
    assert second is first
    assert prof.stats.runs == runs
    assert prof.stats.memo_hits == 1


def test_profiling_charges_simulated_time():
    lib = default_library(names=("License",))
    clock = SimClock()
    prof = OperatorProfiler(lib, "dashcam", clock=clock)
    prof.profile("License", richest_fidelity())
    assert clock.spent("profiling") > 0
    assert prof.stats.seconds == pytest.approx(clock.spent("profiling"))
    assert prof.stats.runs_by_operator["License"] == 1


def test_slow_operators_dominate_profiling_time():
    """Figure 14: License contributes most of the profiling delay."""
    lib = default_library(names=("Diff", "License"))
    prof = OperatorProfiler(lib, "dashcam")
    fid = richest_fidelity()
    prof.profile("Diff", fid)
    prof.profile("License", fid)
    t = prof.stats.seconds_by_operator
    assert t["License"] > 3 * t["Diff"]


def test_reset_and_clear(jackson_profiler):
    lib = default_library(names=("Diff",))
    prof = OperatorProfiler(lib, "tucson")
    fid = richest_fidelity()
    prof.profile("Diff", fid)
    prof.reset_stats()
    assert prof.stats.runs == 0
    prof.clear_memo()
    prof.profile("Diff", fid)
    assert prof.stats.runs == 1


def test_select_profile_clip_has_content():
    for dataset in ("jackson", "miami", "tucson", "dashcam", "park", "airport"):
        clip = select_profile_clip(dataset)
        assert len(clip.tracks) >= 2
        assert any(t.plate for t in clip.tracks)


def test_coding_profiler_memoizes():
    prof = CodingProfiler(activity=0.4)
    fmt = StorageFormat(Fidelity.parse("good-540p-1/6-100%"), Coding("med", 50))
    a = prof.profile(fmt)
    assert prof.stats.runs == 1
    b = prof.profile(fmt)
    assert b is a
    assert prof.stats.memo_hits == 1


def test_coding_profile_values():
    prof = CodingProfiler(activity=0.4)
    fmt = StorageFormat(richest_fidelity(), Coding("slowest", 250))
    p = prof.profile(fmt)
    assert p.bytes_per_second > 0
    assert p.ingest_cost > 0
    assert p.base_retrieval_speed > 1


def test_coding_profiler_raw_format():
    prof = CodingProfiler(activity=0.4)
    fmt = StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW)
    p = prof.profile(fmt)
    assert p.bytes_per_second == 200 * 200 * 1.5 * 30
    assert p.ingest_cost < 0.01


def test_retrieval_speed_accounts_profiling():
    from fractions import Fraction
    prof = CodingProfiler(activity=0.4)
    fmt = StorageFormat(Fidelity.parse("best-540p-1-100%"), Coding("fast", 10))
    sparse = prof.retrieval_speed(fmt, Fraction(1, 30))
    dense = prof.retrieval_speed(fmt, Fraction(1))
    assert sparse > dense  # chunk skipping
    assert prof.stats.runs == 1  # one unique format profiled
