"""Shard scaling sweep: 1-8 disk shards x 1-16 concurrent queries.

The seed modeled the paper's HDD array as one aggregate disk, so every
concurrent retrieval serialized through a single bandwidth meter.  This
sweep measures what sharding buys: the same retrieval-bound fleet (query A
over raw jackson footage, one I/O channel per shard) runs against arrays
of 1, 2, 4 and 8 shards, where each shard models a *single HDD spindle*
(~125 MB/s sequential) — so the shard count is the amount of independent
hardware, exactly the scaling knob the paper's multi-disk platform offers.

The acceptance bar: 8 shards must cut the 16-query retrieval-bound
makespan by at least 3x over a single spindle.
"""

import pytest

from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A
from repro.query.scheduler import FIFOPolicy
from repro.storage.disk import DiskBandwidthPool
from repro.units import GB

SHARD_COUNTS = (1, 2, 4, 8)
N_QUERIES = (1, 4, 16)
N_STREAMS = 8
SEGMENTS_PER_STREAM = 8
QUERY_SPAN = 64.0

#: One HDD spindle: the paper's ~1 GB/s array divided by its disk count.
SPINDLE_READ_BW = 0.125 * GB
SPINDLE_WRITE_BW = 0.1 * GB


@pytest.fixture(scope="module")
def shard_stores(tmp_path_factory):
    """The same fleet ingested once per shard count, on spindle-grade disks."""
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    stores = {}
    for shards in SHARD_COUNTS:
        store = VStore(
            workdir=str(tmp_path_factory.mktemp(f"shards{shards}")),
            library=library, shards=shards,
        )
        for disk in store.disk_array.disks:
            disk.read_bandwidth = SPINDLE_READ_BW
            disk.write_bandwidth = SPINDLE_WRITE_BW
        store.configure()
        for i in range(N_STREAMS):
            store.ingest("jackson", n_segments=SEGMENTS_PER_STREAM,
                         stream=f"cam{i:02d}")
        stores[shards] = store
    yield stores
    for store in stores.values():
        store.close()


def _run(store, n_queries):
    executor = store.executor(
        policy=FIFOPolicy(),
        disk_pool=DiskBandwidthPool(1),  # one I/O channel per shard
    )
    for i in range(n_queries):
        executor.admit(QUERY_A, "jackson", 0.9, 0.0, QUERY_SPAN,
                       stream=f"cam{i % N_STREAMS:02d}")
    executor.run()
    return executor.stats()


def test_shard_scaling_sweep(benchmark, record, shard_stores):
    makespans = {}
    for shards, store in shard_stores.items():
        for n in N_QUERIES:
            makespans[(shards, n)] = _run(store, n).makespan
    # time the heaviest cell for the perf trajectory
    benchmark.pedantic(
        lambda: _run(shard_stores[max(SHARD_COUNTS)], max(N_QUERIES)),
        rounds=1, iterations=1,
    )

    lines = [f"{'shards':>7} {'queries':>8} {'makespan':>9} "
             f"{'speedup':>8}"]
    for (shards, n), makespan in sorted(makespans.items()):
        speedup = makespans[(1, n)] / makespan
        lines.append(f"{shards:>7} {n:>8} {makespan:>8.3f}s "
                     f"{speedup:>7.2f}x")
    record("Sharded storage — shard scaling sweep "
           "(spindle-grade shards, retrieval-bound query A fleet)",
           "\n".join(lines))

    # More shards never hurt, at any concurrency level.
    for n in N_QUERIES:
        series = [makespans[(s, n)] for s in SHARD_COUNTS]
        assert series == sorted(series, reverse=True)
    # The acceptance cell: 8 shards x 16 retrieval-bound queries must run
    # at least 3x faster than the same fleet on one spindle.
    assert makespans[(1, 16)] / makespans[(8, 16)] >= 3.0


def test_placement_spreads_the_fleet(record, shard_stores):
    """Hash placement keeps the 8-shard array near-balanced, and the run's
    per-shard report shows real parallel retrieval."""
    from repro.analysis import format_sharding_table, sharding_report

    store = shard_stores[max(SHARD_COUNTS)]
    stats = _run(store, max(N_QUERIES))
    report = sharding_report(store.segments, stats)
    record("Sharded storage — per-shard utilization (8 shards, 16 queries)",
           format_sharding_table(report))
    assert report.imbalance_ratio < 1.5
    assert report.retrieval_speedup is not None
    assert report.retrieval_speedup >= 3.0
