"""Age tracking and erosion execution."""

import pytest

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.lifespan import (
    AgeTracker,
    apply_erosion_step,
    erosion_rank,
    segment_age_days,
)
from repro.storage.segment_store import SegmentStore
from repro.units import DAY
from repro.video.coding import Coding
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

FMT = StorageFormat(Fidelity.parse("bad-100p-1/30-50%"), Coding("fastest", 5))


def test_erosion_rank_stable_and_uniformish():
    ranks = [erosion_rank(i) for i in range(2000)]
    assert ranks == [erosion_rank(i) for i in range(2000)]
    assert all(0.0 <= r < 1.0 for r in ranks)
    # Roughly uniform: about half below 0.5.
    below = sum(r < 0.5 for r in ranks)
    assert 800 < below < 1200


def test_erosion_rank_monotone_deletion_sets():
    # A segment deleted at fraction p stays deleted at any p' > p.
    for i in range(100):
        if erosion_rank(i) < 0.3:
            assert erosion_rank(i) < 0.7


def test_segment_age_days():
    # A segment that just finished is age 1 (youngest).
    assert segment_age_days(0, 8.0) == 1
    assert segment_age_days(0, DAY + 8.0) == 2
    assert segment_age_days(10, 10 * 8.0 + 8.0) == 1


def test_age_tracker_groups():
    tracker = AgeTracker(now_seconds=2 * DAY)
    ages = tracker.ages(range(int(2 * DAY / 8)))
    assert set(ages) == {1, 2}
    assert sum(len(v) for v in ages.values()) == int(2 * DAY / 8)


@pytest.fixture()
def store(tmp_path):
    kv = KVStore(str(tmp_path / "seg.log"))
    yield SegmentStore(kv, DiskModel(clock=SimClock()))
    kv.close()


def _fill(store, n):
    enc = Encoder(clock=SimClock())
    for i in range(n):
        store.put(enc.encode(Segment("cam", i), FMT, 0.2))


def test_apply_erosion_deletes_fraction(store):
    _fill(store, 200)
    now = 200 * 8.0  # all segments are age 1
    deleted = apply_erosion_step(
        store, "cam", {(1, FMT): 0.5}, now, lifespan_days=10
    )
    assert 70 <= deleted <= 130  # about half
    assert store.segment_count("cam", FMT) == 200 - deleted


def test_apply_erosion_cumulative(store):
    _fill(store, 200)
    now = 200 * 8.0
    first = apply_erosion_step(store, "cam", {(1, FMT): 0.3}, now, 10)
    second = apply_erosion_step(store, "cam", {(1, FMT): 0.3}, now, 10)
    assert second == 0  # same fraction: nothing new to delete
    third = apply_erosion_step(store, "cam", {(1, FMT): 0.6}, now, 10)
    assert third > 0
    assert store.segment_count("cam", FMT) == 200 - first - third


def test_lifespan_expiry_overrides_plan(store):
    _fill(store, 10)
    # Move "now" so far that all segments are past a 1-day lifespan.
    deleted = apply_erosion_step(store, "cam", {}, 3 * DAY, lifespan_days=1)
    assert deleted == 10
    assert store.segment_count("cam", FMT) == 0


def test_zero_fraction_deletes_nothing(store):
    _fill(store, 50)
    deleted = apply_erosion_step(store, "cam", {(1, FMT): 0.0}, 50 * 8.0, 10)
    assert deleted == 0
