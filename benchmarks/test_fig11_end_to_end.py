"""Figure 11: end-to-end comparison of VStore against 1->1, 1->N, N->N.

(a) query speed vs target accuracy on all six videos (Query A on
    jackson/miami/tucson, Query B on dashcam/park/airport);
(b) storage cost per stream (GB/day);
(c) ingestion cost per stream (transcode CPU).
"""

import pytest

from repro.analysis.tables import format_query_speed_table
from repro.clock import SimClock
from repro.ingest.pipeline import IngestionPipeline
from repro.profiler.coding_profiler import CodingProfiler
from repro.query.alternatives import (
    n_to_n_scheme,
    one_to_n_scheme,
    one_to_one_scheme,
    vstore_scheme,
)
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.engine import QueryEngine
from repro.video.datasets import QUERY_A_DATASETS, QUERY_B_DATASETS

ACCURACIES = (0.95, 0.9, 0.8, 0.7)


@pytest.fixture(scope="module")
def schemes(configuration):
    return {
        "VStore": vstore_scheme(configuration),
        "1->1": one_to_one_scheme(configuration),
        "1->N": one_to_n_scheme(configuration),
        "N->N": n_to_n_scheme(configuration, CodingProfiler(activity=0.35)),
    }


def test_fig11a_query_speed(benchmark, record, configuration, library,
                            schemes):
    def sweep():
        rows = []
        for query, datasets in ((QUERY_A, QUERY_A_DATASETS),
                                (QUERY_B, QUERY_B_DATASETS)):
            for dataset in datasets:
                engine = QueryEngine(configuration, library, dataset)
                for accuracy in ACCURACIES:
                    for name in ("VStore", "1->1", "1->N"):
                        report = engine.estimate(query, accuracy, 3600.0,
                                                 schemes[name])
                        rows.append({
                            "dataset": dataset, "accuracy": accuracy,
                            "scheme": name, "speed": report.speed,
                        })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("Figure 11a — query speed", format_query_speed_table(rows))

    by = {(r["dataset"], r["accuracy"], r["scheme"]): r["speed"]
          for r in rows}
    top_speed = max(r["speed"] for r in rows if r["scheme"] == "VStore")
    assert top_speed > 100  # the paper's headline is 362x realtime

    for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
        # VStore >= 1->N everywhere; the gap grows at low accuracies
        # (paper: 3x-16x) because 1->N caps at golden decode speed.
        for accuracy in ACCURACIES:
            assert (by[(dataset, accuracy, "VStore")]
                    >= by[(dataset, accuracy, "1->N")] * 0.999)
        assert (by[(dataset, 0.7, "VStore")]
                > 1.5 * by[(dataset, 0.7, "1->N")])
        # Orders of magnitude over the fixed 1->1 operating point.
        assert (by[(dataset, 0.7, "VStore")]
                > 10 * by[(dataset, 0.7, "1->1")])
        # Accuracy scaling: dropping 0.95 -> 0.70 accelerates severalfold.
        assert (by[(dataset, 0.7, "VStore")]
                > 3 * by[(dataset, 0.95, "VStore")])


def test_fig11b_storage_cost(benchmark, record, schemes):
    def sweep():
        rows = {}
        for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
            for name in ("VStore", "1->1", "N->N"):
                report = IngestionPipeline(
                    dataset, schemes[name].storage_formats, clock=SimClock()
                ).report()
                rows[(dataset, name)] = report.bytes_per_day
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'stream':>9} {'VStore':>10} {'1->1':>10} {'N->N':>10} (GB/day)"]
    for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
        lines.append(
            f"{dataset:>9} "
            + " ".join(f"{rows[(dataset, n)] / 2**30:>10.1f}"
                       for n in ("VStore", "1->1", "N->N"))
        )
    record("Figure 11b — storage cost", "\n".join(lines))

    for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
        # N->N (no coalescing) costs the most; 1->1 (golden only) the least.
        assert rows[(dataset, "N->N")] > rows[(dataset, "VStore")]
        assert rows[(dataset, "1->1")] < rows[(dataset, "VStore")]
    # dashcam's motion makes it the costliest stream under every scheme.
    for name in ("VStore", "1->1", "N->N"):
        others = [rows[(d, name)] for d in ("jackson", "park", "airport")]
        assert rows[("dashcam", name)] > max(others)


def test_fig11c_ingest_cost(benchmark, record, schemes):
    def sweep():
        rows = {}
        for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
            for name in ("VStore", "1->1", "N->N"):
                report = IngestionPipeline(
                    dataset, schemes[name].storage_formats, clock=SimClock()
                ).report()
                rows[(dataset, name)] = report.cpu_utilization_percent
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'stream':>9} {'VStore':>9} {'1->1':>9} {'N->N':>9} (CPU %)"]
    for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
        lines.append(
            f"{dataset:>9} "
            + " ".join(f"{rows[(dataset, n)]:>9.0f}"
                       for n in ("VStore", "1->1", "N->N"))
        )
    record("Figure 11c — ingestion cost", "\n".join(lines))

    for dataset in QUERY_A_DATASETS + QUERY_B_DATASETS:
        # Coalescing cuts transcode CPU below N->N (paper: 30-50% lower);
        # the single-format 1->1 is cheapest.
        assert rows[(dataset, "VStore")] < rows[(dataset, "N->N")]
        assert rows[(dataset, "1->1")] <= rows[(dataset, "VStore")]
