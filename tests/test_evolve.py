"""Adapting to operator and hardware changes (Section 7)."""

import pytest

from repro.core.config import derive_configuration
from repro.core.evolve import (
    add_operators,
    reprofile_for_hardware,
    subscribe_to_existing,
)
from repro.errors import ConfigurationError
from repro.operators.library import Consumer, default_library
from repro.retrieval.speed import retrieval_speed


@pytest.fixture(scope="module")
def base_config():
    library = default_library(names=("Motion", "License", "OCR"))
    return derive_configuration(library)


@pytest.fixture(scope="module")
def grown_library():
    return default_library(names=("Motion", "License", "OCR", "Opflow",
                                  "Contour"))


class TestAddOperators:
    def test_new_consumers_get_decisions(self, base_config, grown_library):
        new = [Consumer("Opflow", 0.9), Consumer("Contour", 0.8)]
        evolved = add_operators(base_config, grown_library, new)
        for consumer in new:
            decision = evolved.forthcoming.decision_for(consumer)
            assert decision.accuracy >= consumer.accuracy

    def test_legacy_subscriptions_satisfy_fidelity(self, base_config,
                                                   grown_library):
        """R1 on existing footage: the legacy SF is richer than the new CF;
        the golden format guarantees a candidate always exists."""
        new = [Consumer("Opflow", 0.9), Consumer("Contour", 0.8)]
        evolved = add_operators(base_config, grown_library, new)
        assert len(evolved.legacy) == 2
        for sub in evolved.legacy:
            assert sub.storage in base_config.plan.formats
            assert sub.storage.fidelity.richer_equal(sub.decision.fidelity)
            assert sub.effective_speed <= sub.decision.consumption_speed

    def test_legacy_speed_may_be_suboptimal(self, base_config, grown_library):
        """Section 7: on existing videos operators run with designated
        accuracies, 'albeit slower than optimal'."""
        new = [Consumer("Contour", 0.7)]  # a fast consumer
        evolved = add_operators(base_config, grown_library, new)
        sub = evolved.legacy[0]
        if not sub.optimal:
            assert (sub.effective_speed
                    < sub.decision.consumption_speed)

    def test_existing_consumers_preserved(self, base_config, grown_library):
        new = [Consumer("Opflow", 0.9)]
        evolved = add_operators(base_config, grown_library, new)
        assert set(base_config.consumers).issubset(
            set(evolved.forthcoming.consumers)
        )

    def test_duplicate_addition_rejected(self, base_config, grown_library):
        with pytest.raises(ConfigurationError):
            add_operators(base_config, grown_library,
                          [Consumer("Motion", 0.9)])  # already configured

    def test_unknown_profile_dataset_rejected(self, base_config,
                                              grown_library):
        with pytest.raises(ConfigurationError):
            add_operators(base_config, grown_library,
                          [Consumer("Opflow", 0.9)],
                          profile_datasets={"Motion": "dashcam"})


class TestSubscribeToExisting:
    def test_picks_fastest_satisfiable(self, base_config):
        decision = base_config.decisions[0]
        sub = subscribe_to_existing(decision, base_config.plan.formats)
        for sf in base_config.plan.formats:
            if sf.fidelity.richer_equal(decision.fidelity):
                assert (retrieval_speed(sub.storage.fmt,
                                        decision.fidelity.sampling)
                        >= retrieval_speed(sf.fmt,
                                           decision.fidelity.sampling))


class TestHardwareChange:
    def test_faster_hardware_never_slows_consumers(self, base_config):
        library = default_library(names=("Motion", "License", "OCR"))
        faster = reprofile_for_hardware(library, base_config, speedup=4.0)
        for consumer in base_config.consumers:
            old = base_config.decision_for(consumer).consumption_speed
            new = faster.decision_for(consumer).consumption_speed
            assert new >= old * 0.999

    def test_cost_model_restored_after_reprofiling(self, base_config):
        library = default_library(names=("Motion", "License", "OCR"))
        before = {op.name: op.cost_base for op in library}
        reprofile_for_hardware(library, base_config, speedup=2.0)
        after = {op.name: op.cost_base for op in library}
        assert before == pytest.approx(after)

    def test_invalid_speedup(self, base_config):
        library = default_library(names=("Motion",))
        with pytest.raises(ConfigurationError):
            reprofile_for_hardware(library, base_config, speedup=0.0)
