"""Encoder and decoder instances: cost charging, segment records."""

from fractions import Fraction

import pytest

from repro.clock import SimClock
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.errors import CodecError
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment


def _fmt(fid, coding):
    return StorageFormat(Fidelity.parse(fid), coding)


@pytest.fixture()
def clock():
    return SimClock()


def test_encode_charges_ingest_time(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("best-720p-1-100%", Coding("slowest", 250))
    enc.encode(Segment("s", 0), fmt, activity=0.35)
    expected = enc.model.encode_seconds_per_video_second(
        fmt.fidelity, fmt.coding) * 8.0
    assert clock.spent("ingest") == pytest.approx(expected)


def test_encoded_segment_record(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("good-540p-1/6-100%", Coding("fast", 10))
    out = enc.encode(Segment("cam", 5), fmt, activity=0.5)
    assert out.segment.index == 5
    assert out.fmt == fmt
    assert out.n_frames == int(5 * 8)  # 1/6 of 30 fps over 8 seconds
    assert out.size_bytes > 0
    assert out.payload is None
    assert out.key.startswith("cam/")


def test_materialized_payload_matches_size(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("bad-100p-1/30-50%", Coding("fastest", 5))
    out = enc.encode(Segment("cam", 0), fmt, activity=0.2, materialize=True)
    assert out.payload is not None
    assert len(out.payload) == max(1, out.size_bytes)


def test_materialized_payload_deterministic(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("bad-100p-1/30-50%", Coding("fastest", 5))
    a = enc.encode(Segment("cam", 0), fmt, 0.2, materialize=True)
    b = enc.encode(Segment("cam", 0), fmt, 0.2, materialize=True)
    assert a.payload == b.payload


def test_encoder_counters(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("good-540p-1-100%", Coding("med", 50))
    enc.encode(Segment("s", 0), fmt, 0.3)
    enc.encode(Segment("s", 1), fmt, 0.3)
    assert enc.segments_encoded == 2
    assert enc.bytes_produced > 0


def test_decode_charges_decode_time(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("best-720p-1-100%", Coding("slowest", 250))
    encoded = enc.encode(Segment("s", 0), fmt, 0.35)
    dec = Decoder(clock=clock)
    before = clock.spent("decode")
    out = dec.decode(encoded, Fidelity.parse("good-540p-1-100%"))
    assert clock.spent("decode") > before
    assert out.n_frames == encoded.n_frames  # same sampling: all frames
    assert out.n_decoded == encoded.n_frames


def test_decode_with_chunk_skip(clock):
    enc = Encoder(clock=clock)
    fmt = _fmt("best-720p-1-100%", Coding("fast", 10))
    encoded = enc.encode(Segment("s", 0), fmt, 0.35)
    dec = Decoder(clock=clock)
    sparse = Fidelity.parse("good-540p-1/30-100%")
    out = dec.decode(encoded, sparse)
    assert out.n_frames == 8  # one frame per second over 8 s
    assert out.n_decoded < encoded.n_frames  # chunks were skipped
    assert out.n_decoded >= out.n_frames


def test_decode_rejects_raw(clock):
    enc = Encoder(clock=clock)
    encoded = enc.encode(Segment("s", 0), _fmt("best-200p-1-100%", RAW), 0.35)
    with pytest.raises(CodecError):
        Decoder(clock=clock).decode(encoded, Fidelity.parse("best-200p-1-100%"))


def test_decode_rejects_poorer_store(clock):
    enc = Encoder(clock=clock)
    encoded = enc.encode(
        Segment("s", 0), _fmt("good-200p-1/6-100%", Coding("med", 50)), 0.35
    )
    with pytest.raises(CodecError):
        Decoder(clock=clock).decode(encoded, Fidelity.parse("best-540p-1/6-100%"))
