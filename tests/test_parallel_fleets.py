"""Multi-core fleet execution: determinism, isolation rules, merging.

The parallel path's contract is that forking changes *nothing* about the
simulated results — ``parallel=N`` must produce reports bit-equal to the
in-process ``parallel=1`` run, fleet by fleet.  These tests pin that,
plus the refusal of cross-fleet state (shared cache, shared clock), the
worker-failure propagation, and the report-merging arithmetic.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.concurrency import ConcurrencyReport
from repro.core.store import VStore
from repro.errors import QueryError
from repro.operators.library import default_library
from repro.query.parallel import merge_reports, run_fleets


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp("vstore")),
                library=lib) as s:
        s.configure()
        s.ingest("dashcam", n_segments=8)
        s.ingest("jackson", n_segments=8)
        yield s


FLEETS = [
    [dict(query="A", dataset="jackson", accuracy=0.9, t0=0.0, t1=16.0),
     dict(query="B", dataset="dashcam", accuracy=0.9, t0=0.0, t1=16.0)],
    [dict(query="B", dataset="jackson", accuracy=0.8, t0=0.0, t1=16.0)],
    [dict(query="A", dataset="dashcam", accuracy=0.9, t0=8.0, t1=24.0),
     dict(query="A", dataset="jackson", accuracy=0.9, t0=0.0, t1=16.0)],
    [dict(query="B", dataset="dashcam", accuracy=0.8, t0=0.0, t1=32.0)],
]


def _no_wall(report):
    # wall_seconds is real (host) time — the one field allowed to differ
    # between a serial and a forked run of the same fleet.
    return dataclasses.replace(report, wall_seconds=0.0)


class TestDeterminism:
    def test_parallel_reports_bit_equal_to_serial(self, store):
        serial = store.execute_many(FLEETS, parallel=1)
        forked = store.execute_many(FLEETS, parallel=2)
        assert len(serial) == len(forked) == len(FLEETS)
        for s, f in zip(serial, forked):
            assert _no_wall(s) == _no_wall(f)

    def test_more_workers_than_fleets(self, store):
        # Workers are capped at the fleet count; order is preserved.
        serial = store.execute_many(FLEETS[:2], parallel=1)
        forked = store.execute_many(FLEETS[:2], parallel=16)
        for s, f in zip(serial, forked):
            assert _no_wall(s) == _no_wall(f)

    def test_executor_kwargs_reach_the_workers(self, store):
        reports = store.execute_many(FLEETS[:2], parallel=2,
                                     core="reference")
        assert all(r.core == "reference" for r in reports)

    def test_store_survives_the_forks(self, store):
        # The parent's backing log must stay usable after flush + forks.
        store.execute_many(FLEETS[:2], parallel=2)
        outcome = store.execute_many(
            [dict(query="A", dataset="jackson", accuracy=0.9,
                  t0=0.0, t1=8.0)]
        )
        assert outcome[0].result.speed > 0


class TestIsolationRules:
    def test_refuses_zero_workers(self, store):
        with pytest.raises(QueryError, match="at least one worker"):
            store.execute_many(FLEETS, parallel=0)

    def test_refuses_shared_cache(self, store):
        with pytest.raises(QueryError, match="cache"):
            store.execute_many(FLEETS, parallel=2, cache=object())

    def test_refuses_shared_clock(self, store):
        with pytest.raises(QueryError, match="clock"):
            store.execute_many(FLEETS, parallel=2, clock=object())

    def test_worker_failure_propagates(self, store):
        bad = [
            [dict(query="A", dataset="jackson", accuracy=0.9,
                  t0=0.0, t1=16.0)],
            [dict(query="A", dataset="no-such-dataset", accuracy=0.9,
                  t0=0.0, t1=16.0)],
        ]
        with pytest.raises(QueryError, match="fleet workers failed"):
            run_fleets(store, bad, parallel=2)


class TestMergeReports:
    def _report(self, makespan, util, events=10, wall=1.0, core="heap",
                n_queries=1):
        return ConcurrencyReport(
            policy="fifo", n_queries=n_queries, makespan=makespan,
            rows=(), utilization=util, core=core, events=events,
            wall_seconds=wall,
        )

    def test_sums_and_maxima(self):
        merged = merge_reports([
            self._report(2.0, {}, events=10, wall=1.0, n_queries=3),
            self._report(5.0, {}, events=20, wall=2.0, n_queries=4),
        ])
        assert merged.n_queries == 7
        assert merged.events == 30
        assert merged.makespan == 5.0  # fleets are concurrent: slowest wins
        assert merged.wall_seconds == 3.0  # default: serial-equivalent sum

    def test_wall_override_for_measured_elapsed(self):
        merged = merge_reports(
            [self._report(1.0, {}), self._report(1.0, {})],
            wall_seconds=0.5,
        )
        assert merged.wall_seconds == 0.5
        assert merged.events_per_second == 20 / 0.5

    def test_utilization_weighted_by_makespan(self):
        merged = merge_reports([
            self._report(1.0, {"disk": 0.5}),
            self._report(3.0, {"disk": 1.0}),
        ])
        # total busy over total simulated time: (0.5*1 + 1.0*3) / 4
        assert merged.utilization["disk"] == pytest.approx(0.875)

    def test_unbounded_pool_stays_unbounded(self):
        merged = merge_reports([
            self._report(1.0, {"decoder": None}),
            self._report(1.0, {"decoder": 0.25}),
        ])
        assert merged.utilization["decoder"] is None

    def test_core_label_mixed_when_fleets_disagree(self):
        same = merge_reports([self._report(1.0, {}, core="fastpath"),
                              self._report(1.0, {}, core="fastpath")])
        assert same.core == "fastpath"
        mixed = merge_reports([self._report(1.0, {}, core="fastpath"),
                               self._report(1.0, {}, core="heap")])
        assert mixed.core == "mixed"

    def test_refuses_empty(self):
        with pytest.raises(ValueError, match="no reports"):
            merge_reports([])


class TestForkSafety:
    def test_reopen_after_fork_in_process(self, store):
        # Callable without an actual fork: flush, drop the inherited
        # handle, reopen — the store must stay fully readable.
        store.flush()
        store.reopen_after_fork()
        outcome = store.execute_many(
            [dict(query="B", dataset="dashcam", accuracy=0.9,
                  t0=0.0, t1=8.0)]
        )
        assert outcome[0].result.speed > 0
