"""The LMDB-stand-in key-value store: durability, tombstones, compaction."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.kvstore import KVStore


@pytest.fixture()
def store(tmp_path):
    with KVStore(str(tmp_path / "kv.log")) as kv:
        yield kv


def test_put_get_roundtrip(store):
    store.put("a", b"hello")
    assert store.get("a") == b"hello"


def test_get_missing_raises(store):
    with pytest.raises(StorageError):
        store.get("nope")
    assert store.get_optional("nope") is None


def test_overwrite_returns_latest(store):
    store.put("k", b"v1")
    store.put("k", b"v2")
    assert store.get("k") == b"v2"
    assert len(store) == 1


def test_delete_and_tombstone(store):
    store.put("k", b"v")
    assert store.delete("k")
    assert "k" not in store
    assert not store.delete("k")  # second delete is a no-op
    with pytest.raises(StorageError):
        store.get("k")


def test_mb_size_values(store):
    blob = os.urandom(2 * 1024 * 1024)
    store.put("segment", blob)
    assert store.get("segment") == blob
    assert store.value_len("segment") == len(blob)


def test_keys_prefix_scan(store):
    for k in ("cam1/0", "cam1/1", "cam2/0"):
        store.put(k, b"x")
    assert list(store.keys("cam1/")) == ["cam1/0", "cam1/1"]
    assert list(store.keys()) == ["cam1/0", "cam1/1", "cam2/0"]


def test_persistence_across_reopen(tmp_path):
    path = str(tmp_path / "kv.log")
    with KVStore(path) as kv:
        kv.put("a", b"1")
        kv.put("b", b"2")
        kv.delete("a")
    with KVStore(path) as kv:
        assert "a" not in kv
        assert kv.get("b") == b"2"
        assert len(kv) == 1


def test_live_bytes_tracking(store):
    store.put("a", b"xxxx")
    store.put("b", b"yy")
    assert store.live_bytes == 6
    store.put("a", b"x")
    assert store.live_bytes == 3
    store.delete("b")
    assert store.live_bytes == 1


def test_compaction_reclaims_space(tmp_path):
    path = str(tmp_path / "kv.log")
    with KVStore(path) as kv:
        for i in range(20):
            kv.put("hot", bytes(1000))  # 19 dead versions
        kv.put("cold", b"keep")
        before = kv.file_bytes
        reclaimed = kv.compact()
        assert reclaimed > 0
        assert kv.file_bytes < before
        assert kv.get("hot") == bytes(1000)
        assert kv.get("cold") == b"keep"
    # Still intact after reopen.
    with KVStore(path) as kv:
        assert kv.get("cold") == b"keep"


def test_corruption_detected(tmp_path):
    path = str(tmp_path / "kv.log")
    with KVStore(path) as kv:
        kv.put("a", b"1")
    with open(path, "r+b") as f:
        f.seek(0)
        f.write(b"\xde\xad\xbe\xef")
    with pytest.raises(StorageError):
        KVStore(path)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcde", min_size=1, max_size=3),
            st.binary(max_size=64),
        ),
        max_size=40,
    )
)
def test_matches_dict_model(tmp_path_factory, ops):
    """The store behaves exactly like a dict, including across reopen."""
    path = str(tmp_path_factory.mktemp("kv") / "kv.log")
    model = {}
    with KVStore(path) as kv:
        for op, key, value in ops:
            if op == "put":
                kv.put(key, value)
                model[key] = value
            else:
                assert kv.delete(key) == (key in model)
                model.pop(key, None)
        assert {k: kv.get(k) for k in kv.keys()} == model
    with KVStore(path) as kv:
        assert {k: kv.get(k) for k in kv.keys()} == model
        kv.compact()
        assert {k: kv.get(k) for k in kv.keys()} == model


def test_write_batch_applies_all(store):
    store.put("stale", b"old")
    store.write_batch({"a": b"1", "b": b"2"}, deletes=["stale"])
    assert store.get("a") == b"1"
    assert store.get("b") == b"2"
    assert "stale" not in store


def test_write_batch_durable_across_reopen(tmp_path):
    path = str(tmp_path / "kv.log")
    with KVStore(path) as kv:
        kv.write_batch({f"seg/{i}": bytes([i]) * 64 for i in range(8)})
    with KVStore(path) as kv:
        assert len(kv) == 8
        assert kv.get("seg/3") == bytes([3]) * 64
