"""An embedded key-value store standing in for LMDB (Section 5).

The store keeps one append-only log file plus an in-memory index mapping
keys to (offset, length) of their latest value.  This gives the properties
VStore needs from its backend:

* values of MB size are first-class;
* O(1) point lookups once the index is loaded;
* deletes via tombstones;
* durability: the index is rebuilt by scanning the log on open;
* ``compact()`` rewrites only live records to reclaim space.

Record layout (little endian)::

    magic u32 | key_len u32 | val_len u64 | crc32 u32 | key | value

A tombstone is a record whose ``val_len`` field is ``TOMBSTONE``.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import StorageError

_MAGIC = 0x56535452  # "VSTR"
_HEADER = struct.Struct("<IIQI")
TOMBSTONE = 0xFFFFFFFFFFFFFFFF


class KVStore:
    """A durable embedded key-value store over a single log file."""

    def __init__(self, path: str):
        self.path = path
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (val_off, val_len)
        self._live_bytes = 0
        #: Recovery counters, accumulated across every index (re)build on
        #: this handle: how many torn tails were truncated, how many bytes
        #: each truncation dropped, and how many live bytes the last scan
        #: recovered — silent log repair made visible (the metrics
        #: registry exports them, see ``MetricsRegistry.observe_kvstore``).
        self.torn_truncations = 0
        self.dropped_bytes = 0
        self.recovered_bytes = 0
        self._file = open(path, "a+b")
        self._load_index()

    # -- lifecycle -------------------------------------------------------------

    def _load_index(self) -> None:
        """Rebuild the in-memory index by scanning the log.

        A *trailing* partial record — the signature of a crash mid-write —
        is recovered from by truncating the torn tail; corruption anywhere
        before the tail is an integrity error and raises.
        """
        self._index.clear()
        self._live_bytes = 0
        self._file.seek(0)
        offset = 0
        size = os.fstat(self._file.fileno()).st_size
        while offset + _HEADER.size <= size:
            header = self._read_at(offset, _HEADER.size)
            magic, key_len, val_len, crc = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StorageError(f"{self.path}: corrupt record at offset {offset}")
            key_off = offset + _HEADER.size
            if key_off + key_len > size:
                self._truncate_torn_tail(offset)
                size = offset
                break
            key = self._read_at(key_off, key_len)
            if val_len == TOMBSTONE:
                old = self._index.pop(key, None)
                if old is not None:
                    self._live_bytes -= old[1]
                offset = key_off + key_len
                continue
            if key_off + key_len + val_len > size:
                self._truncate_torn_tail(offset)
                size = offset
                break
            old = self._index.get(key)
            if old is not None:
                self._live_bytes -= old[1]
            self._index[key] = (key_off + key_len, val_len)
            self._live_bytes += val_len
            offset = key_off + key_len + val_len
        if offset < size and size - offset < _HEADER.size:
            # Fewer bytes than a header can hold: also a torn tail.
            self._truncate_torn_tail(offset)
        # Live bytes that survived this scan — alongside the truncation
        # counters, the "what did recovery keep" half of the story.
        self.recovered_bytes = self._live_bytes
        self._file.seek(0, os.SEEK_END)

    def _truncate_torn_tail(self, offset: int) -> None:
        """Drop a partially written trailing record (crash recovery)."""
        size = os.fstat(self._file.fileno()).st_size
        self.torn_truncations += 1
        self.dropped_bytes += max(0, size - offset)
        self._file.truncate(offset)
        self._file.flush()

    def close(self) -> None:
        """Flush and close the log file; the store can be reopened later."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def flush(self) -> None:
        """Push buffered writes to the OS (no fsync)."""
        if not self._file.closed:
            self._file.flush()

    def reopen_after_fork(self) -> None:
        """Give this (child) process its own file handle.

        A forked handle shares one seek offset with every sibling, so
        concurrent ``seek``+``read`` across workers would race.  The
        parent must :meth:`flush` before forking; the inherited handle is
        then closed here with an empty buffer (harmless — closing a
        child's fd never disturbs the parent's) and replaced by a fresh
        one with a private offset.  The in-memory index carries over.
        """
        if not self._file.closed:
            self._file.close()
        self._file = open(self.path, "a+b")

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw I/O -----------------------------------------------------------------

    def _read_at(self, offset: int, length: int) -> bytes:
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise StorageError(f"{self.path}: short read at offset {offset}")
        return data

    def _append(self, key: bytes, value: Optional[bytes]) -> int:
        """Append a record (or a tombstone when value is None); returns the
        absolute offset of the value within the file."""
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        val = value if value is not None else b""
        val_len = len(val) if value is not None else TOMBSTONE
        crc = zlib.crc32(key + val)
        self._file.write(_HEADER.pack(_MAGIC, len(key), val_len, crc))
        self._file.write(key)
        if value is not None:
            self._file.write(val)
        return offset + _HEADER.size + len(key)

    # -- public API ----------------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        kb = key.encode("utf-8")
        old = self._index.get(kb)
        val_off = self._append(kb, value)
        if old is not None:
            self._live_bytes -= old[1]
        self._index[kb] = (val_off, len(value))
        self._live_bytes += len(value)

    def get(self, key: str, verify: bool = False) -> bytes:
        """Fetch the latest value of ``key``; raises StorageError if absent.

        With ``verify`` the record's CRC32 is rechecked, catching on-disk
        bit rot at the cost of re-reading the record header.
        """
        kb = key.encode("utf-8")
        entry = self._index.get(kb)
        if entry is None:
            raise StorageError(f"key not found: {key!r}")
        value = self._read_at(*entry)
        if verify:
            header_off = entry[0] - len(kb) - _HEADER.size
            header = self._read_at(header_off, _HEADER.size)
            _, _, _, crc = _HEADER.unpack(header)
            if zlib.crc32(kb + value) != crc:
                raise StorageError(f"checksum mismatch for key {key!r}")
        return value

    def get_optional(self, key: str) -> Optional[bytes]:
        """Fetch ``key`` or return None when absent."""
        entry = self._index.get(key.encode("utf-8"))
        return None if entry is None else self._read_at(*entry)

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns False when it was not present."""
        kb = key.encode("utf-8")
        old = self._index.pop(kb, None)
        if old is None:
            return False
        self._append(kb, None)
        self._live_bytes -= old[1]
        return True

    def __contains__(self, key: str) -> bool:
        return key.encode("utf-8") in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self, prefix: str = "") -> Iterator[str]:
        """All live keys with the given prefix, in sorted order."""
        pb = prefix.encode("utf-8")
        for kb in sorted(self._index):
            if kb.startswith(pb):
                yield kb.decode("utf-8")

    def value_len(self, key: str) -> int:
        """Size in bytes of the stored value (no data read)."""
        entry = self._index.get(key.encode("utf-8"))
        if entry is None:
            raise StorageError(f"key not found: {key!r}")
        return entry[1]

    # -- batched writes ----------------------------------------------------------------

    def write_batch(self, puts: Dict[str, bytes],
                    deletes: Iterable[str] = ()) -> None:
        """Apply several writes as one crash-consistent unit.

        Records are appended value-first and the batch is flushed once; a
        crash mid-batch leaves at most a torn tail, which reopening
        truncates — so the paper's per-segment fan-out (one segment, many
        storage formats) lands atomically enough for recovery.
        """
        for key, value in puts.items():
            self.put(key, value)
        for key in deletes:
            self.delete(key)
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- maintenance ------------------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes of live values (excluding headers and dead records)."""
        return self._live_bytes

    @property
    def file_bytes(self) -> int:
        """Total size of the log file, including garbage."""
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size

    def compact(self) -> int:
        """Rewrite only live records; returns bytes reclaimed."""
        before = self.file_bytes
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as out:
            new_index: Dict[bytes, Tuple[int, int]] = {}
            for kb in sorted(self._index):
                val = self._read_at(*self._index[kb])
                offset = out.tell()
                out.write(_HEADER.pack(_MAGIC, len(kb), len(val),
                                       zlib.crc32(kb + val)))
                out.write(kb)
                out.write(val)
                new_index[kb] = (offset + _HEADER.size + len(kb), len(val))
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "a+b")
        self._index = new_index
        return before - self.file_bytes
