"""F1 scoring."""

import pytest
from hypothesis import given, strategies as st

from repro.operators.accuracy import Confusion, f1_score


def test_perfect_score():
    assert f1_score(10, 0, 0) == 1.0


def test_empty_clip_scores_one():
    assert f1_score(0, 0, 0) == 1.0


def test_all_wrong_scores_zero():
    assert f1_score(0, 5, 5) == 0.0


def test_harmonic_mean_of_precision_recall():
    c = Confusion(tp=8, fp=2, fn=4)
    p, r = c.precision, c.recall
    assert c.f1 == pytest.approx(2 * p * r / (p + r))


def test_confusion_addition():
    total = Confusion(1, 2, 3) + Confusion(4, 5, 6)
    assert (total.tp, total.fp, total.fn) == (5, 7, 9)


def test_precision_recall_degenerate():
    assert Confusion(0, 0, 5).precision == 1.0
    assert Confusion(0, 5, 0).recall == 1.0


@given(
    tp=st.floats(0, 1e6),
    fp=st.floats(0, 1e6),
    fn=st.floats(0, 1e6),
)
def test_f1_bounded(tp, fp, fn):
    assert 0.0 <= f1_score(tp, fp, fn) <= 1.0


@given(
    tp=st.floats(0.1, 1e6),
    fp=st.floats(0, 1e6),
    fn=st.floats(0, 1e6),
    extra=st.floats(0.1, 1e6),
)
def test_f1_monotone_in_errors(tp, fp, fn, extra):
    assert f1_score(tp, fp + extra, fn) <= f1_score(tp, fp, fn)
    assert f1_score(tp, fp, fn + extra) <= f1_score(tp, fp, fn)
