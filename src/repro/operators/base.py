"""Operator base class: cost model, detection model, scoring plumbing.

Every operator consumes raw frames at some fidelity and emits per-frame
output.  Two families share the scoring machinery:

* **detector operators** (S-NN, NN, License, OCR, Color, Contour) emit
  per-object detections; see :mod:`repro.operators.detector`;
* **signal operators** (Diff, Motion, Opflow) emit a binary per-frame
  label driven by a scalar scene signal; see
  :mod:`repro.operators.signal_op`.

Accuracy is computed frame-wise against the operator's own output at the
ingest fidelity, with sampled outputs propagated forward in time until the
next consumed frame (the standard label-hold convention of NoScope-style
engines).  Consequently accuracy at the ingest fidelity is exactly 1.0.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.operators.accuracy import Confusion
from repro.video.content import ClipTruth
from repro.video.fidelity import Fidelity, richest_fidelity

#: Fraction of fine image detail surviving each quality level; feeds the
#: effective-size computation of detection models.  ``best`` keeps all
#: detail so ingest-fidelity accuracy is exact.
QUALITY_DETAIL = {"best": 1.0, "good": 0.85, "bad": 0.55, "worst": 0.30}


def logistic(x: np.ndarray) -> np.ndarray:
    """Numerically safe logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def propagation_map(n_frames: int, consumed: np.ndarray) -> np.ndarray:
    """For each ingest frame j, the index of the consumed frame whose output
    covers j (the latest consumed frame at or before j)."""
    positions = np.searchsorted(consumed, np.arange(n_frames), side="right") - 1
    return consumed[np.maximum(positions, 0)]


class Operator(abc.ABC):
    """An algorithmic video consumer."""

    #: Operator name as listed in Table 2 (e.g. ``"License"``).
    name: str = "?"
    #: Whether the implementation runs on CPU or GPU in the paper (metadata).
    platform: str = "cpu"
    #: Fixed per-frame cost in seconds, independent of resolution.
    cost_base: float = 1e-4
    #: Per-frame cost per megapixel (to the power ``cost_gamma``).
    cost_per_mp: float = 1e-3
    #: Resolution-scaling exponent of the variable cost term.
    cost_gamma: float = 1.0

    # -- consumption cost (observation O2: quality never appears here) -------

    def cost_per_frame(self, fidelity: Fidelity) -> float:
        """Simulated seconds to consume one frame at ``fidelity``."""
        mp = fidelity.pixels / 1e6
        return self.cost_base + self.cost_per_mp * mp**self.cost_gamma

    def consumption_seconds(self, fidelity: Fidelity, video_seconds: float) -> float:
        """Simulated seconds to consume ``video_seconds`` of footage."""
        return self.cost_per_frame(fidelity) * fidelity.fps * video_seconds

    def consumption_speed(self, fidelity: Fidelity) -> float:
        """Consumption speed in x realtime (reciprocal of cost)."""
        per_second = self.cost_per_frame(fidelity) * fidelity.fps
        return float("inf") if per_second <= 0 else 1.0 / per_second

    # -- accuracy ---------------------------------------------------------------

    @abc.abstractmethod
    def expected_confusion(self, clip: ClipTruth, fidelity: Fidelity) -> Confusion:
        """Expected confusion counts of this operator on ``clip`` at
        ``fidelity``, scored against its own ingest-fidelity output."""

    @abc.abstractmethod
    def expected_positive_fraction(self, clip: ClipTruth,
                                   fidelity: Fidelity) -> float:
        """Expected fraction of frames this operator flags positive —
        the selectivity it contributes inside a query cascade."""

    def accuracy(self, clip: ClipTruth, fidelity: Fidelity) -> float:
        """Measured F1 score on ``clip`` at ``fidelity``."""
        return self.expected_confusion(clip, fidelity).f1

    def profile(self, clip: ClipTruth, fidelity: Fidelity) -> Tuple[float, float]:
        """(accuracy, consumption speed) — the pair the profiler records."""
        return self.accuracy(clip, fidelity), self.consumption_speed(fidelity)

    # -- misc ----------------------------------------------------------------------

    @property
    def ingest_fidelity(self) -> Fidelity:
        """The ground-truth fidelity (the ingest format)."""
        return richest_fidelity()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
