"""Figure 14: time spent deriving consumption formats — exhaustive
profiling of all fidelity options vs VStore's boundary search.

The paper reports 9-15x fewer profiling runs and ~5x less total time, with
the CPU-bound License operator contributing most of the delay.
"""

from repro.core.consumption import ConsumptionPlanner
from repro.operators.library import Consumer
from repro.profiler.profiler import OperatorProfiler

OPS = {
    "jackson": ("Diff", "S-NN", "NN"),
    "dashcam": ("Motion", "License", "OCR"),
}
ACCURACIES = (0.95, 0.9, 0.8, 0.7)


def _derive_all(library, exhaustive: bool):
    stats = {}
    for dataset, ops in OPS.items():
        profiler = OperatorProfiler(library, dataset)
        planner = ConsumptionPlanner(profiler)
        for op in ops:
            before_runs = profiler.stats.runs
            before_secs = profiler.stats.seconds
            for accuracy in ACCURACIES:
                consumer = Consumer(op, accuracy)
                if exhaustive:
                    planner.derive_exhaustive(consumer)
                else:
                    planner.derive(consumer)
            stats[op] = (profiler.stats.runs - before_runs,
                         profiler.stats.seconds - before_secs)
    return stats


def test_fig14_profiling_overhead(benchmark, record, full_library):
    vstore = benchmark.pedantic(
        lambda: _derive_all(full_library, exhaustive=False),
        rounds=1, iterations=1,
    )
    exhaustive = _derive_all(full_library, exhaustive=True)

    lines = [f"{'op':>9} {'runs(ex)':>9} {'runs(VS)':>9} "
             f"{'time(ex)':>9} {'time(VS)':>9}"]
    total_ex = total_vs = runs_ex = runs_vs = 0.0
    for op in ("Diff", "S-NN", "NN", "Motion", "License", "OCR"):
        r_vs, t_vs = vstore[op]
        r_ex, t_ex = exhaustive[op]
        lines.append(f"{op:>9} {r_ex:>9} {r_vs:>9} {t_ex:>9.0f} {t_vs:>9.0f}")
        total_ex += t_ex
        total_vs += t_vs
        runs_ex += r_ex
        runs_vs += r_vs
    lines.append(f"{'total':>9} {runs_ex:>9.0f} {runs_vs:>9.0f} "
                 f"{total_ex:>9.0f} {total_vs:>9.0f}")
    record("Figure 14 — profiling overhead (simulated seconds)",
           "\n".join(lines))

    # The paper's headline reductions: ~9-15x fewer runs, ~5x less time.
    assert runs_ex / runs_vs > 5
    assert total_ex / total_vs > 3
    # The expensive per-frame operators dominate the profiling delay.
    # (In the paper License, a CPU implementation, contributes >75%; in our
    # cost calibration the full NN is the heavyweight - see EXPERIMENTS.md.)
    heavy = sum(exhaustive[op][1] for op in ("NN", "License", "OCR"))
    assert heavy > 0.7 * total_ex


def test_fig14_one_configuration_under_an_hour(benchmark, record, full_library):
    """Section 6.4: one complete configuration takes ~500 simulated
    seconds, affordable hourly."""
    from repro.clock import SimClock
    from repro.core.config import derive_configuration
    from repro.operators.library import default_library

    clock = SimClock()
    benchmark.pedantic(
        lambda: derive_configuration(
            default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                   "OCR")),
            clock=clock,
        ),
        rounds=1, iterations=1,
    )
    total = clock.spent("profiling")
    record("Section 6.4 — one configuration round",
           f"total simulated profiling time: {total:.0f} s")
    assert total < 3600.0
