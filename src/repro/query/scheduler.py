"""Concurrent query scheduling (Section 5, generalized to multi-tenancy).

Two layers live here:

* the paper's *operator-context dispatcher*: greedy least-loaded assignment
  of per-segment costs onto ``n_contexts`` workers within one stage
  (:func:`dispatch`), returning the simulated makespan;
* the *concurrent query executor*: N cascade queries over M streams admitted
  into one :class:`ConcurrentExecutor`, which interleaves their segment
  retrievals and operator runs on shared resources — a disk I/O channel
  pool (:class:`~repro.storage.disk.DiskBandwidthPool`), a bounded decoder
  pool (:class:`~repro.codec.decoder.DecoderPool`) and a shared operator
  context pool (:class:`OperatorContextPool`) — under a pluggable
  scheduling policy (FIFO, fair share, earliest deadline first), charging
  everything to one :class:`~repro.clock.SimClock`.

The executor is a discrete-event simulation.  Each admitted query plans a
*serial* task chain (its cascade structure: retrieve each active segment,
then run the stage's operators); concurrency and slowdown come from queries
contending for the bounded pools.  With a single query and uncontended
pools the event loop degenerates to charging each task's duration in
order, which is exactly what the sequential ``QueryEngine.execute`` used to
do — N=1 results are bit-identical by construction.

Scheduling decisions run on the O(log n) event-heap core
(:mod:`repro.query.eventloop`): per-resource ready heaps with lazy
priority invalidation, a completion heap, and dependency counters.  The
original rescan loop survives as ``core="reference"`` — the bit-identical
parity oracle behind the golden-trace and Hypothesis tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.cache.plane import CachePlane, RetrievalAccess
from repro.clock import SimClock
from repro.codec.decoder import DecoderPool
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.errors import QueryError
from repro.obs.trace import task_event
from repro.query.eventloop import (
    CompletionHeap,
    DependencyTracker,
    ReadyHeapIndex,
    TimelineCursor,
    blocked_triples,
)
from repro.storage.disk import DiskBandwidthPool

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import Configuration
    from repro.operators.library import OperatorLibrary
    from repro.query.alternatives import AlternativeScheme
    from repro.query.cascade import QueryCascade
    from repro.query.engine import ExecutionResult, QueryEngine
    from repro.storage.segment_store import SegmentStore


# ---------------------------------------------------------------------------
# The paper's per-stage operator-context dispatcher
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one stage's segments across contexts."""

    n_contexts: int
    makespan: float  # simulated seconds until the slowest context finishes
    loads: List[float]  # per-context busy time
    assignment: List[int]  # context index per segment

    @property
    def total_work(self) -> float:
        return sum(self.loads)

    @property
    def speedup(self) -> float:
        """Achieved parallel speedup over a single context.

        With no work (``makespan <= 0``) there is nothing to parallelize,
        so the speedup is 1.0 — not ``n_contexts``.
        """
        if self.makespan <= 0:
            return 1.0
        return self.total_work / self.makespan

    @property
    def utilization(self) -> float:
        """Fraction of context-time spent busy (1.0 = perfectly balanced)."""
        capacity = self.makespan * self.n_contexts
        return self.total_work / capacity if capacity > 0 else 1.0


def dispatch(segment_costs: Sequence[float], n_contexts: int) -> DispatchResult:
    """Greedy least-loaded dispatch of segments onto operator contexts.

    Segments are assigned in arrival order (streams are consumed in time
    order), each to the context with the smallest accumulated load — the
    natural online policy for the paper's segment dispatcher.
    """
    if n_contexts <= 0:
        raise QueryError(f"need at least one context: {n_contexts}")
    if any(c < 0 for c in segment_costs):
        raise QueryError("segment costs must be non-negative")
    if n_contexts == 1:
        # Degenerate fast path: one context accumulates every cost in
        # order — the same left-to-right float additions as the general
        # loop below, without the per-segment argmin.
        total = 0.0
        for cost in segment_costs:
            total += cost
        return DispatchResult(
            n_contexts=1,
            makespan=total,
            loads=[total],
            assignment=[0] * len(segment_costs),
        )
    loads = [0.0] * n_contexts
    assignment: List[int] = []
    for cost in segment_costs:
        idx = min(range(n_contexts), key=loads.__getitem__)
        loads[idx] += cost
        assignment.append(idx)
    return DispatchResult(
        n_contexts=n_contexts,
        makespan=max(loads) if loads else 0.0,
        loads=loads,
        assignment=assignment,
    )


# ---------------------------------------------------------------------------
# Shared resources and query plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorContextPool:
    """A shared pool of operator contexts across all concurrent queries.

    A stage consume acquires as many contexts as its query was admitted
    with (gang scheduling); queries wanting more contexts than are free
    wait, which is where multi-tenant CPU contention comes from.
    """

    contexts: int = 4

    def __post_init__(self) -> None:
        if self.contexts < 1:
            raise QueryError(f"need at least one operator context: {self.contexts}")


#: Resource names the executor schedules on.  ``"cache"`` is the RAM tier
#: serving decoded-frame hits; it is always uncontended.
RESOURCES: Tuple[str, ...] = ("disk", "decoder", "operators", "cache")

#: Fleets up to this many queries record per-event ``trace_events`` by
#: default (``ConcurrentExecutor(trace=None)``).  Larger fleets skip the
#: per-event dict allocation — at 4096 queries the trace list alone
#: dominates the run's allocation profile — unless tracing is forced on.
TRACE_AUTO_QUERIES = 64


@dataclass(frozen=True)
class ResourceTask:
    """One schedulable unit of a query's serial task chain."""

    kind: str  # "retrieve" | "consume"
    resource: str  # one of RESOURCES
    units: int  # pool units held while running
    duration: float  # simulated seconds of service
    category: str  # SimClock category ("disk" | "decode" | "consume" | "cache")
    operator: str  # cascade stage this task belongs to
    access: Optional[RetrievalAccess] = None  # cache view of a retrieve task
    hit: bool = False  # True when planned as a committed cache hit
    #: Disk shard serving a "disk" retrieval (0 on unsharded stores);
    #: the executor routes the task onto that shard's channel pool.
    shard: int = 0
    #: Completion hook, fired at the simulated instant the task finishes.
    #: Background evolution jobs commit their side effect here — a store
    #: put, delete, or placement move — so store mutations land in event
    #: order on the shared timeline.  Excluded from equality/repr: a hook
    #: is a runtime attachment, not part of the planned task's value.
    on_done: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )


@dataclass(frozen=True)
class StagePlan:
    """One cascade stage: its retrievals, its consume, its outcome."""

    operator: str
    tasks: Tuple[ResourceTask, ...]  # retrievals in segment order, then consume
    touched: int  # segments this stage scanned
    positives: int  # positive frames it produced
    #: Per-segment consume costs (zeroed for committed result-cache hits)
    #: and the matching result-cache keys, in task order; empty / ``None``
    #: entries when the store runs without a cache plane.
    consume_costs: Tuple[float, ...] = ()
    result_keys: Tuple[Optional[tuple], ...] = ()
    #: Output byte sizes matching ``result_keys`` — commits must not read
    #: sizes back out of the (separately bounded) real-RAM memo.
    result_nbytes: Tuple[float, ...] = ()
    #: (key, saved seconds) per committed result hit — counted when the
    #: stage's consume actually runs on the clock.
    result_hits: Tuple[Tuple[tuple, float], ...] = ()


@dataclass(frozen=True)
class QueryPlan:
    """The full, timing-independent task chain of one query.

    Operator outputs are deterministic (seeded per segment), so which
    segments survive each stage does not depend on scheduling — the chain
    can be planned up front and then purely scheduled.
    """

    label: str
    dataset: str
    stream: str
    video_seconds: float
    stages: Tuple[StagePlan, ...]
    #: Operator contexts the stage consumes were dispatched across.  An
    #: executor admitting this plan (``admit(plan=...)``) adopts it, so
    #: the single-flight dedup re-dispatch and the gang sizes agree.
    contexts: int = 1

    @property
    def tasks(self) -> Tuple[ResourceTask, ...]:
        """Flattened task chain, cached on first access.

        Analysis code reads this per outcome row; re-flattening the stage
        lists every time made plan access O(stages) per call.  The cache
        is keyed on the identity of ``stages`` so the rare caller that
        swaps the (frozen) field via ``object.__setattr__`` still gets a
        fresh flattening.
        """
        cached = self.__dict__.get("_tasks")
        if cached is not None and cached[0] is self.stages:
            return cached[1]
        flat = tuple(t for stage in self.stages for t in stage.tasks)
        object.__setattr__(self, "_tasks", (self.stages, flat))
        return flat

    @property
    def service_seconds(self) -> float:
        """Serial time of the chain — the query's uncontended latency.

        Cached like :attr:`tasks` (and invalidated the same way): slowdown
        and fairness reports divide by this per query, per row.
        """
        cached = self.__dict__.get("_service")
        if cached is not None and cached[0] is self.stages:
            return cached[1]
        total = sum(t.duration for t in self.tasks)
        object.__setattr__(self, "_service", (self.stages, total))
        return total

    @property
    def positives_per_stage(self) -> Dict[str, int]:
        return {s.operator: s.positives for s in self.stages}

    @property
    def segments_per_stage(self) -> Dict[str, int]:
        return {s.operator: s.touched for s in self.stages}


# ---------------------------------------------------------------------------
# Scheduling policies
# ---------------------------------------------------------------------------


class SchedulingPolicy:
    """Orders waiting tasks when a shared resource frees up.

    ``priority`` returns a sort key; the executor grants the fitting
    waiting task with the smallest key.  Tasks that do not fit the free
    capacity are skipped (backfilling), so small retrievals may overtake a
    gang-sized consume that is still waiting for enough contexts.
    """

    name = "policy"

    def priority(self, session: "QuerySession", task: "ResourceTask",
                 seq: int) -> Tuple:
        raise NotImplementedError


class FIFOPolicy(SchedulingPolicy):
    """Grant in arrival order: first task enqueued is first served."""

    name = "fifo"

    def priority(self, session: "QuerySession", task: "ResourceTask",
                 seq: int) -> Tuple:
        return (seq,)


class FairSharePolicy(SchedulingPolicy):
    """Least attained service: grant the query that has received the least
    time on the contended resource so far (max-min fair sharing per
    resource, so a light query is not starved behind heavy backlogs)."""

    name = "fair"

    def priority(self, session: "QuerySession", task: "ResourceTask",
                 seq: int) -> Tuple:
        return (session.service_by_resource.get(task.resource, 0.0), seq)


class DeadlinePolicy(SchedulingPolicy):
    """Earliest deadline first; deadline-less queries yield to dated ones."""

    name = "edf"

    def priority(self, session: "QuerySession", task: "ResourceTask",
                 seq: int) -> Tuple:
        deadline = session.deadline
        return (deadline if deadline is not None else math.inf, seq)


class WeightedFairSharePolicy(SchedulingPolicy):
    """Weighted least attained service *across tenants*.

    Where :class:`FairSharePolicy` equalizes per-query service on each
    resource, this policy equalizes the *tenant-level* virtual time
    ``attained_service / weight``: the next grant goes to the tenant
    that has consumed the least weighted service so far, regardless of
    how many queries it has in flight.  Weights express SLO classes — a
    weight-2 tenant is entitled to twice the service rate of a weight-1
    tenant under contention.

    Sound under the heap core's lazy invalidation: a tenant's attained
    service only grows while a task waits, so priorities are
    non-decreasing; the ready-heap version stamp additionally folds in
    the tenant's service stamp, so stale keys are re-keyed before they
    can win a grant.
    """

    name = "wfair"

    def __init__(self, weights: Optional[Dict[str, float]] = None):
        self.weights: Dict[str, float] = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise QueryError(
                    f"tenant {tenant!r}: weight must be positive: {weight}"
                )

    def priority(self, session: "QuerySession", task: "ResourceTask",
                 seq: int) -> Tuple:
        state = session.tenant_state
        attained = (state.service if state is not None
                    else session.service_seconds)
        weight = self.weights.get(session.tenant or "", 1.0)
        return (attained / weight, seq)


# ---------------------------------------------------------------------------
# Tenancy and admission control (the open-loop serving plane)
# ---------------------------------------------------------------------------


@dataclass
class TenantState:
    """Shared per-tenant accounting, attached to every session of a tenant.

    One instance per tenant name per executor; sessions reference it so
    tenant-level policies (:class:`WeightedFairSharePolicy`) and the
    admission controller read and update one place.  Untenanted sessions
    share the anonymous tenant ``""``.
    """

    name: str
    #: Attained service across all resources (simulated seconds), updated
    #: by ``_complete`` on every task finish.
    service: float = 0.0
    #: Version stamp bumped with every service change — folded into the
    #: ready-heap entry version so tenant-level priorities are re-keyed
    #: lazily, exactly like per-session ``prio_version``.
    stamp: int = 0
    #: Queries of this tenant currently inside the executor (admitted
    #: past admission control, not yet finished).
    in_flight: int = 0


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission control for open-loop serving.

    Bounds how much of an arrival stream may be in flight at once; the
    rest waits in an admission queue ordered by ``queue_policy``:

    * ``"arrival"`` — FIFO by arrival instant;
    * ``"edf"`` — earliest deadline first (deadline-less queries last),
      the SLO-aware order: with per-tenant SLOs, a query's deadline is
      ``arrival + slo``, so EDF admits the most urgent work first;
    * ``"wfair"`` — weighted fair share across tenants: the queue head
      of the tenant with the least weighted attained service enters
      first (FIFO within each tenant).

    ``tenant_quotas`` caps each tenant's in-flight queries independently
    of the global bound; quota-blocked tenants never head-of-line-block
    other tenants (the queue is per-tenant underneath).  Background jobs
    (scheduling class 1) bypass admission entirely.
    """

    max_in_flight: Optional[int] = None
    queue_policy: str = "arrival"
    tenant_quotas: Optional[Dict[str, int]] = None
    tenant_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise QueryError(
                f"max_in_flight must be >= 1: {self.max_in_flight}"
            )
        if self.queue_policy not in ("arrival", "edf", "wfair"):
            raise QueryError(
                f"unknown admission queue policy {self.queue_policy!r}; "
                f"known: arrival, edf, wfair"
            )
        for tenant, quota in (self.tenant_quotas or {}).items():
            if quota < 1:
                raise QueryError(
                    f"tenant {tenant!r}: quota must be >= 1: {quota}"
                )
        for tenant, weight in (self.tenant_weights or {}).items():
            if weight <= 0:
                raise QueryError(
                    f"tenant {tenant!r}: weight must be positive: {weight}"
                )


class _AdmissionController:
    """Bounded in-flight admission with per-tenant queues.

    Every structure is per-tenant: a binary heap of waiting sessions per
    tenant keyed by the queue policy's order, so a pick is O(T log n)
    for T tenants — the controller stays cheap at 10k queued queries.
    ``arrive`` and ``finish`` return the sessions that may now enter the
    executor; the caller submits their first tasks.
    """

    def __init__(self, config: AdmissionConfig,
                 tenants: Dict[str, TenantState]):
        self.config = config
        self._tenants = tenants
        self.in_flight = 0
        self.queued = 0
        #: ``(t, queued, in_flight)`` samples at every change point, one
        #: per distinct instant — the queue-depth timeline the SLO report
        #: plots.
        self.timeline: List[Tuple[float, int, int]] = []
        self._queues: Dict[str, List[tuple]] = {}

    def _key(self, session: "QuerySession") -> tuple:
        if self.config.queue_policy == "edf":
            deadline = session.deadline
            return (deadline if deadline is not None else math.inf,
                    session.arrival_at, session.qid)
        return (session.arrival_at, session.qid)

    def _tenant_fits(self, name: str) -> bool:
        quotas = self.config.tenant_quotas
        if not quotas:
            return True
        quota = quotas.get(name)
        if quota is None:
            return True
        state = self._tenants.get(name)
        return state is None or state.in_flight < quota

    def _pick(self) -> Optional["QuerySession"]:
        cfg = self.config
        if cfg.max_in_flight is not None and self.in_flight >= cfg.max_in_flight:
            return None
        wfair = cfg.queue_policy == "wfair"
        weights = cfg.tenant_weights or {}
        best_name = None
        best_key: Optional[tuple] = None
        for name in sorted(self._queues):
            queue = self._queues[name]
            if not queue or not self._tenant_fits(name):
                continue
            head_key = queue[0][0]
            if wfair:
                state = self._tenants.get(name)
                attained = state.service if state is not None else 0.0
                key = (attained / weights.get(name, 1.0),) + head_key
            else:
                key = head_key
            if best_key is None or key < best_key:
                best_key = key
                best_name = name
        if best_name is None:
            return None
        _, session = heapq.heappop(self._queues[best_name])
        self.queued -= 1
        self.in_flight += 1
        state = session.tenant_state
        if state is not None:
            state.in_flight += 1
        return session

    def _drain(self) -> List["QuerySession"]:
        admitted: List["QuerySession"] = []
        while True:
            session = self._pick()
            if session is None:
                return admitted
            admitted.append(session)

    def _sample(self, now: float) -> None:
        point = (now, self.queued, self.in_flight)
        if self.timeline and self.timeline[-1][0] == now:
            self.timeline[-1] = point
        else:
            self.timeline.append(point)

    def arrive(self, session: "QuerySession",
               now: float) -> List["QuerySession"]:
        """Queue one arrival; return every session admitted by it."""
        name = session.tenant or ""
        heapq.heappush(self._queues.setdefault(name, []),
                       (self._key(session), session))
        self.queued += 1
        admitted = self._drain()
        self._sample(now)
        return admitted

    def finish(self, session: "QuerySession",
               now: float) -> List["QuerySession"]:
        """Release one finished session; return the sessions its slot
        (and its tenant's quota slot) let in."""
        self.in_flight -= 1
        state = session.tenant_state
        if state is not None:
            state.in_flight -= 1
        admitted = self._drain()
        self._sample(now)
        return admitted


# ---------------------------------------------------------------------------
# Sessions, outcomes, executor
# ---------------------------------------------------------------------------


@dataclass
class QuerySession:
    """One admitted query: its spec, plan, and runtime accounting."""

    qid: int
    query: "QueryCascade"
    dataset: str
    stream: str
    accuracy: float
    t0: float
    t1: float
    contexts: int
    deadline: Optional[float]
    plan: QueryPlan
    admitted_at: float
    finished_at: Optional[float] = None
    #: Simulated instant the query *arrived* at the store.  Open-loop
    #: workloads admit ahead of time with future arrivals; closed-loop
    #: fleets default it to the admit instant (see ``__post_init__``).
    #: Latency is honest: ``finished_at - arrival_at``, including any
    #: time spent queued before admission.
    arrival_at: Optional[float] = None
    #: Tenant this query belongs to (``None`` = untenanted).
    tenant: Optional[str] = None
    #: Shared accounting of this session's tenant (one object per tenant
    #: per executor); ``None`` for directly constructed sessions.
    tenant_state: Optional[TenantState] = None
    #: Simulated instant the session passed admission control and its
    #: first task was submitted (= arrival when nothing throttled it).
    entered_at: Optional[float] = None
    #: Time spent in the admission queue before entering the executor.
    queued_seconds: float = 0.0
    waited_seconds: float = 0.0  # time spent queued for busy resources
    service_by_resource: Dict[str, float] = field(default_factory=dict)
    _cursor: int = 0  # index of the next task in the plan
    #: Version stamp of this session's policy-relevant state; the executor
    #: bumps it whenever attained service changes, so ready-heap entries
    #: can detect a stale priority key (lazy invalidation).
    prio_version: int = 0
    #: Scheduling class: 0 = foreground query, 1 = background evolution
    #: job.  Both cores prepend it to every policy priority key, so a
    #: background task is granted only when no foreground task fits the
    #: free capacity.  All-foreground fleets get a constant prefix, which
    #: leaves their schedules (and the golden traces) bit-identical.
    klass: int = 0

    def __post_init__(self) -> None:
        if self.arrival_at is None:
            self.arrival_at = self.admitted_at

    @property
    def label(self) -> str:
        return f"q{self.qid}:{self.query.name}@{self.stream}"

    @property
    def service_seconds(self) -> float:
        return sum(self.service_by_resource.values())

    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival_at


@dataclass(frozen=True)
class BackgroundJob:
    """One background evolution job: a serial chain of resource tasks.

    Jobs are how erosion deletes, format re-encodes and shard migrations
    enter the executor (``admit_job``): they wait in the same per-resource
    queues as query tasks, hold the same pool units and charge the same
    clock — but in scheduling class 1, so any foreground task that fits
    the free capacity is granted first.  Each task's ``on_done`` hook
    commits the corresponding store mutation at the simulated instant the
    work finished (see :mod:`repro.core.evolve` for the job builders).
    """

    name: str  # shows up as the session label's query name
    stream: str
    kind: str  # "reencode" | "erode" | "migrate" | "retire"
    tasks: Tuple[ResourceTask, ...]


@dataclass(frozen=True)
class QueryOutcome:
    """Per-query result of a concurrent run."""

    session: QuerySession
    result: "ExecutionResult"

    @property
    def latency(self) -> float:
        """Honest end-to-end latency: finish minus *arrival*.

        Includes the time an open-loop query spent queued in admission
        control before it was allowed in; for closed-loop fleets arrival
        and admit coincide, so this is the pre-existing number.
        """
        return self.session.finished_at - self.session.arrival_at

    @property
    def service_seconds(self) -> float:
        """Busy time of the query's own tasks (= its uncontended latency)."""
        return self.session.plan.service_seconds

    @property
    def waited_seconds(self) -> float:
        return self.session.waited_seconds

    @property
    def queued_seconds(self) -> float:
        """Time spent in the admission queue before entering."""
        return self.session.queued_seconds

    @property
    def slowdown(self) -> float:
        """Contention-induced slowdown over running the query alone.

        A zero-service outcome (an empty plan — e.g. every stage was a
        committed result hit) with positive latency spent *all* of that
        latency queueing; under open-loop admission that is real harm, so
        it reports as ``inf`` rather than pretending "no slowdown".
        Aggregates stay well-defined: :func:`~repro.analysis.concurrency.
        jain_index` and ``ConcurrencyReport.mean_slowdown`` fold only the
        finite rows.
        """
        service = self.service_seconds
        if service > 0:
            return self.latency / service
        return math.inf if self.latency > 0 else 1.0

    @property
    def deadline_met(self) -> Optional[bool]:
        if self.session.deadline is None:
            return None
        return self.session.finished_at <= self.session.deadline


@dataclass(frozen=True)
class ExecutorStats:
    """Aggregate resource accounting of one concurrent run."""

    policy: str
    n_queries: int
    makespan: float  # simulated wall time of the whole run
    capacities: Dict[str, Optional[int]]  # None = uncontended
    busy_seconds: Dict[str, float]  # unit-seconds of service per resource
    core: str = "heap"  # executor core that produced the run
    events: int = 0  # task start/finish events of the run
    wall_seconds: float = 0.0  # real (host) seconds spent inside run()
    #: Real seconds spent planning and admitting the fleet (``admit`` /
    #: ``admit_job`` calls) before :meth:`ConcurrentExecutor.run` — the
    #: host-side cost ``wall_seconds`` alone silently excluded.
    admit_wall_seconds: float = 0.0

    @property
    def total_wall_seconds(self) -> float:
        """Honest end-to-end host time: plan/admit plus the run loop."""
        return self.wall_seconds + self.admit_wall_seconds

    @property
    def events_per_second(self) -> float:
        """Real-time event throughput, over the *total* wall.

        Planning and admission are part of serving a fleet; excluding
        them overstated throughput for fleets admitted without
        precomputed plans.  (For the scale benchmarks, which admit from
        precomputed plans, the two denominators differ by well under the
        bench-diff tolerance.)
        """
        wall = self.total_wall_seconds
        if wall <= 0:
            return 0.0
        return self.events / wall

    def utilization(self, resource: str) -> Optional[float]:
        """Busy fraction of a bounded pool over the run (None if unbounded)."""
        capacity = self.capacities.get(resource)
        if capacity is None or self.makespan <= 0:
            return None
        return self.busy_seconds.get(resource, 0.0) / (capacity * self.makespan)


@dataclass
class _Pool:
    name: str
    capacity: Optional[int]  # None = unbounded (no contention)
    in_use: int = 0
    busy_seconds: float = 0.0

    def fits(self, units: int) -> bool:
        return self.capacity is None or self.in_use + units <= self.capacity

    @property
    def free(self) -> Optional[int]:
        """Free units (``None`` = unbounded), for the ready-heap index."""
        return None if self.capacity is None else self.capacity - self.in_use

    def clamp(self, units: int) -> int:
        return units if self.capacity is None else min(units, self.capacity)


@dataclass
class _RunTask:
    """A planned task as actually scheduled in one run.

    Without a cache plane this mirrors the planned :class:`ResourceTask`
    exactly.  With one, the executor's single-flight transformation may
    rewrite a retrieval that duplicates an earlier query's in-flight miss
    into a RAM-tier read that *depends on* the leader's task, and zero the
    deduplicated share of a stage consume — so the runtime resource,
    duration and dependency edges live here, while the plan stays intact.
    """

    task: ResourceTask  # the planned task (kept for reference/accounting)
    resource: str
    units: int
    duration: float
    category: str
    uid: int
    deps: Tuple[int, ...] = ()  # uids that must complete before this starts
    commit_access: Optional[RetrievalAccess] = None  # leader: insert on done
    follower_access: Optional[RetrievalAccess] = None  # follower: unpin on done
    note_access: Optional[RetrievalAccess] = None  # tier heat on done
    #: (key, saved seconds, output bytes) per result this task computes
    produced_results: Tuple[Tuple[tuple, float, float], ...] = ()
    hit_results: Tuple[Tuple[tuple, float], ...] = ()  # committed result hits
    dedup_count: int = 0  # segment consumes deduplicated onto earlier tasks
    dedup_saved: float = 0.0

    @property
    def kind(self) -> str:
        return self.task.kind

    @property
    def operator(self) -> str:
        return self.task.operator


@dataclass
class _Waiting:
    session: QuerySession
    task: _RunTask
    seq: int
    since: float


@dataclass
class _Running:
    session: QuerySession
    task: _RunTask
    start: float
    end: float
    seq: int


class ConcurrentExecutor:
    """Admits N cascade queries and interleaves them on shared resources.

    Usage::

        ex = ConcurrentExecutor(config, library, store,
                                decoder_pool=DecoderPool(2),
                                policy=FairSharePolicy())
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 64.0)
        ex.admit(QUERY_A, "jackson", 0.8, 0.0, 32.0)
        outcomes = ex.run()

    Pools left as ``None`` are uncontended (infinite capacity), which makes
    a single admitted query reproduce the sequential engine bit-identically.
    """

    def __init__(
        self,
        config: "Configuration",
        library: "OperatorLibrary",
        store: "SegmentStore",
        *,
        policy: Optional[SchedulingPolicy] = None,
        disk_pool: Optional[DiskBandwidthPool] = None,
        decoder_pool: Optional[DecoderPool] = None,
        operator_pool: Optional[OperatorContextPool] = None,
        codec: CodecModel = DEFAULT_CODEC,
        clock: Optional[SimClock] = None,
        engines: Optional[Dict[str, "QueryEngine"]] = None,
        cache: Optional[CachePlane] = None,
        core: str = "heap",
        trace: Optional[bool] = None,
        fastpath: bool = True,
        metrics=None,
        admission: Optional[AdmissionConfig] = None,
    ):
        if core not in ("heap", "reference"):
            raise QueryError(
                f"unknown executor core {core!r}; known: heap, reference"
            )
        self.config = config
        self.library = library
        self.store = store
        self.codec = codec
        self.policy = policy or FIFOPolicy()
        self.clock = clock or SimClock()
        self.cache = cache
        #: Which event loop :meth:`run` uses: ``"heap"`` is the O(log n)
        #: engine (:mod:`repro.query.eventloop`); ``"reference"`` keeps the
        #: original rescan loop as the bit-identical parity oracle.
        self.core = core
        # A sharded store gets one I/O channel pool per disk shard
        # (``disk_pool.channels`` counts channels *per shard*), so
        # retrievals on different shards genuinely overlap; a single-shard
        # store keeps the original one-pool layout and resource names.
        # The array itself names its channel pools (``io_resources``) so
        # the ready-heap index registers one heap per spindle.
        self._disk_shards = getattr(store.disk, "n_shards", 1)
        channels = disk_pool.channels if disk_pool else None
        io_names = getattr(store.disk, "io_resources", lambda: ["disk"])()
        disk_pools = {name: _Pool(name, channels) for name in io_names}
        self._pools: Dict[str, _Pool] = {
            **disk_pools,
            "decoder": _Pool(
                "decoder", decoder_pool.contexts if decoder_pool else None
            ),
            "operators": _Pool(
                "operators", operator_pool.contexts if operator_pool else None
            ),
            # The RAM tier serving cache hits never queues anyone.
            "cache": _Pool("cache", None),
        }
        #: Task start/finish events of the last run, in simulated-time
        #: order — the raw material of the golden-trace regression tests.
        #: Recording is opt-in: ``trace=None`` (the default) records for
        #: fleets of up to :data:`TRACE_AUTO_QUERIES` queries and skips
        #: the per-event dicts beyond that; ``trace=True``/``False``
        #: forces it either way.  Event *counts* (``stats().events``) are
        #: kept regardless.
        self.trace_events: List[Dict[str, object]] = []
        self._trace_mode = trace
        self._tracing = trace if trace is not None else True
        self._events = 0
        #: Whether :meth:`run` may lower a qualifying fleet onto the
        #: vectorized fast path (:mod:`repro.query.fastpath`); the
        #: general event-heap core is used when it does not qualify.
        self._fastpath_enabled = fastpath
        self._core_used = core
        #: Always-on metrics registry
        #: (:class:`~repro.obs.metrics.MetricsRegistry`) the run feeds
        #: aggregates into, or ``None`` to skip — ``VStore.executor()``
        #: attaches the store's registry unless ``REPRO_OBS_METRICS=0``.
        self.metrics = metrics
        self._engines: Dict[str, "QueryEngine"] = dict(engines or {})
        self._sessions: List[QuerySession] = []
        #: Per-tenant shared state, created lazily at admission; the
        #: anonymous tenant ``""`` holds every untenanted session.
        self._tenants: Dict[str, TenantState] = {}
        #: Admission control (open-loop serving); ``None`` = admit-all,
        #: which is the closed-loop flow golden traces pin.
        self._admission: Optional[_AdmissionController] = (
            _AdmissionController(admission, self._tenants)
            if admission is not None else None
        )
        self._started_at: float = self.clock.now
        self._ran = False
        self._wall_seconds = 0.0
        self._admit_wall_seconds = 0.0
        self._frame_followers: Dict[tuple, int] = {}
        #: Scheduled shard failure events (:mod:`repro.storage.failures`)
        #: merged into the run's timeline, and the array (if any) whose
        #: health they flip at their instants — see
        #: :meth:`schedule_failures`.
        self._failure_events: List = []
        self._failure_array = None

    # -- admission ---------------------------------------------------------

    def _engine(self, dataset: str) -> "QueryEngine":
        if dataset not in self._engines:
            from repro.query.engine import QueryEngine

            self._engines[dataset] = QueryEngine(
                self.config, self.library, dataset, codec=self.codec,
                cache=self.cache,
            )
        return self._engines[dataset]

    def admit(
        self,
        query: "QueryCascade",
        dataset: str,
        accuracy: float,
        t0: float,
        t1: float,
        *,
        stream: Optional[str] = None,
        scheme: Optional["AlternativeScheme"] = None,
        contexts: int = 1,
        deadline: Optional[float] = None,
        plan: Optional[QueryPlan] = None,
        arrival: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> QuerySession:
        """Admit one query; its task chain is planned immediately.

        The host time this takes (planning included) accumulates into
        ``ExecutorStats.admit_wall_seconds`` — ``run()``'s wall alone
        used to silently exclude it from events/s.

        ``arrival`` places the query on the simulated timeline for
        open-loop serving: the run leaves it untouched until the clock
        reaches that instant, then routes it through admission control
        (when configured).  Omitted, the query arrives "now" — the
        closed-loop flow.  ``tenant`` names the owning tenant for
        quotas, weighted fair sharing and per-tenant SLO reporting.

        Plans are timing-independent, so a fleet of identical queries may
        pass a precomputed ``plan`` (from :meth:`QueryEngine.plan`) to
        skip re-planning per admission — how the scale benchmarks admit
        hundreds of queries without paying hundreds of planning passes.
        A supplied plan must have been planned with gang sizes that fit
        this executor's operator pool, and the session adopts the *plan's*
        context count (the ``contexts`` argument is ignored): the
        single-flight dedup re-dispatches remaining segment costs across
        ``session.contexts``, so a mismatch would silently simulate a
        different machine.
        """
        if self._ran:
            raise QueryError("executor already ran; create a new one")
        if contexts <= 0:
            raise QueryError(f"need at least one context: {contexts}")
        if arrival is not None and arrival < self.clock.now:
            raise QueryError(
                f"arrival {arrival} is in the simulated past "
                f"(clock at {self.clock.now})"
            )
        wall0 = perf_counter()
        if plan is not None:
            contexts = plan.contexts
        # A gang larger than the shared pool can never be granted; clamp so
        # the stage dispatch and the resource request agree.
        effective_contexts = self._pools["operators"].clamp(contexts)
        if plan is not None and effective_contexts != plan.contexts:
            # A clamped gang would re-dispatch deduplicated consumes over
            # fewer contexts than the plan's durations assume — a silent
            # simulation error, so refuse instead.
            raise QueryError(
                f"precomputed plan was dispatched over {plan.contexts} "
                f"contexts but the operator pool clamps to "
                f"{effective_contexts}; re-plan with fewer contexts"
            )
        if plan is None:
            plan = self._engine(dataset).plan(
                query,
                accuracy,
                self.store,
                t0,
                t1,
                stream=stream,
                scheme=scheme,
                contexts=effective_contexts,
            )
        else:
            for task in plan.tasks:
                pool = self._pools.get(task.resource)
                if (pool is not None and pool.capacity is not None
                        and task.units > pool.capacity):
                    raise QueryError(
                        f"precomputed plan needs {task.units} units of "
                        f"{task.resource!r} but the pool holds only "
                        f"{pool.capacity}; re-plan with fewer contexts"
                    )
        session = QuerySession(
            qid=len(self._sessions),
            query=query,
            dataset=dataset,
            stream=plan.stream,
            accuracy=accuracy,
            t0=t0,
            t1=t1,
            contexts=effective_contexts,
            deadline=deadline,
            plan=plan,
            admitted_at=self.clock.now,
            arrival_at=arrival,
            tenant=tenant,
            tenant_state=self._tenant_state_for(tenant),
        )
        self._sessions.append(session)
        self._admit_wall_seconds += perf_counter() - wall0
        return session

    def _tenant_state_for(self, tenant: Optional[str]) -> TenantState:
        name = tenant or ""
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(name=name)
        return state

    def admit_job(self, job: BackgroundJob,
                  deadline: Optional[float] = None, *,
                  arrival: Optional[float] = None) -> QuerySession:
        """Admit one background evolution job as a low-priority gang.

        The job becomes a session in scheduling class 1: its serial task
        chain contends honestly for the disk/decoder pools — waiting when
        they are full, holding units while running — but any foreground
        task that fits free capacity is granted first.  ``run()`` returns
        its outcome alongside the queries' (``video_seconds`` is 0, so
        analysis code can tell jobs and queries apart by ``session.klass``).

        ``arrival`` places the job on the simulated timeline the way it
        does for queries: the run leaves it untouched until the clock
        reaches that instant.  Re-replication jobs use this to start at
        the simulated moment their shard failed, not at admit time.
        """
        if self._ran:
            raise QueryError("executor already ran; create a new one")
        if not job.tasks:
            raise QueryError(f"background job {job.name!r} has no tasks")
        if arrival is not None and arrival < self.clock.now:
            raise QueryError(
                f"arrival {arrival} is in the simulated past "
                f"(clock at {self.clock.now})"
            )
        wall0 = perf_counter()
        for task in job.tasks:
            pool = self._pools.get(self._resource_name(task))
            if (pool is not None and pool.capacity is not None
                    and task.units > pool.capacity):
                raise QueryError(
                    f"background job {job.name!r} needs {task.units} units "
                    f"of {task.resource!r} but the pool holds only "
                    f"{pool.capacity}"
                )
        plan = QueryPlan(
            label=job.name,
            dataset=job.stream,
            stream=job.stream,
            video_seconds=0.0,
            stages=(StagePlan(operator=job.kind, tasks=job.tasks,
                              touched=len(job.tasks), positives=0),),
        )
        session = QuerySession(
            qid=len(self._sessions),
            query=job,
            dataset=job.stream,
            stream=job.stream,
            accuracy=0.0,
            t0=0.0,
            t1=0.0,
            contexts=1,
            deadline=deadline,
            plan=plan,
            admitted_at=self.clock.now,
            arrival_at=arrival,
            klass=1,
        )
        self._sessions.append(session)
        self._admit_wall_seconds += perf_counter() - wall0
        return session

    def schedule_failures(self, events, *, array=None) -> None:
        """Put a failure campaign's events on the run's timeline.

        ``events`` is an iterable of
        :class:`~repro.storage.failures.FailureEvent` (or a
        :class:`~repro.storage.failures.FailureCampaign`); the run merges
        them with arrivals and completions in simulated-time order —
        completions win ties against an event, events fire before
        arrivals at the same instant, and trailing events extend the
        makespan (the clock idles forward to them).  Each event emits a
        paired zero-duration ``start``/``finish`` trace record under the
        pseudo-query label ``"failures"``.

        When ``array`` is given (a
        :class:`~repro.storage.sharding.ShardedDiskArray`), each event's
        health transition is applied to it at its instant via the
        idempotent :func:`~repro.storage.failures.apply_event`; rebuild
        work a mid-run ``fail`` surfaces is the caller's to schedule —
        jobs cannot be admitted once the run started.  Left ``None``, the
        events are purely observational (trace + clock), which is how
        ``VStore.serve`` uses them: the facade already applied the
        campaign to the array during its planning pass, so replaying the
        mutations here would double-apply them.
        """
        if self._ran:
            raise QueryError("executor already ran; create a new one")
        incoming = sorted(events, key=lambda e: e.t)
        for event in incoming:
            if event.t < self.clock.now:
                raise QueryError(
                    f"failure event at {event.t} is in the simulated past "
                    f"(clock at {self.clock.now})"
                )
        merged = sorted(self._failure_events + incoming, key=lambda e: e.t)
        self._failure_events = merged
        if array is not None:
            self._failure_array = array

    def _apply_failure_event(self, event) -> None:
        """Fire one scheduled failure event at the current instant.

        Flips the array's health when one was attached
        (:meth:`schedule_failures`), and emits the paired start/finish
        trace records either way.  Mid-run rebuild work is dropped here
        by design — see :meth:`schedule_failures`.
        """
        if self._failure_array is not None:
            from repro.storage.failures import apply_event

            apply_event(self._failure_array, event)
        t = self.clock.now
        resource = (
            f"disk:{event.shard % self._disk_shards}"
            if self._disk_shards > 1 else "disk"
        )
        operator = f"shard{event.shard}"
        for lifecycle in ("start", "finish"):
            self._events += 1
            if self._tracing:
                self.trace_events.append(task_event(
                    lifecycle, t, "failures", event.action, operator,
                    resource, 0.0,
                ))

    @property
    def sessions(self) -> List[QuerySession]:
        return list(self._sessions)

    @property
    def admission_timeline(self) -> List[Tuple[float, int, int]]:
        """``(t, queued, in_flight)`` samples from admission control,
        one per change instant; empty without an :class:`AdmissionConfig`."""
        if self._admission is None:
            return []
        return list(self._admission.timeline)

    @property
    def started_at(self) -> float:
        """Simulated instant the run began — the trace's time origin."""
        return self._started_at

    # -- single-flight chain transformation --------------------------------

    def _runtime_chains(self) -> Dict[int, List[_RunTask]]:
        """Materialize each session's chain as runtime tasks.

        Without a cache plane (or with single-flight disabled) every plan
        task maps through verbatim.  With one, duplicate work across the
        admitted sessions is deduplicated in admission order:

        * a retrieval whose frame-cache key an earlier task already misses
          on becomes a *follower*: it runs on the RAM tier for the hit
          cost, but only after the leader's retrieval completed (the
          follower waits on the in-flight entry instead of re-reading);
        * a stage consume whose result keys an earlier consume already
          produces drops those segments' costs and waits on the producer.

        Dependency edges always point at tasks created earlier in this
        scan, and every session's own chain is serial, so the dependency
        graph is acyclic and the event loop cannot deadlock.
        """
        single_flight = (self.cache is not None
                         and self.cache.config.single_flight)
        chains: Dict[int, List[_RunTask]] = {}
        uid = 0
        frame_leaders: Dict[tuple, int] = {}
        result_leaders: Dict[tuple, int] = {}
        self._frame_followers = {}

        for session in self._sessions:
            chain: List[_RunTask] = []
            for stage in session.plan.stages:
                for task in stage.tasks:
                    if task.kind != "consume":
                        # Retrievals, plus every background-job task kind
                        # ("read"/"transcode"/"write"/"delete"): all route
                        # through shard-aware resource naming; job tasks
                        # carry no cache access, so they map verbatim.
                        rt = self._runtime_retrieve(task, uid, single_flight,
                                                    frame_leaders)
                    else:
                        rt = self._runtime_consume(task, stage, session, uid,
                                                   single_flight,
                                                   result_leaders)
                    chain.append(rt)
                    uid += 1
            chains[session.qid] = chain
        return chains

    def _resource_name(self, task: ResourceTask) -> str:
        """The pool a task runs on: disk retrievals route to their shard."""
        if task.resource == "disk" and self._disk_shards > 1:
            return f"disk:{task.shard % self._disk_shards}"
        return task.resource

    def _runtime_retrieve(self, task: ResourceTask, uid: int,
                          single_flight: bool,
                          leaders: Dict[tuple, int]) -> _RunTask:
        access = task.access
        if access is None or task.hit:
            # No cache, or a committed hit already planned on the RAM tier.
            return _RunTask(task=task, resource=self._resource_name(task),
                            units=task.units, duration=task.duration,
                            category=task.category, uid=uid,
                            note_access=access)
        if single_flight and access.key in leaders:
            self._frame_followers[access.key] = (
                self._frame_followers.get(access.key, 0) + 1
            )
            return _RunTask(task=task, resource="cache", units=1,
                            duration=access.hit_seconds, category="cache",
                            uid=uid, deps=(leaders[access.key],),
                            follower_access=access, note_access=access)
        leaders[access.key] = uid
        return _RunTask(task=task, resource=self._resource_name(task),
                        units=task.units,
                        duration=task.duration, category=task.category,
                        uid=uid, commit_access=access, note_access=access)

    def _runtime_consume(self, task: ResourceTask, stage: StagePlan,
                         session: QuerySession, uid: int,
                         single_flight: bool,
                         leaders: Dict[tuple, int]) -> _RunTask:
        if self.cache is None or not stage.result_keys:
            return _RunTask(task=task, resource=task.resource,
                            units=task.units, duration=task.duration,
                            category=task.category, uid=uid,
                            hit_results=stage.result_hits)
        costs = list(stage.consume_costs)
        deps: List[int] = []
        produced: List[Tuple[tuple, float, float]] = []
        dedup_count = 0
        dedup_saved = 0.0
        for i, (cost, key, nbytes) in enumerate(
                zip(costs, stage.result_keys, stage.result_nbytes)):
            if key is None or cost <= 0:
                continue  # uncached segment, or already a committed hit
            if single_flight and key in leaders:
                deps.append(leaders[key])
                dedup_count += 1
                dedup_saved += cost
                costs[i] = 0.0
            else:
                leaders[key] = uid
                produced.append((key, cost, nbytes))
        if dedup_count:
            duration = dispatch(costs, session.contexts).makespan
        else:
            duration = task.duration  # nothing zeroed: plan makespan holds
        # Dedup zeroed more segments: re-clamp the gang to remaining work.
        busy_segments = sum(1 for c in costs if c > 0)
        units = max(1, min(task.units, busy_segments))
        return _RunTask(task=task, resource=task.resource, units=units,
                        duration=duration, category=task.category, uid=uid,
                        deps=tuple(sorted(set(deps))),
                        produced_results=tuple(produced),
                        hit_results=stage.result_hits,
                        dedup_count=dedup_count, dedup_saved=dedup_saved)

    def _trace(self, event: str, session: QuerySession, rt: _RunTask,
               t: float) -> None:
        """Append one task lifecycle event to the run's trace.

        Always counts the event (``stats().events`` stays honest for
        untraced runs); the dict is only allocated when tracing is on.
        """
        self._events += 1
        if not self._tracing:
            return
        self.trace_events.append(task_event(
            event, t, session.label, rt.kind, rt.operator, rt.resource,
            rt.duration,
        ))

    def _task_completed(self, rt: _RunTask) -> None:
        """Cache/job bookkeeping when a runtime task finishes in simulated
        time."""
        if rt.task.on_done is not None:
            # Background jobs commit their store side effect here, at the
            # simulated instant the work completed — before any cache
            # bookkeeping, and regardless of whether a cache is attached.
            rt.task.on_done()
        if self.cache is None:
            return
        if rt.commit_access is not None:
            self.cache.commit_frames(
                rt.commit_access,
                pins=self._frame_followers.get(rt.commit_access.key, 0),
            )
        if rt.follower_access is not None:
            self.cache.serve_follower(rt.follower_access)
        if rt.task.hit and rt.note_access is not None:
            self.cache.record_frame_hit(rt.note_access)
        if rt.note_access is not None:
            self.cache.note_access(rt.note_access)
        for key, saved, nbytes in rt.produced_results:
            self.cache.results.commit(key, saved, nbytes=nbytes)
        for key, saved in rt.hit_results:
            self.cache.record_result_hit(key, saved)
        if rt.dedup_count:
            self.cache.dedup_consume(rt.dedup_saved, rt.dedup_count)

    # -- the event loop ----------------------------------------------------

    def run(self) -> List[QueryOutcome]:
        """Run all admitted queries to completion; returns them in admit order.

        Dispatches to the O(log n) event-heap core
        (:mod:`repro.query.eventloop`) or, when constructed with
        ``core="reference"``, to the original rescan loop — kept verbatim
        as the parity oracle the golden-trace and Hypothesis tests replay
        against.  Both cores are bit-identical in outcomes and traces.
        """
        if self._ran:
            raise QueryError("executor already ran; create a new one")
        self._ran = True
        self._started_at = self.clock.now
        self.trace_events = []
        self._events = 0
        self._tracing = (
            len(self._sessions) <= TRACE_AUTO_QUERIES
            if self._trace_mode is None else self._trace_mode
        )
        self._core_used = self.core
        # Chain materialization (and, for qualifying fleets, the fast
        # path's array lowering) happens outside the timed window: the
        # wall-clock below measures the executor core itself, the same
        # methodology the PR 5 scale benchmarks pinned.
        fleet = None
        chains = None
        if self.core == "heap" and self._fastpath_enabled:
            from repro.query.fastpath import lower_fleet

            fleet = lower_fleet(self)  # None when the fleet disqualifies
        if fleet is None:
            # plan.tasks flattens the stage chains on every access;
            # materialize each chain once (applying the single-flight
            # dedup when a cache plane is attached) so the loop stays
            # linear in the task count.
            chains = self._runtime_chains()
        wall0 = perf_counter()
        if self.core == "reference":
            self._run_reference(chains)
        elif fleet is not None:
            from repro.query.fastpath import run_fastpath

            self._core_used = "fastpath"
            run_fastpath(self, fleet)
        else:
            self._run_heap(chains)
        if self.metrics is not None:
            # Fold aggregates inside the timed window so the CI overhead
            # gate (metrics-on vs metrics-off smoke, diffed at 5%)
            # measures the registry's true cost.
            self.metrics.observe_executor(self.stats(), self._sessions)
        self._wall_seconds = perf_counter() - wall0
        if self.metrics is not None:
            self.metrics.observe_wall(self.stats())
        # Close the cross-layer loop: after the run, migrate segments the
        # access stats marked hot (the migration I/O is on the clock).
        if self.cache is not None and self.cache.tiers is not None:
            self.cache.sweep_tiers(self.clock, self.store.disk)
        return [self._outcome(s) for s in self._sessions]

    def _complete(self, done: _Running) -> None:
        """Shared completion bookkeeping: clock, pool, service, trace.

        Called by both cores with the same task in the same order, so the
        float accumulation (and therefore every downstream number) is
        identical between them.
        """
        # When the completing task started at the current instant (always
        # true for a lone query), charge its exact duration so the N=1
        # path accumulates the same floats as sequential execution.
        if self.clock.now == done.start:
            self.clock.charge(done.task.duration, done.task.category)
        else:
            self.clock.advance_to(done.end, done.task.category)
        pool = self._pools[done.task.resource]
        pool.in_use -= done.task.units
        pool.busy_seconds += done.task.units * done.task.duration
        session = done.session
        service = session.service_by_resource
        service[done.task.resource] = (
            service.get(done.task.resource, 0.0) + done.task.duration
        )
        session.prio_version += 1  # attained service moved: stamp it
        tenant = session.tenant_state
        if tenant is not None:
            tenant.service += done.task.duration
            tenant.stamp += 1
        self._trace("finish", session, done.task, self.clock.now)
        self._task_completed(done.task)

    def _deadlock_error(self, blocked: List[_Waiting]) -> QueryError:
        """Name the stuck work: every blocked (qid, resource, units) triple."""
        triples = ", ".join(
            f"(q{qid}, {resource}, {units})"
            for qid, resource, units in blocked_triples(blocked)
        )
        return QueryError(
            f"deadlock: {len(blocked)} waiting task(s) but nothing "
            f"running; blocked (qid, resource, units): {triples}"
        )

    def _run_heap(self, chains: Dict[int, List[_RunTask]]) -> None:
        """The event-heap core: every scheduling decision is O(log n).

        Ready tasks live in per-resource heaps keyed by (policy priority,
        seq) with lazy invalidation, completions in one (end, seq) heap,
        and dependency counters wake single-flight followers through the
        event queue — see :mod:`repro.query.eventloop` for the exact
        equivalence argument against the reference loop.

        Completions are drained in *same-timestamp batches*
        (:meth:`CompletionHeap.pop_batch`): the clock only moves on the
        batch's first entry, and the remaining entries skip the heap's
        per-pop bookkeeping.  Two orderings inside a batch are sacred and
        deliberately **not** batched, because collapsing them diverges
        from the reference loop:

        * each completion runs its own grant round before the next
          completion's units are released — with parked multi-unit gangs,
          a small task legitimately backfills after a partial release
          even though the batch's *aggregate* release would have fitted
          the gang first;
        * each completion submits its session's successor (taking the
          next ``seq``) before later batch entries are processed, so
          same-timestamp tie-breaks keep the reference's seq order.

        What makes the batch pass cheap is that each grant round only
        scans the *dirty* resources — the pools whose free capacity grew
        or that received new ready entries since the previous round; all
        other pools provably have no fitting head (their last round ended
        empty-handed and nothing changed), so the restricted scan grants
        exactly what the full scan would at a fraction of the cost.
        """
        policy = self.policy
        pools = self._pools
        ready = ReadyHeapIndex(
            # The scheduling class bands the policy key: background
            # evolution jobs (klass 1) sort after every foreground task.
            priority=lambda w: (
                (w.session.klass,)
                + tuple(policy.priority(w.session, w.task, w.seq))
            ),
            # Tenant-level service (WeightedFairSharePolicy's key) moves
            # without the session's own stamp moving, so under that
            # policy the entry version folds in the tenant stamp.  Every
            # other policy keys off per-session state only; the plain
            # int version keeps the per-validation cost off the hot path.
            version=(
                (lambda w: (
                    w.session.prio_version,
                    w.session.tenant_state.stamp
                    if w.session.tenant_state is not None else 0,
                ))
                if isinstance(policy, WeightedFairSharePolicy)
                else (lambda w: w.session.prio_version)
            ),
            free_units=lambda resource: pools[resource].free,
        )
        for name in pools:
            ready.register(name)
        deps = DependencyTracker(chains.values())
        completions = CompletionHeap()
        seq = 0

        def submit_next(session: QuerySession) -> Optional[str]:
            """Submit the session's next task; returns the resource it
            became ready on (``None`` when the chain ended or the task
            parked on unfinished dependencies)."""
            nonlocal seq
            tasks = chains[session.qid]
            if session._cursor >= len(tasks):
                session.finished_at = self.clock.now
                return None
            task = tasks[session._cursor]
            session._cursor += 1
            w = _Waiting(session, task, seq, self.clock.now)
            seq += 1
            if deps.submit(w):
                ready.push(task.resource, w)
                return task.resource
            return None

        def grant(dirty=None) -> None:
            nonlocal seq
            while True:
                w = ready.pop_best(dirty)
                if w is None:
                    return
                pool = pools[w.task.resource]
                pool.in_use += w.task.units
                now = self.clock.now
                w.session.waited_seconds += now - w.since
                completions.push(
                    now + w.task.duration, seq,
                    _Running(w.session, w.task, now, now + w.task.duration,
                             seq),
                )
                self._trace("start", w.session, w.task, now)
                seq += 1

        admission = self._admission
        start = self.clock.now
        arrivals = TimelineCursor(
            sorted((s for s in self._sessions if s.arrival_at > start),
                   key=lambda s: (s.arrival_at, s.qid)),
            timestamp=lambda s: s.arrival_at,
        )

        def enter_all(entering: List[QuerySession], dirty=None) -> None:
            """Admit sessions into the executor proper: stamp their entry,
            submit their first tasks.  A session whose (empty) chain
            finishes instantly releases its admission slot immediately,
            which may let further queued sessions in — hence the work
            list instead of recursion."""
            work = list(entering)
            while work:
                s = work.pop(0)
                s.entered_at = self.clock.now
                s.queued_seconds = self.clock.now - s.arrival_at
                resource = submit_next(s)
                if resource is not None:
                    if dirty is not None:
                        dirty.add(resource)
                elif (s.finished_at is not None and admission is not None
                        and s.klass == 0):
                    work.extend(admission.finish(s, self.clock.now))

        def arrive(s: QuerySession, dirty=None) -> None:
            if admission is None or s.klass != 0:
                # Closed-loop flow, or a background job: admission
                # control never gates scheduling class 1.
                enter_all([s], dirty)
            else:
                enter_all(admission.arrive(s, self.clock.now), dirty)

        for session in self._sessions:
            if session.arrival_at <= start:
                arrive(session)
        grant()

        cache = self.cache
        failures = TimelineCursor(self._failure_events,
                                  timestamp=lambda e: e.t)
        while len(completions) or len(arrivals) or len(failures):
            # Interleave completions with arrivals and failure events in
            # simulated-time order; completions win ties, so work
            # finishing at an arrival's (or failure's) instant frees
            # capacity before admission runs — the reference core breaks
            # the same ties the same way.  Failure events fire before
            # arrivals at the same instant: a query arriving as the
            # shard dies sees it dead.
            next_arrival = arrivals.next_t()
            next_failure = failures.next_t()
            if len(completions) and (
                    completions.next_end()
                    <= min(next_arrival, next_failure)):
                for done in completions.pop_batch():
                    self._complete(done)
                    resource = done.task.resource
                    dirty = {resource}
                    released = deps.complete(done.task.uid)
                    if released:
                        # Single-flight followers (and deduplicated
                        # consumes) wake up here, through the event queue
                        # — never via a rescan.
                        if cache is not None:
                            cache.note_wakeups(len(released))
                        for w in released:
                            ready.push(w.task.resource, w)
                            dirty.add(w.task.resource)
                    ready.release(resource)
                    next_resource = submit_next(done.session)
                    if next_resource is not None:
                        dirty.add(next_resource)
                    elif (done.session.finished_at is not None
                            and admission is not None
                            and done.session.klass == 0):
                        enter_all(
                            admission.finish(done.session, self.clock.now),
                            dirty,
                        )
                    grant(dirty)
            elif len(failures) and next_failure <= next_arrival:
                if next_failure > self.clock.now:
                    self.clock.advance_to(next_failure, "idle")
                for event in failures.pop_batch():
                    self._apply_failure_event(event)
                # A health flip frees no pool capacity and readies no
                # task, so no grant round is needed.
            else:
                self.clock.advance_to(next_arrival, "idle")
                dirty: set = set()
                for session in arrivals.pop_batch():
                    arrive(session, dirty)
                grant(dirty)

        blocked = list(ready.pending()) + deps.parked()
        if blocked:  # pragma: no cover - guarded by the acyclic dedup graph
            raise self._deadlock_error(blocked)
        if admission is not None and admission.queued:  # pragma: no cover
            raise QueryError(
                f"admission queue stuck with {admission.queued} session(s) "
                f"and nothing running"
            )

    def _run_reference(self, chains: Dict[int, List[_RunTask]]) -> None:
        """The original O(n)-per-event rescan loop — the parity oracle.

        The golden traces were produced by this loop, and the Hypothesis
        property replays random fleets through both cores.  Do not
        optimize it: for closed-loop fleets (every arrival at or before
        the run start, no admission control) the flow below reduces
        exactly to what PR 2 shipped — ``arrivals`` is empty, ``arrive``
        is a plain ``submit_next``, and the completion loop is the
        original ``while running`` — which the golden traces still pin
        byte-for-byte.  Open-loop fleets interleave future arrivals with
        completions in simulated-time order, completions winning ties,
        mirroring the heap core's batching rule.
        """
        waiting: List[_Waiting] = []
        running: List[_Running] = []
        completed: set = set()  # uids of finished runtime tasks
        seq = 0

        def submit_next(session: QuerySession) -> None:
            nonlocal seq
            tasks = chains[session.qid]
            if session._cursor >= len(tasks):
                session.finished_at = self.clock.now
                return
            task = tasks[session._cursor]
            session._cursor += 1
            waiting.append(_Waiting(session, task, seq, self.clock.now))
            seq += 1

        def grant() -> None:
            nonlocal seq
            while True:
                fitting = [
                    w for w in waiting
                    if self._pools[w.task.resource].fits(w.task.units)
                    and all(d in completed for d in w.task.deps)
                ]
                if not fitting:
                    return
                w = min(
                    fitting,
                    # The class band mirrors the heap core's: a constant
                    # prefix for all-foreground fleets, so pre-existing
                    # schedules are unchanged.
                    key=lambda w: (
                        w.session.klass,
                        self.policy.priority(w.session, w.task, w.seq),
                        w.seq,
                    ),
                )
                waiting.remove(w)
                pool = self._pools[w.task.resource]
                pool.in_use += w.task.units
                now = self.clock.now
                w.session.waited_seconds += now - w.since
                running.append(
                    _Running(w.session, w.task, now, now + w.task.duration, seq)
                )
                self._trace("start", w.session, w.task, now)
                seq += 1

        admission = self._admission
        start = self.clock.now
        arrivals = TimelineCursor(
            sorted((s for s in self._sessions if s.arrival_at > start),
                   key=lambda s: (s.arrival_at, s.qid)),
            timestamp=lambda s: s.arrival_at,
        )

        def enter_all(entering: List[QuerySession]) -> None:
            work = list(entering)
            while work:
                s = work.pop(0)
                s.entered_at = self.clock.now
                s.queued_seconds = self.clock.now - s.arrival_at
                submit_next(s)
                if (s.finished_at is not None and admission is not None
                        and s.klass == 0):
                    work.extend(admission.finish(s, self.clock.now))

        def arrive(s: QuerySession) -> None:
            if admission is None or s.klass != 0:
                enter_all([s])
            else:
                enter_all(admission.arrive(s, self.clock.now))

        for session in self._sessions:
            if session.arrival_at <= start:
                arrive(session)
        grant()

        failures = TimelineCursor(self._failure_events,
                                  timestamp=lambda e: e.t)
        while running or len(arrivals) or len(failures):
            done = (min(running, key=lambda r: (r.end, r.seq))
                    if running else None)
            next_arrival = arrivals.next_t()
            next_failure = failures.next_t()
            if done is not None and (
                    done.end <= min(next_arrival, next_failure)):
                running.remove(done)
                completed.add(done.task.uid)
                self._complete(done)
                submit_next(done.session)
                if (done.session.finished_at is not None
                        and admission is not None
                        and done.session.klass == 0):
                    enter_all(admission.finish(done.session, self.clock.now))
                grant()
            elif len(failures) and next_failure <= next_arrival:
                if next_failure > self.clock.now:
                    self.clock.advance_to(next_failure, "idle")
                for event in failures.pop_batch():
                    self._apply_failure_event(event)
            else:
                self.clock.advance_to(next_arrival, "idle")
                for session in arrivals.pop_batch():
                    arrive(session)
                grant()

        if waiting:  # pragma: no cover - guarded by the acyclic dedup graph
            raise self._deadlock_error(waiting)
        if admission is not None and admission.queued:  # pragma: no cover
            raise QueryError(
                f"admission queue stuck with {admission.queued} session(s) "
                f"and nothing running"
            )

    def _outcome(self, session: QuerySession) -> QueryOutcome:
        from repro.query.engine import ExecutionResult

        latency = session.finished_at - session.arrival_at
        video = session.plan.video_seconds
        return QueryOutcome(
            session=session,
            result=ExecutionResult(
                query=session.plan.label,
                dataset=session.dataset,
                video_seconds=video,
                compute_seconds=latency,
                speed=float("inf") if latency <= 0 else video / latency,
                positives_per_stage=session.plan.positives_per_stage,
                segments_per_stage=session.plan.segments_per_stage,
            ),
        )

    # -- accounting --------------------------------------------------------

    def stats(self) -> ExecutorStats:
        """Aggregate resource accounting (meaningful after :meth:`run`)."""
        return ExecutorStats(
            policy=self.policy.name,
            n_queries=len(self._sessions),
            makespan=self.clock.now - self._started_at,
            capacities={name: p.capacity for name, p in self._pools.items()},
            busy_seconds={name: p.busy_seconds for name, p in self._pools.items()},
            core=self._core_used,
            events=self._events,
            wall_seconds=self._wall_seconds,
            admit_wall_seconds=self._admit_wall_seconds,
        )
