"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs `wheel` for PEP 660 editable builds; this shim
lets `python setup.py develop` (or legacy pip) work offline.
"""
from setuptools import setup

setup()
