"""Diff: frame-difference detector (NoScope's cheap first filter).

Diff compares consecutive frames and flags those that changed enough to be
worth deeper analysis.  It is extremely cheap (a per-pixel subtraction) but
sensitive to image quality: compression artifacts masquerade as change, so
its accuracy collapses quickly below ``best``/``good`` quality — which is
why Table 3 shows VStore keeping ``best`` quality for Diff at every
accuracy level while shrinking resolution aggressively.
"""

from __future__ import annotations

import numpy as np

from repro.operators.signal_op import SignalOperator
from repro.video.content import ClipTruth
from repro.video.fidelity import Fidelity


class DiffOperator(SignalOperator):
    """Frame-difference detector [NoScope]."""

    name = "Diff"
    platform = "gpu"

    # Cost: one pass of pixel arithmetic on GPU; effectively free per frame.
    cost_base = 6e-6
    cost_per_mp = 6.0e-5
    cost_gamma = 1.0

    # Signal: frame-to-frame change — camera motion plus object movement.
    threshold = 0.055
    noise_floor = 5.0e-4
    quality_noise = 0.11  # compression artifacts look like change
    quality_alpha = 1.1
    detect_theta = 1.6  # even small moving blobs change pixels
    detect_width = 0.7
    camera_weight = 1.0

    #: Measurement noise per second of inter-sample gap: Diff compares the
    #: two most recent *consumed* frames, and change accumulated across a
    #: long gap swamps the per-frame difference it is meant to detect.
    gap_noise_per_second: float = 0.045

    def object_contribution(self, clip: ClipTruth) -> np.ndarray:
        """Inter-frame change scales with object area swept per frame."""
        if not clip.tracks:
            return np.zeros(0)
        return np.array(
            [t.size * min(1.2, t.speed / 0.04) * 0.9 for t in clip.tracks]
        )

    def noise_scale(self, fidelity: Fidelity) -> float:
        gap_seconds = (1.0 / float(fidelity.sampling) - 1.0) / 30.0
        return (
            super().noise_scale(fidelity)
            + self.gap_noise_per_second * gap_seconds
        )
