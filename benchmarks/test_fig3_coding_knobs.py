"""Figure 3: impacts of coding knobs on a 100-second tucson clip.

(a) speed step trades encoding speed (~40x range) against video size
    (~2.5x range), with decoding mildly affected;
(b) keyframe interval trades video size against decode-time chunk skipping
    when the consumer samples sparsely.
"""

from fractions import Fraction

from repro.codec.model import DEFAULT_CODEC
from repro.ingest.pipeline import IngestionPipeline
from repro.clock import SimClock
from repro.video.coding import Coding, KEYFRAME_INTERVALS, SPEED_STEPS
from repro.video.fidelity import richest_fidelity

CLIP_SECONDS = 100.0


def _tucson_activity() -> float:
    return IngestionPipeline(
        "tucson", [], clock=SimClock()
    ).mean_activity()


def test_fig3a_speed_step(benchmark, record):
    fid = richest_fidelity()
    activity = _tucson_activity()

    def sweep():
        rows = []
        for step in SPEED_STEPS:
            coding = Coding(step, 250)
            rows.append((
                step,
                DEFAULT_CODEC.encode_speed(fid, coding),
                DEFAULT_CODEC.decode_speed(fid, coding),
                DEFAULT_CODEC.encoded_bytes_per_second(fid, coding, activity)
                * CLIP_SECONDS / 2**20,
            ))
        return rows

    rows = benchmark(sweep)
    lines = [f"{'step':>8} {'encode':>9} {'decode':>9} {'size(MB)':>9}"]
    for step, enc, dec, size in rows:
        lines.append(f"{step:>8} {enc:>8.1f}x {dec:>8.1f}x {size:>9.1f}")
    record("Figure 3a — speed step", "\n".join(lines))

    encodes = [r[1] for r in rows]
    sizes = [r[3] for r in rows]
    assert encodes[-1] / encodes[0] > 30  # ~40x encode-speed range
    assert 2.0 < sizes[-1] / sizes[0] < 3.0  # ~2.5x size range


def test_fig3b_keyframe_interval(benchmark, record):
    fid = richest_fidelity()
    activity = _tucson_activity()

    def sweep():
        rows = []
        for kf in sorted(KEYFRAME_INTERVALS, reverse=True):
            coding = Coding("slowest", kf)
            rows.append((
                kf,
                DEFAULT_CODEC.decode_speed(fid, coding, Fraction(1, 30)),
                DEFAULT_CODEC.decode_speed(fid, coding, Fraction(1)),
                DEFAULT_CODEC.encoded_bytes_per_second(fid, coding, activity)
                * CLIP_SECONDS / 2**20,
            ))
        return rows

    rows = benchmark(sweep)
    lines = [f"{'kf':>5} {'dec@1/30':>9} {'dec@1':>9} {'size(MB)':>9}"]
    for kf, sparse, dense, size in rows:
        lines.append(f"{kf:>5} {sparse:>8.0f}x {dense:>8.1f}x {size:>9.1f}")
    record("Figure 3b — keyframe interval", "\n".join(lines))

    sparse_speeds = [r[1] for r in rows]
    sizes = [r[3] for r in rows]
    # Smaller intervals decode several-fold faster under sparse sampling...
    assert sparse_speeds[-1] > 4 * sparse_speeds[0]
    # ...at the cost of a larger encoded video.
    assert sizes[-1] > 1.5 * sizes[0]
