"""The operator library (Table 2) and its accuracy/cost machinery.

Operators are the algorithmic consumers of Section 2.  Each one exposes:

* a **consumption cost** model — simulated CPU/GPU seconds per consumed
  frame as a function of fidelity (never of image quality: observation O2);
* a **detection model** — how well it recovers ground truth as a function
  of fidelity.  Accuracy is *measured* as an F1 score against the
  operator's own output at the ingest fidelity (the paper's ground-truth
  convention), via expected confusion counts over a clip's synthetic
  ground truth.  Both accuracy and cost are monotone in every fidelity
  knob (observation O1).

Nine operators are provided, matching Table 2: Diff, S-NN, NN, Motion,
License, OCR, Opflow, Color, Contour.
"""

from repro.operators.accuracy import Confusion, f1_score
from repro.operators.base import Operator
from repro.operators.color import ColorOperator
from repro.operators.contour import ContourOperator
from repro.operators.detector import DetectorOperator
from repro.operators.diff import DiffOperator
from repro.operators.library import (
    Consumer,
    OperatorLibrary,
    default_library,
)
from repro.operators.license import LicenseOperator
from repro.operators.motion import MotionOperator
from repro.operators.nn import NNOperator
from repro.operators.ocr import OCROperator
from repro.operators.opflow import OpflowOperator
from repro.operators.signal_op import SignalOperator
from repro.operators.snn import SNNOperator

__all__ = [
    "ColorOperator",
    "Confusion",
    "Consumer",
    "ContourOperator",
    "DetectorOperator",
    "DiffOperator",
    "LicenseOperator",
    "MotionOperator",
    "NNOperator",
    "OCROperator",
    "OpflowOperator",
    "Operator",
    "OperatorLibrary",
    "SignalOperator",
    "SNNOperator",
    "default_library",
    "f1_score",
]
