"""The unified observability plane.

Three modules, one contract:

* :mod:`repro.obs.trace` — the locked task-event schema, its single
  shared constructor (used by all three executor cores), and the typed
  interval/span views built on the raw stream;
* :mod:`repro.obs.metrics` — the always-on counters/gauges/log-bucket
  histograms registry the executor, cache plane, sharded disks and
  drift detector feed;
* :mod:`repro.obs.export` — deterministic Chrome trace-event JSON (for
  Perfetto / ``chrome://tracing``) and the columnar analytics tier
  (Parquet when pyarrow exists, JSONL fallback; pandas/DuckDB-ready).

:class:`Observability` is the store-level facade ``VStore.observability()``
returns: the last run's trace plus the store's registry, with one-call
exports and critical-path/queue analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, metrics_enabled
from repro.obs.trace import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    QuerySpan,
    TaskInterval,
    TraceEvent,
    intervals_from_events,
    query_spans,
    task_event,
    validate_events,
)

__all__ = [
    "Observability",
    "RunRecord",
    "MetricsRegistry",
    "metrics_enabled",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "QuerySpan",
    "TaskInterval",
    "TraceEvent",
    "intervals_from_events",
    "query_spans",
    "task_event",
    "validate_events",
]


@dataclass
class RunRecord:
    """What the store retains of its most recent concurrent run."""

    events: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = 0.0  # sim instant the run began (trace origin)
    stats: Optional[object] = None  # ExecutorStats of the run


@dataclass
class Observability:
    """Store-level observability facade (``VStore.observability()``).

    Bundles the always-on metrics registry with the most recent run's
    trace so one object answers "what happened and where did time go":

    * :meth:`export` writes the whole bundle (Chrome trace + columnar
      tables) into a directory;
    * :meth:`critical_paths` / :meth:`queue_depths` analyze the last
      trace; :meth:`spans` returns the typed per-query spans;
    * :meth:`summary` renders the CLI-facing text report.

    Traces are recorded when the executor traced the run (automatic up
    to 64 queries, forced via ``trace=True``); metrics aggregate always.
    """

    metrics: MetricsRegistry
    last_run: Optional[RunRecord] = None

    def _events(self) -> List[Dict[str, object]]:
        if self.last_run is None or not self.last_run.events:
            raise ValueError(
                "no traced run recorded; run a fleet first (fleets over 64 "
                "queries need trace=True to record events)"
            )
        return self.last_run.events

    # -- typed views -------------------------------------------------------

    def intervals(self) -> List[TaskInterval]:
        record = self.last_run
        return intervals_from_events(self._events(), record.started_at)

    def spans(self) -> List[QuerySpan]:
        record = self.last_run
        return query_spans(self._events(), record.started_at)

    # -- analysis ----------------------------------------------------------

    def critical_paths(self):
        from repro.analysis.obs import critical_paths

        record = self.last_run
        return critical_paths(self._events(), record.started_at)

    def queue_depths(self):
        from repro.analysis.obs import queue_depth_series

        record = self.last_run
        return queue_depth_series(self._events(), record.started_at)

    # -- export ------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        from repro.obs.export import chrome_trace

        record = self.last_run
        return chrome_trace(self._events(), record.started_at)

    def export(self, outdir: str,
               bench_path: Optional[str] = None) -> Dict[str, str]:
        """Write the full bundle; returns ``{table: path}``.

        Exports whatever exists: the last traced run (if any), the
        metrics snapshot, and optionally a BENCH.json history.
        """
        from repro.obs.export import export_run

        events: List[Dict[str, object]] = []
        start = None
        if self.last_run is not None and self.last_run.events:
            events = self.last_run.events
            start = self.last_run.started_at
        return export_run(
            outdir,
            events=events,
            metrics_rows=self.metrics.rows(),
            bench_path=bench_path,
            start_time=start,
        )

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Critical-path + queue-depth + metrics text report."""
        from repro.analysis.obs import (
            format_critical_path_table,
            format_metrics_table,
            format_queue_depth_table,
        )

        parts: List[str] = []
        if self.last_run is not None and self.last_run.events:
            parts.append(format_critical_path_table(self.critical_paths()))
            parts.append(format_queue_depth_table(self.queue_depths()))
        parts.append(format_metrics_table(self.metrics.snapshot()))
        return "\n\n".join(p for p in parts if p)
