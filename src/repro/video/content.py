"""Synthetic scene content: the ground truth behind every dataset.

The paper evaluates on six real videos.  Offline we cannot ship those, so
each dataset is replaced by a deterministic generative model of its *content*
— the aspects analytics actually observe:

* **tracks**: vehicles (and people) entering the scene, moving along linear
  trajectories and leaving; each has a size, speed, color, and possibly a
  readable license plate;
* **per-frame activity**: how much the image changes frame to frame, which
  drives both codec efficiency (motion makes video bigger) and the behaviour
  of Diff/Motion-style operators.

Everything is seeded from the dataset name and the absolute time window, so
any clip can be regenerated bit-identically at any point of the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rng import rng_for
from repro.video.fidelity import Fidelity, INGEST_FPS

#: Length of the generation window; tracks are drawn per window.
WINDOW_SECONDS = 64.0

#: Colors a vehicle may have (the Color operator searches for one of these).
VEHICLE_COLORS: Tuple[str, ...] = ("white", "black", "silver", "red", "blue")

#: Characters a synthetic license plate is made of.
_PLATE_ALPHABET = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"


@dataclass(frozen=True)
class Track:
    """One object moving through the scene during [t0, t1]."""

    tid: int
    kind: str  # "car" or "person"
    t0: float
    t1: float
    x0: float  # normalized center position at t0
    y0: float
    vx: float  # normalized units per second
    vy: float
    size: float  # normalized bbox height (fraction of frame height)
    speed: float  # |velocity| in normalized units/s (cached for convenience)
    color: str
    plate: Optional[str]  # license plate text, None if not readable
    contrast: float  # 0..1, how much the object stands out
    # Stop-and-go gating: the object only *moves* during a ``duty`` fraction
    # of each ``period`` seconds (cars idle at intersections, park, etc.).
    duty: float = 1.0
    period: float = 8.0
    phase: float = 0.0

    def moving_at(self, t: float) -> bool:
        """Whether the object is in the moving part of its duty cycle."""
        cycle = ((t - self.t0) / self.period + self.phase) % 1.0
        return cycle < self.duty

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def position(self, t: float) -> Tuple[float, float]:
        """Normalized center position at absolute time ``t``."""
        dt = t - self.t0
        return (self.x0 + self.vx * dt, self.y0 + self.vy * dt)

    def in_frame(self, t: float) -> bool:
        """True when the object is alive and its center is inside the frame."""
        if not (self.t0 <= t <= self.t1):
            return False
        x, y = self.position(t)
        return 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def in_crop(self, t: float, crop: float) -> bool:
        """True when the center falls inside the central ``crop`` window."""
        if not self.in_frame(t):
            return False
        x, y = self.position(t)
        margin = (1.0 - crop) / 2.0
        return margin <= x <= 1.0 - margin and margin <= y <= 1.0 - margin


@dataclass(frozen=True)
class ContentParams:
    """Per-dataset content statistics (set in :mod:`repro.video.datasets`)."""

    arrival_rate: float  # expected new tracks per second
    dwell_mean: float  # mean seconds a track stays in frame
    dwell_min: float  # shortest possible dwell
    size_mean: float  # mean normalized object height
    size_sigma: float  # lognormal sigma of sizes
    speed_mean: float  # mean normalized speed (units/s)
    plate_fraction: float  # fraction of cars with a readable plate
    person_fraction: float  # fraction of tracks that are people, not cars
    camera_motion: float  # 0 (static camera) .. 1 (driving dash camera)
    activity_floor: float  # background activity (foliage, shadows, noise)


@dataclass
class FrameTruth:
    """Ground truth for a single frame: which tracks are visible, plus the
    instantaneous scene activity used by Diff/Motion-style operators."""

    t: float
    visible: List[Track]
    activity: float  # 0..1-ish frame-to-frame change measure


class ContentModel:
    """Deterministic scene generator for one dataset."""

    def __init__(self, name: str, params: ContentParams):
        self.name = name
        self.params = params
        self._window_cache: Dict[int, List[Track]] = {}

    # -- track generation ----------------------------------------------------

    def _tracks_in_window(self, window: int) -> List[Track]:
        """Tracks whose lifetime starts inside generation window ``window``."""
        cached = self._window_cache.get(window)
        if cached is not None:
            return cached
        p = self.params
        rng = rng_for(self.name, "window", window)
        n = int(rng.poisson(p.arrival_rate * WINDOW_SECONDS))
        tracks: List[Track] = []
        base = window * WINDOW_SECONDS
        for i in range(n):
            t0 = base + float(rng.uniform(0.0, WINDOW_SECONDS))
            dwell = max(p.dwell_min, float(rng.exponential(p.dwell_mean)))
            kind = "person" if rng.random() < p.person_fraction else "car"
            size = float(np.clip(rng.lognormal(np.log(p.size_mean), p.size_sigma),
                                 0.01, 0.6))
            if kind == "person":
                size *= 0.6
            angle = float(rng.uniform(0.0, 2.0 * np.pi))
            speed = max(0.0, float(rng.normal(p.speed_mean, p.speed_mean * 0.4)))
            vx, vy = speed * np.cos(angle), speed * np.sin(angle)
            # Cameras are pointed at the area of interest: trajectories are
            # biased toward the frame center (which is also what makes the
            # paper's crop factor a mild rather than catastrophic knob).
            x0 = float(np.clip(rng.normal(0.5, 0.17), 0.03, 0.97))
            y0 = float(np.clip(rng.normal(0.5, 0.15), 0.05, 0.95))
            plate = None
            if kind == "car" and rng.random() < p.plate_fraction:
                plate = "".join(
                    _PLATE_ALPHABET[j]
                    for j in rng.integers(0, len(_PLATE_ALPHABET), size=7)
                )
            tracks.append(
                Track(
                    tid=window * 100_000 + i,
                    kind=kind,
                    t0=t0,
                    t1=t0 + dwell,
                    x0=x0,
                    y0=y0,
                    vx=vx,
                    vy=vy,
                    size=size,
                    speed=speed,
                    color=VEHICLE_COLORS[int(rng.integers(0, len(VEHICLE_COLORS)))],
                    plate=plate,
                    contrast=float(rng.uniform(0.4, 1.0)),
                    duty=float(rng.uniform(0.3, 1.0)),
                    period=float(rng.uniform(5.0, 12.0)),
                    phase=float(rng.uniform(0.0, 1.0)),
                )
            )
        self._window_cache[window] = tracks
        return tracks

    def tracks_between(self, t0: float, t1: float) -> List[Track]:
        """All tracks whose lifetime intersects [t0, t1), ordered by start."""
        first = int(max(0.0, t0 - 120.0) // WINDOW_SECONDS)
        last = int(t1 // WINDOW_SECONDS)
        out = [
            tr
            for w in range(first, last + 1)
            for tr in self._tracks_in_window(w)
            if tr.t1 >= t0 and tr.t0 < t1
        ]
        out.sort(key=lambda tr: tr.t0)
        return out

    # -- per-frame truth -----------------------------------------------------

    def camera_activity(self, t: float) -> float:
        """Camera-induced frame change (high and bursty for dash cameras)."""
        p = self.params
        if p.camera_motion <= 0.0:
            return p.activity_floor
        # A clipped oscillation models driving/stopping cycles: the vehicle
        # actually stops (activity ~ floor) for stretches of most windows.
        raw = np.sin(t / 2.9) + 0.3 * np.sin(t / 1.1 + 1.0)
        wave = float(np.clip(raw, 0.0, 1.2)) / 1.2
        return p.activity_floor + p.camera_motion * (0.03 + 0.97 * wave)

    def frame_truth(self, t: float) -> FrameTruth:
        """Ground truth for the frame at absolute time ``t``."""
        visible = [tr for tr in self.tracks_between(t - 0.001, t + 0.001)
                   if tr.in_frame(t)]
        activity = self.camera_activity(t)
        for tr in visible:
            activity += tr.size * tr.size * tr.speed * 25.0
        return FrameTruth(t=t, visible=visible, activity=min(2.0, activity))

    def clip(self, t0: float, duration: float, fps: int = INGEST_FPS) -> "ClipTruth":
        """Materialize ground truth for a clip (used by profiler and queries)."""
        return ClipTruth.build(self, t0, duration, fps)


class ClipTruth:
    """Vectorized ground truth for one clip at the ingest frame rate.

    Holds, for each of ``n`` frames and each of the clip's tracks, visibility
    and position, plus the per-frame activity signal.  Operators evaluate
    their detection models against these arrays.
    """

    def __init__(
        self,
        dataset: str,
        t0: float,
        fps: int,
        times: np.ndarray,
        tracks: Sequence[Track],
        visible: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        moving: np.ndarray,
        activity: np.ndarray,
    ):
        self.dataset = dataset
        self.t0 = t0
        self.fps = fps
        self.times = times  # (n,)
        self.tracks = list(tracks)
        self.visible = visible  # (n_tracks, n) bool
        self.xs = xs  # (n_tracks, n) normalized x, NaN when not alive
        self.ys = ys
        self.moving = moving  # (n_tracks, n) bool: in the moving duty phase
        self.activity = activity  # (n,)

    @classmethod
    def build(cls, model: ContentModel, t0: float, duration: float,
              fps: int) -> "ClipTruth":
        n = max(1, int(round(duration * fps)))
        times = t0 + np.arange(n) / float(fps)
        tracks = model.tracks_between(t0, t0 + duration)
        nt = len(tracks)
        visible = np.zeros((nt, n), dtype=bool)
        xs = np.full((nt, n), np.nan)
        ys = np.full((nt, n), np.nan)
        moving = np.zeros((nt, n), dtype=bool)
        for i, tr in enumerate(tracks):
            alive = (times >= tr.t0) & (times <= tr.t1)
            dt = times - tr.t0
            x = tr.x0 + tr.vx * dt
            y = tr.y0 + tr.vy * dt
            vis = alive & (x >= 0) & (x <= 1) & (y >= 0) & (y <= 1)
            visible[i] = vis
            xs[i, vis] = x[vis]
            ys[i, vis] = y[vis]
            cycle = (dt / tr.period + tr.phase) % 1.0
            moving[i] = vis & (cycle < tr.duty)
        activity = np.array([model.camera_activity(t) for t in times])
        if nt:
            boost = (np.array([tr.size**2 * tr.speed * 25.0 for tr in tracks])
                     [:, None] * moving)
            activity = activity + boost.sum(axis=0)
        return cls(model.name, t0, fps, times, tracks, visible, xs, ys,
                   moving, np.minimum(activity, 2.0))

    @property
    def n_frames(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        return self.n_frames / float(self.fps)

    def in_crop(self, crop: float) -> np.ndarray:
        """(n_tracks, n) mask: visible and inside the central crop window."""
        if not self.tracks:
            return self.visible
        margin = (1.0 - crop) / 2.0
        inside = (
            (self.xs >= margin)
            & (self.xs <= 1.0 - margin)
            & (self.ys >= margin)
            & (self.ys <= 1.0 - margin)
        )
        return self.visible & inside

    def consumed_index(self, fidelity: Fidelity) -> np.ndarray:
        """Indices of frames a consumer at ``fidelity`` actually receives.

        Sampling rate s keeps a fraction s of ingest frames, evenly spaced
        and starting at frame 0 (e.g. 1/30 keeps frames 0, 30, 60, ...;
        2/3 keeps frames 0, 1, 3, 4, 6, ...).
        """
        s = float(fidelity.sampling)
        if s >= 1.0:
            return np.arange(self.n_frames)
        n_consumed = int(np.ceil(self.n_frames * s))
        idx = np.unique(np.floor(np.arange(n_consumed) / s).astype(int))
        return idx[idx < self.n_frames]

    def mean_activity(self) -> float:
        """Average frame-change activity; drives the codec size model."""
        return float(np.mean(self.activity)) if self.n_frames else 0.0
