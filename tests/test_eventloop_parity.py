"""The event-heap executor core: parity with the reference loop, the
ready-heap index mechanics, dependency wakeups, and plan caching.

The heap core's whole contract is *bit-identical outcomes*: the golden
traces pin it against committed bytes, and the Hypothesis property here
replays random fleets — policies x shard widths x pool bounds x cache —
through both cores and requires the full trace, every per-query float,
and the pool accounting to agree exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.plane import CacheConfig, CachePlane
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.errors import QueryError
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B, cascade_for
from repro.query.eventloop import (
    CompletionHeap,
    DependencyTracker,
    ReadyHeapIndex,
    blocked_triples,
)
from repro.query.scheduler import (
    ConcurrentExecutor,
    DeadlinePolicy,
    FIFOPolicy,
    FairSharePolicy,
    OperatorContextPool,
)
from repro.storage.disk import DiskBandwidthPool


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One fleet per shard width the parity property samples from."""
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    built = {}
    for shards in (1, 4):
        store = VStore(workdir=str(tmp_path_factory.mktemp(f"par{shards}")),
                       library=lib, shards=shards)
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        built[shards] = store
    yield built
    for store in built.values():
        store.close()


# ---------------------------------------------------------------------------
# The parity property
# ---------------------------------------------------------------------------


POLICIES = (FIFOPolicy, FairSharePolicy, DeadlinePolicy)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_heap_core_matches_reference_on_random_fleets(stores, data):
    """Random fleet, all three cores, everything equal to the last bit.

    Each example runs through the reference oracle, the batch-drained
    heap core with the fast path *disabled* (so the general core is
    exercised even on qualifying fleets), and the default dispatch — and
    asserts the dispatch lowered onto the vectorized fast path exactly
    when the fleet qualifies (no cache plane, static FIFO/EDF priorities,
    every session single-context).  Half the examples are *forced* to
    qualify so the fast path sees deep coverage, not just lucky draws.
    """
    shards = data.draw(st.sampled_from((1, 4)), label="shards")
    store = stores[shards]
    qualify = data.draw(st.booleans(), label="force-fastpath-qualifying")
    if qualify:
        policy_cls = data.draw(st.sampled_from((FIFOPolicy, DeadlinePolicy)),
                               label="policy")
        with_cache = False
    else:
        policy_cls = data.draw(st.sampled_from(POLICIES), label="policy")
        with_cache = data.draw(st.booleans(), label="cache")
    disk_channels = data.draw(st.sampled_from((None, 1, 2)), label="disk")
    decoder_ctx = data.draw(st.sampled_from((None, 1, 2)), label="decoder")
    op_ctx = data.draw(st.sampled_from((None, 2, 4)), label="operators")
    n = data.draw(st.integers(1, 5), label="queries")
    admissions = []
    for _ in range(n):
        qname = data.draw(st.sampled_from(("A", "B")))
        dataset = {"A": "jackson", "B": "dashcam"}[qname]
        span = data.draw(st.sampled_from((8.0, 16.0, 32.0)))
        contexts = 1 if qualify else data.draw(st.integers(1, 3))
        deadline = data.draw(
            st.one_of(st.none(),
                      st.floats(0.5, 10.0, allow_nan=False)))
        admissions.append((qname, dataset, span, contexts, deadline))

    def run(core, fastpath=True):
        # A fresh cache plane per run: single-flight dedup edges are then
        # planned identically for both cores (planning only peeks).
        cache = CachePlane(CacheConfig()) if with_cache else None
        ex = ConcurrentExecutor(
            store.configuration, store.library, store.segments,
            policy=policy_cls(),
            disk_pool=(DiskBandwidthPool(disk_channels)
                       if disk_channels else None),
            decoder_pool=DecoderPool(decoder_ctx) if decoder_ctx else None,
            operator_pool=(OperatorContextPool(op_ctx)
                           if op_ctx else None),
            cache=cache,
            core=core,
            fastpath=fastpath,
        )
        for qname, dataset, span, contexts, deadline in admissions:
            ex.admit(cascade_for(qname), dataset, 0.9, 0.0, span,
                     contexts=contexts, deadline=deadline)
        return ex, ex.run()

    fast_ex, fast_out = run("heap")
    heap_ex, heap_out = run("heap", fastpath=False)
    ref_ex, ref_out = run("reference")

    assert fast_ex.trace_events == ref_ex.trace_events
    assert heap_ex.trace_events == ref_ex.trace_events
    for h, f, r in zip(heap_out, fast_out, ref_out):
        for out in (h, f):
            assert out.session.finished_at == r.session.finished_at
            assert out.session.waited_seconds == r.session.waited_seconds
            assert (out.session.service_by_resource
                    == r.session.service_by_resource)
    fast_stats = fast_ex.stats()
    heap_stats, ref_stats = heap_ex.stats(), ref_ex.stats()
    for stats in (heap_stats, fast_stats):
        assert stats.makespan == ref_stats.makespan
        assert stats.busy_seconds == ref_stats.busy_seconds
        assert stats.events == ref_stats.events
    # The dispatch must take the fast path exactly when the fleet
    # qualifies: any silent fallback (or over-eager lowering) is a bug.
    expect_fast = (not with_cache
                   and policy_cls in (FIFOPolicy, DeadlinePolicy)
                   and all(a[3] == 1 for a in admissions))
    assert fast_stats.core == ("fastpath" if expect_fast else "heap")
    assert heap_stats.core == "heap" and ref_stats.core == "reference"


def test_precomputed_plan_admission_matches_planned(stores):
    """admit(plan=...) must schedule exactly like planning at admission."""
    store = stores[1]
    engine = store.engine("jackson")
    plan = engine.plan(QUERY_A, 0.9, store.segments, 0.0, 16.0)

    def run(**admit_kwargs):
        ex = store.executor(decoder_pool=DecoderPool(1))
        for _ in range(3):
            ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0, **admit_kwargs)
        ex.run()
        return ex.trace_events

    assert run() == run(plan=plan)


def test_precomputed_plan_carries_its_context_count(stores):
    """A plan dispatched over 4 contexts must simulate as 4 contexts even
    when admitted with the default ``contexts=1`` — the single-flight
    dedup re-dispatch reads ``session.contexts``, so admit adopts the
    plan's count instead of silently combining the two."""
    from repro.query.engine import QueryEngine

    store = stores[1]
    engine = QueryEngine(store.configuration, store.library, "jackson",
                         cache=CachePlane(CacheConfig()))
    plan = engine.plan(QUERY_A, 0.9, store.segments, 0.0, 32.0, contexts=4)

    def run(**admit_kwargs):
        ex = ConcurrentExecutor(
            store.configuration, store.library, store.segments,
            operator_pool=OperatorContextPool(8),
            cache=CachePlane(CacheConfig()),
        )
        for _ in range(2):  # overlapping queries: dedup re-dispatches
            ex.admit(QUERY_A, "jackson", 0.9, 0.0, 32.0, **admit_kwargs)
        ex.run()
        return ex.stats().makespan

    assert plan.contexts == 4  # the plan records its dispatch width
    planned_at_admit = run(contexts=4)
    precomputed = run(plan=plan)  # contexts left at the default
    assert precomputed == planned_at_admit


def test_precomputed_plan_rejects_oversized_gang(stores):
    """A plan whose gang exceeds the operator pool can never be granted —
    admit must refuse it instead of deadlocking at run()."""
    store = stores[1]
    engine = store.engine("jackson")
    wide = engine.plan(QUERY_A, 0.9, store.segments, 0.0, 32.0, contexts=4)
    ex = store.executor(operator_pool=OperatorContextPool(2))
    with pytest.raises(QueryError, match="re-plan"):
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, 32.0, plan=wide)


# ---------------------------------------------------------------------------
# Deadlock diagnostics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("core", ["heap", "reference"])
def test_deadlock_error_names_blocked_sessions(stores, core):
    """A stuck run must say *what* is stuck: (qid, resource, units)."""
    store = stores[1]
    # fastpath=False: the injected dependency cycle lives in the runtime
    # chains, which the (dependency-free) fast path never materializes.
    ex = store.executor(core=core, fastpath=False)
    ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0)
    chains = ex._runtime_chains()
    first, last = chains[0][0], chains[0][-1]
    first.deps = (last.uid,)  # an impossible cycle: first waits on last
    ex._runtime_chains = lambda: chains
    with pytest.raises(QueryError) as err:
        ex.run()
    message = str(err.value)
    assert "deadlock" in message
    assert f"(q0, {first.resource}, {first.units})" in message


# ---------------------------------------------------------------------------
# Heap mechanics (exercised directly: the built-in policies cannot
# produce stale entries, but the index must survive policies that do)
# ---------------------------------------------------------------------------


class _FakeSession:
    def __init__(self, qid):
        self.qid = qid
        self.prio_version = 0


class _FakeTask:
    def __init__(self, resource, units=1, uid=0, deps=()):
        self.resource = resource
        self.units = units
        self.uid = uid
        self.deps = deps


class _FakeWaiting:
    def __init__(self, session, task, seq):
        self.session = session
        self.task = task
        self.seq = seq


class TestReadyHeapIndex:
    def _index(self, priorities, free):
        return ReadyHeapIndex(
            priority=lambda w: (priorities[w.seq],),
            version=lambda w: w.session.prio_version,
            free_units=lambda r: free.get(r),
        )

    def test_orders_by_priority_then_seq(self):
        prios = {0: 2.0, 1: 1.0, 2: 1.0}
        index = self._index(prios, {})
        session = _FakeSession(0)
        entries = [_FakeWaiting(session, _FakeTask("r"), seq)
                   for seq in range(3)]
        for w in entries:
            index.push("r", w)
        assert [index.pop_best().seq for _ in range(3)] == [1, 2, 0]
        assert index.pop_best() is None

    def test_stale_head_is_rekeyed_not_rescanned(self):
        """Lazy invalidation: a priority bump (with a version stamp) moves
        the stale head back down the heap instead of granting it."""
        prios = {0: 0.0, 1: 5.0}
        free = {}
        index = self._index(prios, free)
        hot, cold = _FakeSession(0), _FakeSession(1)
        index.push("r", _FakeWaiting(hot, _FakeTask("r"), 0))
        index.push("r", _FakeWaiting(cold, _FakeTask("r"), 1))
        # hot's attained service grows past cold's before the next grant
        prios[0] = 9.0
        hot.prio_version += 1
        assert index.pop_best().seq == 1
        assert index.pop_best().seq == 0

    def test_capacity_parking_and_release(self):
        """An entry too big for the pool parks; freeing capacity re-admits
        it without disturbing smaller backfilled entries."""
        prios = {0: 0.0, 1: 1.0}
        free = {"r": 1}
        index = self._index(prios, free)
        session = _FakeSession(0)
        gang = _FakeWaiting(session, _FakeTask("r", units=2), 0)
        small = _FakeWaiting(session, _FakeTask("r", units=1), 1)
        index.push("r", gang)
        index.push("r", small)
        # the gang (better priority) does not fit: the small task backfills
        assert index.pop_best() is small
        assert index.pop_best() is None
        assert [w.seq for w in index.pending()] == [0]
        free["r"] = 2
        index.release("r")
        assert index.pop_best() is gang

    def test_full_pool_grants_nothing(self):
        free = {"r": 0}
        index = self._index({0: 0.0}, free)
        index.push("r", _FakeWaiting(_FakeSession(0), _FakeTask("r"), 0))
        assert index.pop_best() is None
        assert len(index) == 1

    def test_gang_stays_parked_through_partial_release(self):
        """A multi-unit gang parks, and a release that frees *some* units
        — but still fewer than the gang needs — must re-park it; only the
        release that actually fits the gang grants it.  This is the exact
        ordering batch-drain must preserve: releases are applied one
        completion at a time, so a batch's partial releases can each wake
        (and re-park) the gang before the final one fits it."""
        prios = {0: 0.0, 1: 1.0, 2: 2.0}
        free = {"r": 0}
        index = self._index(prios, free)
        session = _FakeSession(0)
        gang = _FakeWaiting(session, _FakeTask("r", units=3), 0)
        small = _FakeWaiting(session, _FakeTask("r", units=1), 1)
        index.push("r", gang)
        assert index.pop_best() is None  # full pool: nothing moves
        free["r"] = 1  # partial release: 1 of the 3 units the gang needs
        index.release("r")
        assert index.pop_best() is None  # gang re-parks, does not grant
        index.push("r", small)
        assert index.pop_best() is small  # backfill overtakes the gang
        free["r"] = 0
        assert index.pop_best() is None
        free["r"] = 3  # full release: now the gang fits
        index.release("r")
        assert index.pop_best() is gang
        assert index.pop_best() is None

    def test_dirty_resource_restriction_matches_full_scan(self):
        """pop_best(resources) must return the full scan's pick whenever
        the skipped pools are grant-stable (no fitting head)."""
        prios = {0: 5.0, 1: 1.0}
        free = {"a": 1, "b": 0}
        index = self._index(prios, free)
        session = _FakeSession(0)
        worse = _FakeWaiting(session, _FakeTask("a"), 0)
        better = _FakeWaiting(session, _FakeTask("b"), 1)
        index.push("a", worse)
        index.push("b", better)  # better priority, but pool "b" is full
        # Pool "b" has no fitting head, so restricting the scan to the
        # dirty pool {"a"} grants exactly what the full scan would.
        assert index.pop_best(["a"]) is worse
        free["b"] = 1
        assert index.pop_best(["b"]) is better


class TestDependencyTracker:
    def test_submit_parks_until_deps_complete(self):
        t0 = _FakeTask("r", uid=0)
        t1 = _FakeTask("r", uid=1, deps=(0,))
        tracker = DependencyTracker([[t0, t1]])
        s = _FakeSession(0)
        w0 = _FakeWaiting(s, t0, 0)
        w1 = _FakeWaiting(s, t1, 1)
        assert tracker.submit(w0) is True
        assert tracker.submit(w1) is False
        assert tracker.parked() == [w1]
        assert tracker.complete(0) == [w1]
        assert tracker.parked() == []

    def test_multi_dep_counts_down(self):
        t2 = _FakeTask("r", uid=2, deps=(0, 1))
        tracker = DependencyTracker([[_FakeTask("r", uid=0)],
                                     [_FakeTask("r", uid=1)], [t2]])
        w = _FakeWaiting(_FakeSession(0), t2, 0)
        assert tracker.submit(w) is False
        assert tracker.complete(0) == []
        assert tracker.complete(1) == [w]

    def test_completion_before_submit_clears_counter(self):
        t1 = _FakeTask("r", uid=1, deps=(0,))
        tracker = DependencyTracker([[_FakeTask("r", uid=0), t1]])
        assert tracker.complete(0) == []
        assert tracker.submit(_FakeWaiting(_FakeSession(0), t1, 0)) is True


class TestCompletionHeap:
    def test_pops_by_end_then_seq(self):
        heap = CompletionHeap()
        heap.push(2.0, 1, "late")
        heap.push(1.0, 3, "tie-b")
        heap.push(1.0, 2, "tie-a")
        assert [heap.pop() for _ in range(3)] == ["tie-a", "tie-b", "late"]
        assert len(heap) == 0

    def test_pop_batch_drains_one_timestamp_in_seq_order(self):
        heap = CompletionHeap()
        heap.push(1.0, 5, "t1-c")
        heap.push(2.0, 1, "t2-a")
        heap.push(1.0, 2, "t1-a")
        heap.push(1.0, 4, "t1-b")
        assert heap.pop_batch() == ["t1-a", "t1-b", "t1-c"]
        assert len(heap) == 1  # the t=2.0 entry stays for the next batch
        assert heap.pop_batch() == ["t2-a"]
        assert len(heap) == 0

    def test_pop_batch_leaves_same_end_followups_for_next_batch(self):
        # A zero-duration task granted while draining a batch lands at the
        # *same* end timestamp but with a larger grant seq.  It must form
        # its own follow-up batch, exactly as the one-at-a-time reference
        # pops it after the already-pending same-end completions.
        heap = CompletionHeap()
        heap.push(1.0, 2, "first")
        heap.push(1.0, 3, "second")
        assert heap.pop_batch() == ["first", "second"]
        heap.push(1.0, 7, "zero-dur follow-up")
        assert heap.pop_batch() == ["zero-dur follow-up"]

    def test_pop_batch_requires_a_pending_completion(self):
        # The drain loop guards with ``while completions:``, so an empty
        # pop_batch is a caller bug, not a silent no-op.
        with pytest.raises(IndexError):
            CompletionHeap().pop_batch()


def test_blocked_triples_sorted():
    s3, s1 = _FakeSession(3), _FakeSession(1)
    triples = blocked_triples([
        _FakeWaiting(s3, _FakeTask("disk", units=1), 0),
        _FakeWaiting(s1, _FakeTask("operators", units=2), 1),
    ])
    assert triples == [(1, "operators", 2), (3, "disk", 1)]


# ---------------------------------------------------------------------------
# Plan flattening cache
# ---------------------------------------------------------------------------


class TestPlanCaching:
    def test_tasks_and_service_cached(self, stores):
        store = stores[1]
        plan = store.engine("dashcam").plan(QUERY_B, 0.9, store.segments,
                                            0.0, 16.0)
        assert plan.tasks is plan.tasks  # one flattening, then cached
        assert plan.service_seconds == sum(t.duration for t in plan.tasks)

    def test_cache_invalidated_on_stage_swap(self, stores):
        store = stores[1]
        plan = store.engine("dashcam").plan(QUERY_B, 0.9, store.segments,
                                            0.0, 16.0)
        full = plan.tasks
        object.__setattr__(plan, "stages", plan.stages[:1])
        trimmed = plan.tasks
        assert trimmed is not full
        assert len(trimmed) < len(full)
        assert plan.service_seconds == sum(t.duration for t in trimmed)

    def test_single_flight_wakeups_counted_by_heap_core(self, stores):
        """Identical queries share in-flight retrievals; the heap core
        wakes the followers through the event queue and says so."""
        store = stores[1]
        cache = CachePlane(CacheConfig())
        ex = ConcurrentExecutor(
            store.configuration, store.library, store.segments,
            decoder_pool=DecoderPool(1), cache=cache,
        )
        for _ in range(3):
            ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 16.0)
        ex.run()
        stats = cache.stats()
        assert stats.single_flight_hits > 0
        assert stats.single_flight_wakeups > 0
