"""Chaos smoke: a pinned failure campaign served with zero data loss.

The replicated-shard plane promises that a shard failure inside an
open-loop serve costs latency, never data: reads reroute to surviving
replicas, destroyed copies rebuild in background jobs, and the SLO
report stays measurable throughout.  This module pins one small,
fully deterministic campaign — fail one shard mid-serve, degrade a
second, recover both before the horizon — and gates three things:

* **zero data loss** (``availability.data_lost`` is false and every
  destroyed replica is rebuilt);
* a **deadline-miss-rate ceiling** for the degraded window — the miss
  rate is a pure function of the seeded workload and campaign, so the
  bound holds on any host;
* **replay equality** — two fresh stores serve the identical campaign
  to identical outcomes (rebuild commits persist placement changes, so
  each run builds its own store).

The ``failures/smoke_rebuild`` cell lands in BENCH.json with the run's
events/s; the CI chaos-smoke job gates it through ``bench-diff``
against the committed baseline like the other smoke cells.
"""

import pytest

from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.workload import ArrivalSpec, QueryMixEntry, TenantSpec

SHARDS = 4
REPLICATION = 2
SEGMENTS_PER_STREAM = 8
HORIZON = 120.0
SEED = 1234

#: Shard 0 dies and shard 1 limps at 6x early in the serve; both return
#: well before the horizon so the tail of the workload runs healthy.
CAMPAIGN = "fail@5:0,degrade@5:1:6,recover@30:0,recover@30:1"

#: The simulated miss rate under this campaign is deterministic; the
#: ceiling leaves headroom over the measured value without letting a
#: degraded-routing regression (which inflates misses across the whole
#: degraded window) slip through.
MISS_RATE_CEILING = 0.05
WALL_BUDGET = 5.0
CELL = "failures/smoke_rebuild"

TENANTS = [
    TenantSpec(name="gold", arrivals=ArrivalSpec(rate=1.0),
               mix=(QueryMixEntry(query="B", dataset="jackson"),),
               slo_seconds=8.0),
    TenantSpec(name="bronze", arrivals=ArrivalSpec(rate=0.75),
               mix=(QueryMixEntry(query="A", dataset="jackson"),)),
]


def _fresh_store(tmp_path_factory):
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    store = VStore(workdir=str(tmp_path_factory.mktemp("chaos")),
                   library=library, shards=SHARDS,
                   replication=REPLICATION)
    store.configure()
    store.ingest("jackson", n_segments=SEGMENTS_PER_STREAM)
    return store


def _serve_campaign(tmp_path_factory):
    store = _fresh_store(tmp_path_factory)
    report = store.serve(TENANTS, horizon=HORIZON, seed=SEED,
                         failures=CAMPAIGN, cache=None, metrics=None,
                         core="heap")
    store.close()
    return report


def _outcome_key(report):
    return [(o.session.qid, o.session.label, round(o.session.finished_at, 9),
             round(o.latency, 9)) for o in report.outcomes]


def test_chaos_smoke_rebuild(bench_metrics, tmp_path_factory):
    report = _serve_campaign(tmp_path_factory)
    avail = report.availability
    overall = report.slo.overall
    best = report.stats

    # Zero data loss: f=1 < k=2, and every destroyed copy was rebuilt.
    assert not avail.data_lost
    assert avail.lost_keys == 0
    assert avail.replicas_rebuilt > 0
    assert avail.rebuild_jobs == avail.replicas_rebuilt
    assert avail.rebuild_seconds is not None

    # The degraded window slowed queries, within the deterministic bound.
    assert avail.degraded_queries > 0
    assert overall.miss_rate <= MISS_RATE_CEILING

    # Replay equality (and best-of-3 wall: CI workers inflate short
    # runs): every fresh store serves the identical campaign.
    for _ in range(2):
        again = _serve_campaign(tmp_path_factory)
        assert _outcome_key(again) == _outcome_key(report)
        if again.stats.wall_seconds < best.wall_seconds:
            best = again.stats

    assert best.wall_seconds < WALL_BUDGET
    bench_metrics(
        CELL,
        core=best.core,
        shards=SHARDS,
        replication=REPLICATION,
        queries=overall.n_queries,
        events=best.events,
        events_per_second=round(best.events_per_second),
        wall_seconds=round(best.wall_seconds, 4),
        wall_budget_seconds=WALL_BUDGET,
        sim_makespan=round(best.makespan, 3),
        miss_rate=round(overall.miss_rate, 4),
        miss_rate_ceiling=MISS_RATE_CEILING,
        degraded_queries=avail.degraded_queries,
        degraded_slowdown=round(avail.degraded_slowdown, 4),
        replicas_rebuilt=avail.replicas_rebuilt,
        rebuilt_bytes=round(avail.rebuilt_bytes),
        rebuild_seconds=round(avail.rebuild_seconds, 4),
        lost_keys=avail.lost_keys,
    )


def test_campaign_cores_agree(tmp_path_factory):
    """The heap and reference cores serve the campaign identically."""
    store = _fresh_store(tmp_path_factory)
    heap = store.serve(TENANTS, horizon=HORIZON, seed=SEED,
                       failures=CAMPAIGN, cache=None, metrics=None,
                       core="heap")
    store.close()
    store = _fresh_store(tmp_path_factory)
    ref = store.serve(TENANTS, horizon=HORIZON, seed=SEED,
                      failures=CAMPAIGN, cache=None, metrics=None,
                      core="reference")
    store.close()
    assert _outcome_key(heap) == _outcome_key(ref)
    assert heap.stats.makespan == pytest.approx(ref.stats.makespan)
