"""Deriving consumption formats (Section 4.2).

For each consumer <operator, target-accuracy>, find the fidelity f0 whose
accuracy meets the target at the lowest consumption cost:

1. temporarily pin image quality at its richest value (O2: quality does not
   affect consumption cost);
2. partition the remaining 3-D space along the shortest dimension — the
   crop factor — into 2-D (sampling x resolution) slices;
3. trace each slice's accuracy boundary with the monotone walk of
   :class:`~repro.core.boundary.BoundarySearch` and keep the boundary point
   with the highest consumption speed;
4. finally lower image quality as far as accuracy allows: this cannot make
   consumption cheaper, but opportunistically reduces storage/ingest costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.boundary import BoundarySearch
from repro.errors import ConfigurationError
from repro.operators.library import Consumer
from repro.profiler.profiler import OperatorProfile, OperatorProfiler
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    SAMPLING_RATES,
    fidelity_space,
)
from repro.video.format import ConsumptionFormat


@dataclass(frozen=True)
class ConsumptionDecision:
    """The derived consumption format for one consumer."""

    consumer: Consumer
    fidelity: Fidelity
    accuracy: float
    consumption_speed: float  # x realtime

    @property
    def cf(self) -> ConsumptionFormat:
        return ConsumptionFormat(self.fidelity)


class ConsumptionPlanner:
    """Derives consumption formats for consumers of one profiled dataset."""

    def __init__(self, profiler: OperatorProfiler):
        self.profiler = profiler

    # -- search -------------------------------------------------------------

    def derive(self, consumer: Consumer) -> ConsumptionDecision:
        """Find the cheapest-to-consume fidelity meeting the target."""
        best: Optional[OperatorProfile] = None
        top_quality = QUALITIES[-1]

        for crop in CROP_FACTORS:
            candidate = self._search_slice(consumer, top_quality, crop)
            if candidate is None:
                continue
            if best is None or self._better(candidate, best):
                best = candidate

        if best is None:
            raise ConfigurationError(
                f"no fidelity meets accuracy {consumer.accuracy} for "
                f"operator {consumer.operator}"
            )

        final = self._lower_quality(consumer, best)
        return ConsumptionDecision(
            consumer=consumer,
            fidelity=final.fidelity,
            accuracy=final.accuracy,
            consumption_speed=final.consumption_speed,
        )

    def derive_all(self, consumers: List[Consumer]) -> List[ConsumptionDecision]:
        """Derive a consumption format for every consumer."""
        return [self.derive(c) for c in consumers]

    # -- exhaustive baseline (Figure 14) ---------------------------------------

    def derive_exhaustive(self, consumer: Consumer) -> ConsumptionDecision:
        """Reference search profiling the entire fidelity space."""
        best: Optional[OperatorProfile] = None
        for fidelity in fidelity_space():
            profile = self.profiler.profile(consumer.operator, fidelity)
            if profile.accuracy < consumer.accuracy:
                continue
            if best is None or self._better(profile, best, prefer_poor_quality=True):
                best = profile
        if best is None:
            raise ConfigurationError(
                f"no fidelity meets accuracy {consumer.accuracy} for "
                f"operator {consumer.operator}"
            )
        return ConsumptionDecision(
            consumer=consumer,
            fidelity=best.fidelity,
            accuracy=best.accuracy,
            consumption_speed=best.consumption_speed,
        )

    # -- internals ----------------------------------------------------------------

    def _profile(self, consumer: Consumer, quality: str, crop: float,
                 sampling_idx: int, resolution_idx: int) -> OperatorProfile:
        fidelity = Fidelity(
            quality=quality,
            resolution=RESOLUTION_ORDER[resolution_idx],
            sampling=SAMPLING_RATES[sampling_idx],
            crop=crop,
        )
        return self.profiler.profile(consumer.operator, fidelity)

    def _search_slice(
        self, consumer: Consumer, quality: str, crop: float
    ) -> Optional[OperatorProfile]:
        """Boundary-walk one (sampling x resolution) slice; return the
        fastest adequate boundary point, or None when the slice has none."""
        profiles: Dict[tuple, OperatorProfile] = {}

        def adequate(sampling_idx: int, resolution_idx: int) -> bool:
            profile = self._profile(consumer, quality, crop,
                                    sampling_idx, resolution_idx)
            profiles[(sampling_idx, resolution_idx)] = profile
            return profile.accuracy >= consumer.accuracy

        search = BoundarySearch(
            n_rows=len(SAMPLING_RATES), n_cols=len(RESOLUTION_ORDER),
            adequate=adequate,
        )
        result = search.walk()
        best: Optional[OperatorProfile] = None
        for cell in result.boundary:
            profile = profiles[cell]
            if best is None or self._better(profile, best):
                best = profile
        return best

    @staticmethod
    def _better(a: OperatorProfile, b: OperatorProfile,
                prefer_poor_quality: bool = False) -> bool:
        """Whether profile ``a`` beats ``b``: primarily higher consumption
        speed; ties break toward fewer pixels, then poorer quality (which
        the exhaustive baseline must consider explicitly)."""
        if a.consumption_speed != b.consumption_speed:
            return a.consumption_speed > b.consumption_speed
        if a.fidelity.pixels != b.fidelity.pixels:
            return a.fidelity.pixels < b.fidelity.pixels
        if prefer_poor_quality:
            return a.fidelity.quality_idx < b.fidelity.quality_idx
        return False

    def _lower_quality(self, consumer: Consumer,
                       best: OperatorProfile) -> OperatorProfile:
        """Step image quality down while accuracy stays adequate (step iv)."""
        current = best
        for quality_idx in range(len(QUALITIES) - 2, -1, -1):
            fidelity = Fidelity(
                quality=QUALITIES[quality_idx],
                resolution=current.fidelity.resolution,
                sampling=current.fidelity.sampling,
                crop=current.fidelity.crop,
            )
            profile = self.profiler.profile(consumer.operator, fidelity)
            if profile.accuracy < consumer.accuracy:
                break
            current = profile
        return current
