"""Sharded multi-disk storage plane (Section 2.2, scaled out).

The paper's platform is an array of HDDs; the seed reproduction modeled it
as one aggregate :class:`~repro.storage.disk.DiskModel`, so every
concurrent retrieval and every tier migration serialized through a single
bandwidth meter.  :class:`ShardedDiskArray` replaces that with N
independent disk shards — each with its own bandwidth/overhead envelope,
all charged to one shared :class:`~repro.clock.SimClock` — so the
concurrent executor can overlap retrievals on different shards and the
simulated wall-clock becomes the *max* over shards rather than the sum.

Where a segment lands is decided by a pluggable :class:`PlacementPolicy`:

* ``round-robin`` — each newly stored (stream, format, segment) key goes to
  the next shard in rotation: per-key counts stay within one of each other;
* ``hash`` — shard is a stable hash of (stream, segment index): fully
  deterministic, independent of arrival order, and it co-locates all of a
  segment's formats on one shard;
* ``locality`` — co-locates a segment's formats and groups a stream's cold
  segments on one shard (sequential scans stay sequential), while
  high-activity ("hot") segments are spread to the least-loaded shard so
  the busiest footage enjoys the most parallelism.

The array is pure accounting: segment payloads still live in the KV
backend; the :class:`~repro.storage.segment_store.SegmentStore` records
each key's shard in its metadata record (so placement survives reopen) and
charges reads/writes to the assigned shard through this class.

A one-shard array is bit-identical to the pre-sharding single
:class:`DiskModel` path — same float operations, same clock categories —
which the parity tests enforce.

Keys can be stored **k-way replicated** (``replication=k``): the policy's
:meth:`PlacementPolicy.choose_replicas` picks k *distinct* shards (primary
first), writes charge every replica's spindle, and reads route to the
fastest *surviving* replica once shards start failing.  Shard health is
tracked here too — ``fail_shard`` destroys a shard's replicas (promoting
surviving copies, recording data loss when none survive),
``degrade_shard`` slows its reads by a factor, ``recover_shard`` returns
the (empty) spindle to service — so the failure campaigns in
:mod:`repro.storage.failures` have one place to flip.  With the default
``replication=1`` and no health events none of this machinery executes,
preserving the bit-parity contract above.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.clock import SimClock
from repro.errors import ReplicaUnavailableError, ShardFailedError, StorageError
from repro.storage.disk import DiskModel
from repro.units import GB

#: One placed key: (stream, format key text, segment index).
ShardKey = Tuple[str, str, int]


def _stable_hash(text: str) -> int:
    """A process-independent string hash (Python's ``hash`` is salted)."""
    return zlib.crc32(text.encode("utf-8"))


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------


class PlacementPolicy:
    """Chooses the shard a newly stored key lands on.

    ``choose`` is consulted once per *new* key; the array records the
    answer, so re-writes and reads always go back to the same shard.  A
    policy may read the array's current load (``shard_bytes``,
    ``segment_shard``) but must not mutate it.
    """

    name = "policy"

    def choose(self, array: "ShardedDiskArray", stream: str, fmt_text: str,
               index: int, nbytes: float, activity: float) -> int:
        raise NotImplementedError

    def choose_replicas(self, array: "ShardedDiskArray", stream: str,
                        fmt_text: str, index: int, nbytes: float,
                        activity: float, k: int) -> Tuple[int, ...]:
        """The k distinct shards a replicated key lands on, primary first.

        The default derivation keeps every policy replica-capable without
        new code: the primary is whatever :meth:`choose` picks, and the
        remaining replicas walk the ring from it (skipping failed shards),
        so replica sets are deterministic and spread across spindles.
        """
        primary = self.choose(array, stream, fmt_text, index, nbytes,
                              activity)
        replicas = [primary]
        for step in range(1, array.n_shards):
            if len(replicas) >= k:
                break
            candidate = (primary + step) % array.n_shards
            if candidate not in replicas and not array.is_failed(candidate):
                replicas.append(candidate)
        return tuple(replicas)


class RoundRobinPlacement(PlacementPolicy):
    """Each new key goes to the next shard in rotation.

    Per-shard *key counts* never differ by more than one; byte imbalance
    is bounded by the count imbalance times the largest segment size.
    """

    name = "round-robin"

    def choose(self, array: "ShardedDiskArray", stream: str, fmt_text: str,
               index: int, nbytes: float, activity: float) -> int:
        return array.placements_made % array.n_shards


class HashPlacement(PlacementPolicy):
    """Shard = stable hash of (stream, segment index).

    Independent of arrival order, and all formats of one segment land on
    the same shard (the format is deliberately left out of the hash), so a
    query that touches several formats of one segment stays local.
    """

    name = "hash"

    def choose(self, array: "ShardedDiskArray", stream: str, fmt_text: str,
               index: int, nbytes: float, activity: float) -> int:
        return _stable_hash(f"{stream}\x00{index}") % array.n_shards


class LocalityAwarePlacement(PlacementPolicy):
    """Co-locate a segment's formats; spread hot segments by load.

    The first format of a segment picks the shard, every later format
    follows it.  High-activity segments (``activity >= hot_activity``) go
    to the currently least-loaded shard — the busiest footage is spread for
    parallelism, with the greedy guarantee that hot byte loads differ by at
    most one segment.  Cold segments group by stream so sequential scans
    of quiet footage stay on one spindle.
    """

    name = "locality"

    def __init__(self, hot_activity: float = 0.5):
        self.hot_activity = hot_activity

    def choose(self, array: "ShardedDiskArray", stream: str, fmt_text: str,
               index: int, nbytes: float, activity: float) -> int:
        existing = array.segment_shard(stream, index)
        if existing is not None:
            return existing
        if activity >= self.hot_activity:
            loads = array.shard_bytes
            return min(range(array.n_shards), key=lambda i: (loads[i], i))
        return _stable_hash(stream) % array.n_shards


#: Policy registry for the CLI and the VStore facade.
PLACEMENTS = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    HashPlacement.name: HashPlacement,
    LocalityAwarePlacement.name: LocalityAwarePlacement,
}


def placement_named(name: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy instance from its registry name (or pass through)."""
    if isinstance(name, PlacementPolicy):
        return name
    try:
        return PLACEMENTS[name]()
    except KeyError:
        raise StorageError(
            f"unknown placement policy {name!r}; "
            f"known: {sorted(PLACEMENTS)}"
        ) from None


# ---------------------------------------------------------------------------
# The sharded array
# ---------------------------------------------------------------------------


class ShardedDiskArray:
    """N independent disk shards behind one placement map.

    Duck-types the single :class:`DiskModel` (``read``/``write``/speed
    estimates and the ``read_bandwidth``/``request_overhead`` attributes
    delegate to shard 0), so every pre-sharding caller keeps working; the
    sharding-aware paths use the keyed entry points (``place``/``locate``/
    ``read_for``/``write_for``/``migrate``).
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        placement: Union[str, PlacementPolicy] = "hash",
        replication: int = 1,
        clock: Optional[SimClock] = None,
        read_bandwidth: float = 1.0 * GB,
        write_bandwidth: float = 0.8 * GB,
        request_overhead: float = 0.1e-3,
        disks: Optional[List[DiskModel]] = None,
    ):
        if disks is not None:
            if not disks:
                raise StorageError("need at least one disk shard")
            self.clock = clock or disks[0].clock
            self.disks = list(disks)
            for disk in self.disks:
                disk.clock = self.clock
        else:
            if shards < 1:
                raise StorageError(f"need at least one disk shard: {shards}")
            self.clock = clock or SimClock()
            self.disks = [
                DiskModel(
                    read_bandwidth=read_bandwidth,
                    write_bandwidth=write_bandwidth,
                    request_overhead=request_overhead,
                    clock=self.clock,
                )
                for _ in range(shards)
            ]
        self.placement = placement_named(placement)
        if not 1 <= replication <= len(self.disks):
            raise StorageError(
                f"replication factor {replication} needs between 1 and "
                f"{len(self.disks)} (the shard count) copies"
            )
        self.replication = replication
        # placement state
        self._assignment: Dict[ShardKey, int] = {}
        self._key_bytes: Dict[ShardKey, float] = {}
        #: replica sets, primary first; only populated for replicated keys,
        #: so the replication=1 path never touches (or pays for) this map.
        self._replicas: Dict[ShardKey, Tuple[int, ...]] = {}
        #: keys whose every replica was destroyed: key -> bytes lost.
        self._lost: Dict[ShardKey, float] = {}
        # shard health (empty containers = the bit-parity fast path)
        self._failed: Set[int] = set()
        self._degraded: Dict[int, float] = {}
        self.failures_injected = 0
        self.replicas_rebuilt = 0
        self.rebuilt_bytes = 0.0
        self._segment_shard: Dict[Tuple[str, int], int] = {}
        self._segment_formats: Dict[Tuple[str, int], int] = {}
        self._shard_bytes: List[float] = [0.0] * len(self.disks)
        self._shard_keys: List[int] = [0] * len(self.disks)
        self.placements_made = 0
        self.folded_placements = 0  # adopted keys from a wider array
        # per-shard accounting (simulated busy seconds)
        self.busy_read_seconds: List[float] = [0.0] * len(self.disks)
        self.busy_write_seconds: List[float] = [0.0] * len(self.disks)
        self.busy_migrate_seconds: List[float] = [0.0] * len(self.disks)
        self.migrations = 0
        self.migrated_bytes = 0.0

    # -- topology ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.disks)

    def shard(self, i: int) -> DiskModel:
        return self.disks[i]

    def io_resources(self) -> List[str]:
        """Executor resource names of this array's I/O channel pools.

        The concurrent executor builds one bounded channel pool per name
        and registers each with its ready-heap index
        (:class:`~repro.query.eventloop.ReadyHeapIndex`), so retrievals
        queued on different spindles wait in different heaps and overlap.
        A one-shard array keeps the pre-sharding ``"disk"`` name so its
        traces and stats stay bit-compatible with a plain
        :class:`DiskModel`.
        """
        if self.n_shards > 1:
            return [f"disk:{i}" for i in range(self.n_shards)]
        return ["disk"]

    @property
    def shard_bytes(self) -> List[float]:
        """Stored bytes per shard (a copy; policies may read it)."""
        return list(self._shard_bytes)

    @property
    def shard_keys(self) -> List[int]:
        """Stored keys per shard (a copy)."""
        return list(self._shard_keys)

    # -- DiskModel compatibility (shard 0) ---------------------------------

    @property
    def read_bandwidth(self) -> float:
        return self.disks[0].read_bandwidth

    @property
    def write_bandwidth(self) -> float:
        return self.disks[0].write_bandwidth

    @property
    def request_overhead(self) -> float:
        return self.disks[0].request_overhead

    def read(self, n_bytes: float, requests: int = 1) -> float:
        return self.read_at(0, n_bytes, requests)

    def write(self, n_bytes: float, requests: int = 1) -> float:
        return self.write_at(0, n_bytes, requests)

    def sequential_read_speed(self, bytes_per_video_second: float) -> float:
        return self.disks[0].sequential_read_speed(bytes_per_video_second)

    def raw_read_speed(self, stored, frame_bytes, consumer_sampling=None):
        return self.disks[0].raw_read_speed(stored, frame_bytes,
                                            consumer_sampling)

    # -- charged per-shard operations --------------------------------------

    def read_at(self, shard: int, n_bytes: float, requests: int = 1) -> float:
        """Charge a read against one shard (clock category ``"disk"``).

        A degraded shard's read costs its degrade factor extra; a failed
        shard cannot be read at all.
        """
        if shard in self._failed:
            raise ShardFailedError(f"cannot read from failed shard {shard}")
        seconds = self.disks[shard].read(n_bytes, requests)
        factor = self._degraded.get(shard)
        if factor is not None and factor > 1.0:
            extra = seconds * (factor - 1.0)
            self.clock.charge(extra, "disk")
            seconds += extra
        self.busy_read_seconds[shard] += seconds
        return seconds

    def write_at(self, shard: int, n_bytes: float, requests: int = 1) -> float:
        """Charge a write against one shard (clock category ``"disk"``)."""
        if shard in self._failed:
            raise ShardFailedError(f"cannot write to failed shard {shard}")
        seconds = self.disks[shard].write(n_bytes, requests)
        self.busy_write_seconds[shard] += seconds
        return seconds

    def migrate(self, src: int, dst: int, n_bytes: float,
                requests: int = 1, category: str = "migrate") -> float:
        """Charge moving bytes shard-to-shard: read source, write destination.

        The I/O is charged to *both* sides — the source's read and the
        destination's write each occupy their spindle — and the clock
        advances by the sum (the move is not pipelined).
        """
        if n_bytes < 0:
            raise StorageError(f"cannot migrate negative bytes: {n_bytes}")
        if src in self._failed or dst in self._failed:
            failed = src if src in self._failed else dst
            raise ShardFailedError(
                f"cannot migrate via failed shard {failed}"
            )
        source, dest = self.disks[src], self.disks[dst]
        read_seconds = (n_bytes / source.read_bandwidth
                        + requests * source.request_overhead)
        write_seconds = (n_bytes / dest.write_bandwidth
                         + requests * dest.request_overhead)
        self.clock.charge(read_seconds + write_seconds, category)
        self.busy_migrate_seconds[src] += read_seconds
        self.busy_migrate_seconds[dst] += write_seconds
        self.migrations += 1
        self.migrated_bytes += n_bytes
        return read_seconds + write_seconds

    def note_slow_io(self, stream: str, index: int, seconds: float) -> None:
        """Attribute externally charged slow-tier I/O (tier promotion or
        demotion) to the shard serving a segment, for utilization reports."""
        shard = self.segment_shard(stream, index) or 0
        self.busy_migrate_seconds[shard] += seconds

    # -- placement ---------------------------------------------------------

    def place(self, stream: str, fmt_text: str, index: int,
              nbytes: float, activity: float = 0.0) -> int:
        """Assign (or re-find) the shard of a key; records the bytes.

        A key already placed keeps its shard — only its byte accounting is
        refreshed (an overwrite may change the segment's size).
        """
        key = (stream, fmt_text, index)
        shard = self._assignment.get(key)
        if shard is not None:
            old = self._key_bytes[key]
            delta = nbytes - old
            for replica in self._replicas.get(key, (shard,)):
                self._shard_bytes[replica] += delta
            self._key_bytes[key] = nbytes
            return shard
        if self.replication > 1:
            return self._place_replicated(key, nbytes, activity)
        shard = self.placement.choose(self, stream, fmt_text, index,
                                      nbytes, activity)
        if not 0 <= shard < self.n_shards:
            raise StorageError(
                f"placement {self.placement.name!r} chose shard {shard} "
                f"outside [0, {self.n_shards})"
            )
        if shard in self._failed:
            shard = self._healthiest_shard(exclude=())
        self._record(key, shard, nbytes)
        self.placements_made += 1
        return shard

    def _place_replicated(self, key: ShardKey, nbytes: float,
                          activity: float) -> int:
        """Place a new key on ``replication`` distinct shards."""
        stream, fmt_text, index = key
        replicas = self.placement.choose_replicas(
            self, stream, fmt_text, index, nbytes, activity, self.replication
        )
        if len(set(replicas)) != len(replicas):
            raise StorageError(
                f"placement {self.placement.name!r} chose duplicate "
                f"replicas {replicas!r}"
            )
        if any(not 0 <= r < self.n_shards for r in replicas):
            raise StorageError(
                f"placement {self.placement.name!r} chose replicas "
                f"{replicas!r} outside [0, {self.n_shards})"
            )
        if replicas and replicas[0] in self._failed:
            survivors = tuple(r for r in replicas[1:]
                              if r not in self._failed)
            try:
                primary = self._healthiest_shard(exclude=survivors)
                replicas = (primary,) + survivors
            except ShardFailedError:
                if not survivors:
                    raise
                # Every healthy shard already serves as a secondary:
                # promote one instead of refusing the placement.
                replicas = survivors
        want = min(self.replication, self.n_shards - len(self._failed))
        if len(replicas) < want:
            raise StorageError(
                f"placement {self.placement.name!r} produced only "
                f"{len(replicas)} replicas for factor {self.replication}"
            )
        self._record(key, replicas[0], nbytes)
        for replica in replicas[1:]:
            self._shard_bytes[replica] += nbytes
            self._shard_keys[replica] += 1
        self._replicas[key] = tuple(replicas)
        self.placements_made += 1
        return replicas[0]

    def _healthiest_shard(self, exclude: Tuple[int, ...]) -> int:
        """The least-loaded shard that is neither failed nor excluded."""
        candidates = [
            i for i in range(self.n_shards)
            if i not in self._failed and i not in exclude
        ]
        if not candidates:
            raise ShardFailedError(
                "no surviving shard available for placement"
            )
        return min(candidates, key=lambda i: (self._shard_bytes[i], i))

    def adopt(self, stream: str, fmt_text: str, index: int,
              shard: int, nbytes: float,
              replicas: Optional[Tuple[int, ...]] = None) -> int:
        """Restore a persisted placement at store open.

        A store written on a wider array is folded onto this one
        (``shard % n_shards``), counted in ``folded_placements`` so an
        operator can see that a rebalance (or a wider reopen) is due.
        ``replicas`` restores a replicated key's full copy set (primary
        first); folded duplicates collapse to the surviving distinct set.
        """
        if shard >= self.n_shards or shard < 0:
            shard = shard % self.n_shards
            self.folded_placements += 1
        key = (stream, fmt_text, index)
        self._record(key, shard, nbytes)
        self.placements_made += 1
        if replicas is not None and len(replicas) > 1:
            kept = [shard]
            for replica in replicas:
                folded = replica % self.n_shards
                if folded != replica:
                    self.folded_placements += 1
                if folded not in kept:
                    kept.append(folded)
                    self._shard_bytes[folded] += nbytes
                    self._shard_keys[folded] += 1
            if len(kept) > 1:
                self._replicas[key] = tuple(kept)
        return shard

    def _record(self, key: ShardKey, shard: int, nbytes: float) -> None:
        # Re-placing a key destroyed by failures makes it live again.
        self._lost.pop(key, None)
        self._assignment[key] = shard
        self._key_bytes[key] = nbytes
        self._shard_bytes[shard] += nbytes
        self._shard_keys[shard] += 1
        seg = (key[0], key[2])
        self._segment_shard.setdefault(seg, shard)
        self._segment_formats[seg] = self._segment_formats.get(seg, 0) + 1

    def locate(self, stream: str, fmt_text: str, index: int) -> Optional[int]:
        """The shard a key was placed on, or None when never placed."""
        return self._assignment.get((stream, fmt_text, index))

    def forget(self, stream: str, fmt_text: str, index: int) -> Optional[int]:
        """Drop a key's placement (the segment was deleted)."""
        key = (stream, fmt_text, index)
        self._lost.pop(key, None)
        shard = self._assignment.pop(key, None)
        if shard is None:
            return None
        nbytes = self._key_bytes.pop(key)
        for replica in self._replicas.pop(key, (shard,)):
            self._shard_bytes[replica] -= nbytes
            self._shard_keys[replica] -= 1
        seg = (key[0], key[2])
        remaining = self._segment_formats.get(seg, 1) - 1
        if remaining <= 0:
            self._segment_formats.pop(seg, None)
            self._segment_shard.pop(seg, None)
        else:
            self._segment_formats[seg] = remaining
        return shard

    def reassign(self, stream: str, fmt_text: str, index: int,
                 dst: int) -> int:
        """Move a key's placement to another shard (rebalance bookkeeping).

        Charges nothing: the caller is responsible for the migration I/O
        (see :meth:`migrate`).
        """
        key = (stream, fmt_text, index)
        src = self._assignment.get(key)
        if src is None:
            raise StorageError(f"cannot reassign unplaced key {key!r}")
        if not 0 <= dst < self.n_shards:
            raise StorageError(f"no such shard: {dst}")
        if dst == src:
            return src
        if dst in self._failed:
            raise ShardFailedError(
                f"cannot reassign {key!r} onto failed shard {dst}"
            )
        replicas = self._replicas.get(key)
        if replicas is not None:
            if dst in replicas:
                raise StorageError(
                    f"shard {dst} already holds a replica of {key!r}"
                )
            self._replicas[key] = tuple(
                dst if r == src else r for r in replicas
            )
        nbytes = self._key_bytes[key]
        self._shard_bytes[src] -= nbytes
        self._shard_keys[src] -= 1
        self._shard_bytes[dst] += nbytes
        self._shard_keys[dst] += 1
        self._assignment[key] = dst
        seg = (key[0], key[2])
        if self._segment_shard.get(seg) == src:
            self._segment_shard[seg] = dst
        return src

    # -- replicas ----------------------------------------------------------

    def replicas(self, stream: str, fmt_text: str, index: int
                 ) -> Tuple[int, ...]:
        """Every shard holding a copy of a key, primary first.

        Unreplicated keys return a one-tuple; unplaced keys return ``()``.
        """
        key = (stream, fmt_text, index)
        existing = self._replicas.get(key)
        if existing is not None:
            return existing
        shard = self._assignment.get(key)
        return () if shard is None else (shard,)

    def replica_assignments(self) -> Dict[ShardKey, Tuple[int, ...]]:
        """Snapshot of every placed key's full replica set."""
        return {
            key: self._replicas.get(key, (shard,))
            for key, shard in self._assignment.items()
        }

    def add_replica(self, stream: str, fmt_text: str, index: int,
                    shard: int) -> None:
        """Record a freshly copied replica (re-replication bookkeeping).

        Charges nothing — the rebuild I/O runs as executor tasks; this is
        the ``on_done`` commit that makes the new copy readable.
        """
        key = (stream, fmt_text, index)
        if key not in self._assignment:
            raise StorageError(f"cannot replicate unplaced key {key!r}")
        if not 0 <= shard < self.n_shards:
            raise StorageError(f"no such shard: {shard}")
        if shard in self._failed:
            raise ShardFailedError(
                f"cannot place a replica on failed shard {shard}"
            )
        current = self._replicas.get(key, (self._assignment[key],))
        if shard in current:
            raise StorageError(
                f"shard {shard} already holds a replica of {key!r}"
            )
        nbytes = self._key_bytes[key]
        self._shard_bytes[shard] += nbytes
        self._shard_keys[shard] += 1
        self._replicas[key] = current + (shard,)
        self.replicas_rebuilt += 1
        self.rebuilt_bytes += nbytes

    def drop_replica(self, stream: str, fmt_text: str, index: int,
                     shard: int) -> None:
        """Remove one copy of a key (never the last one)."""
        key = (stream, fmt_text, index)
        current = self._replicas.get(key, ())
        if shard not in current:
            raise StorageError(
                f"shard {shard} holds no replica of {key!r}"
            )
        if len(current) == 1:
            raise StorageError(
                f"cannot drop the last replica of {key!r}; use forget()"
            )
        nbytes = self._key_bytes[key]
        self._shard_bytes[shard] -= nbytes
        self._shard_keys[shard] -= 1
        survivors = tuple(r for r in current if r != shard)
        self._replicas[key] = survivors
        if self._assignment[key] == shard:
            self._assignment[key] = survivors[0]
            seg = (key[0], key[2])
            if self._segment_shard.get(seg) == shard:
                self._segment_shard[seg] = survivors[0]

    # -- shard health ------------------------------------------------------

    def is_failed(self, shard: int) -> bool:
        return shard in self._failed

    def shard_state(self, shard: int) -> str:
        """``"up"``, ``"degraded"`` or ``"failed"``."""
        if shard in self._failed:
            return "failed"
        if shard in self._degraded:
            return "degraded"
        return "up"

    def degrade_factor(self, shard: int) -> float:
        """Read-slowdown multiplier of a shard (1.0 when healthy)."""
        return self._degraded.get(shard, 1.0)

    @property
    def failed_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._failed))

    @property
    def healthy(self) -> bool:
        """True when no shard is failed or degraded (the fast path)."""
        return not self._failed and not self._degraded

    def fail_shard(self, shard: int) -> List[Tuple[ShardKey, float, int]]:
        """A shard crashed: its copies are gone until re-replicated.

        Every replica on the shard is dropped from the bookkeeping.  Keys
        with surviving copies promote the fastest survivor to primary and
        are returned as ``(key, bytes, source_shard)`` rebuild work (read
        the source, write a fresh copy elsewhere); keys whose *last* copy
        lived here are recorded as lost — subsequent reads raise
        :class:`~repro.errors.ReplicaUnavailableError`.
        """
        if not 0 <= shard < self.n_shards:
            raise StorageError(f"no such shard: {shard}")
        if shard in self._failed:
            return []
        self._failed.add(shard)
        self._degraded.pop(shard, None)
        self.failures_injected += 1
        rebuild: List[Tuple[ShardKey, float, int]] = []
        for key in [k for k, s in self._assignment.items()
                    if shard in self._replicas.get(k, (s,))]:
            nbytes = self._key_bytes[key]
            self._shard_bytes[shard] -= nbytes
            self._shard_keys[shard] -= 1
            survivors = tuple(
                r for r in self._replicas.get(key, (self._assignment[key],))
                if r != shard
            )
            if not survivors:
                # Data loss: the key is gone from the store's bookkeeping
                # but remembered so reads can say *why* they fail.
                del self._assignment[key]
                del self._key_bytes[key]
                self._replicas.pop(key, None)
                self._lost[key] = nbytes
                seg = (key[0], key[2])
                remaining = self._segment_formats.get(seg, 1) - 1
                if remaining <= 0:
                    self._segment_formats.pop(seg, None)
                    self._segment_shard.pop(seg, None)
                else:
                    self._segment_formats[seg] = remaining
                continue
            source = self._fastest_shard(survivors)
            if self._assignment[key] == shard:
                self._assignment[key] = source
            seg = (key[0], key[2])
            if self._segment_shard.get(seg) == shard:
                self._segment_shard[seg] = source
            self._replicas[key] = survivors
            rebuild.append((key, nbytes, source))
        return rebuild

    def degrade_shard(self, shard: int, factor: float = 4.0) -> None:
        """Slow a shard's reads by ``factor`` (it stays readable)."""
        if not 0 <= shard < self.n_shards:
            raise StorageError(f"no such shard: {shard}")
        if factor < 1.0:
            raise StorageError(f"degrade factor must be >= 1: {factor}")
        if shard in self._failed:
            raise ShardFailedError(
                f"shard {shard} is failed; recover it first"
            )
        self._degraded[shard] = factor
        self.failures_injected += 1

    def recover_shard(self, shard: int) -> None:
        """Return a shard to service.

        A recovered spindle comes back *empty* — replicas destroyed by the
        failure stay destroyed (re-replication rebuilds them elsewhere) —
        but it is immediately eligible for new placements and rebuild
        destinations.  Recovering a degraded shard just clears the factor.
        """
        if not 0 <= shard < self.n_shards:
            raise StorageError(f"no such shard: {shard}")
        self._failed.discard(shard)
        self._degraded.pop(shard, None)

    def reset_health(self) -> None:
        """Clear every failure/degradation flag (bookkeeping unchanged)."""
        self._failed.clear()
        self._degraded.clear()

    def lost_keys(self) -> Dict[ShardKey, float]:
        """Keys destroyed by failures (all replicas gone): key -> bytes."""
        return dict(self._lost)

    @property
    def lost_bytes(self) -> float:
        return sum(self._lost.values())

    def _fastest_shard(self, candidates: Tuple[int, ...]) -> int:
        """The candidate with the cheapest effective read: bandwidth over
        degrade factor, ties broken by index."""
        return min(
            candidates,
            key=lambda s: (
                self._degraded.get(s, 1.0) / self.disks[s].read_bandwidth,
                s,
            ),
        )

    def effective_read_shard(self, stream: str, fmt_text: str,
                             index: int) -> Optional[int]:
        """The shard a read of this key should route to *right now*.

        Healthy stores answer the primary (bit-identical to the
        pre-failure path).  Under failures, reads route to the fastest
        surviving replica; a key with no surviving copy raises
        :class:`~repro.errors.ReplicaUnavailableError`.
        """
        key = (stream, fmt_text, index)
        primary = self._assignment.get(key)
        if primary is None:
            if key in self._lost:
                raise ReplicaUnavailableError(
                    f"all replicas of stream={stream} format={fmt_text} "
                    f"segment={index} were lost to shard failures"
                )
            return None
        if not self._failed and not self._degraded:
            return primary
        survivors = tuple(
            r for r in self._replicas.get(key, (primary,))
            if r not in self._failed
        )
        if not survivors:
            raise ShardFailedError(
                f"every shard holding stream={stream} format={fmt_text} "
                f"segment={index} is currently failed"
            )
        if primary in survivors and primary not in self._degraded:
            return primary
        return self._fastest_shard(survivors)

    def read_params_at(self, shard: int) -> Tuple[float, float]:
        """Effective ``(read_bandwidth, request_overhead)`` of one shard,
        with any degrade factor folded into the bandwidth."""
        disk = self.disks[shard]
        factor = self._degraded.get(shard)
        if factor is None or factor <= 1.0:
            return disk.read_bandwidth, disk.request_overhead
        return disk.read_bandwidth / factor, disk.request_overhead

    # -- segment-granularity views (tiering, locality) ---------------------

    def segment_shard(self, stream: str, index: int) -> Optional[int]:
        """The shard a segment's formats were first placed on."""
        return self._segment_shard.get((stream, index))

    def segment_disk(self, stream: str, index: int) -> DiskModel:
        """The disk model serving a segment's slow-tier I/O."""
        return self.disks[self.segment_shard(stream, index) or 0]

    def assignments(self) -> Dict[ShardKey, Tuple[int, float]]:
        """Snapshot of every placed key: key -> (shard, bytes)."""
        return {
            key: (shard, self._key_bytes[key])
            for key, shard in self._assignment.items()
        }

    # -- balance metrics ---------------------------------------------------

    @property
    def byte_imbalance(self) -> float:
        """Max-minus-min stored bytes across shards (0 = perfectly even)."""
        if self.n_shards <= 1:
            return 0.0
        return max(self._shard_bytes) - min(self._shard_bytes)

    @property
    def imbalance_ratio(self) -> float:
        """Max shard load over the mean (1.0 = perfectly even)."""
        total = sum(self._shard_bytes)
        if total <= 0:
            return 1.0
        return max(self._shard_bytes) / (total / self.n_shards)


# ---------------------------------------------------------------------------
# Rebalancing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`SegmentStore.rebalance` round."""

    moves: int
    bytes_moved: float
    seconds: float  # migration I/O charged to the clock
    imbalance_before: float  # max-min shard bytes before
    imbalance_after: float


def plan_rebalance(
    assignments: Dict[ShardKey, Tuple[int, float]],
    n_shards: int,
) -> List[Tuple[ShardKey, int, int]]:
    """Plan the moves that restore byte balance; pure, no I/O.

    Greedy: repeatedly move the largest key that fits strictly inside the
    current max-min load gap from the fullest shard to the emptiest one.
    Every such move strictly decreases the sum of squared shard loads, so
    the loop terminates; it stops when no key on the fullest shard is
    smaller than the gap — at which point the residual imbalance is below
    the largest single key, the best any per-key mover can guarantee.

    Returns ``(key, src, dst)`` moves in application order.  The plan
    conserves keys and bytes by construction: it only ever relabels a
    key's shard, never drops or duplicates one.
    """
    if n_shards < 1:
        raise StorageError(f"need at least one shard: {n_shards}")
    loads = [0.0] * n_shards
    by_shard: Dict[int, Dict[ShardKey, float]] = {i: {} for i in range(n_shards)}
    for key, (shard, nbytes) in assignments.items():
        if not 0 <= shard < n_shards:
            raise StorageError(f"key {key!r} on unknown shard {shard}")
        loads[shard] += nbytes
        by_shard[shard][key] = nbytes
    moves: List[Tuple[ShardKey, int, int]] = []
    if n_shards == 1:
        return moves
    while True:
        src = max(range(n_shards), key=lambda i: (loads[i], i))
        dst = min(range(n_shards), key=lambda i: (loads[i], i))
        gap = loads[src] - loads[dst]
        if gap <= 0:
            break
        # Largest key strictly smaller than the gap; ties break on the
        # sorted key so the plan is deterministic.
        candidates = [
            (nbytes, key) for key, nbytes in by_shard[src].items()
            if 0 < nbytes < gap
        ]
        if not candidates:
            break
        nbytes, key = max(candidates, key=lambda c: (c[0], c[1]))
        del by_shard[src][key]
        by_shard[dst][key] = nbytes
        loads[src] -= nbytes
        loads[dst] += nbytes
        moves.append((key, src, dst))
    return moves
