"""Executor scale sweep: 16-4096 concurrent queries x 1-8 disk shards.

Before the event-heap core, the executor rescanned its whole waiting list
on every grant and took ``min``/``remove`` over a Python list on every
completion — O(T * W) in total task count T and waiting-set size W — so a
512-query fleet was wall-clock bound by the *scheduler*, not by the
modeled hardware, and this sweep was too slow to run at all.  The heap
core (``repro.query.eventloop``) makes every scheduling decision
O(log n); the batch-drained completion pass and the vectorized fleet
fast path (``repro.query.fastpath``) then strip the remaining per-event
Python.  This module measures the result and pins it:

* the full 16-512 x 1-8 grid runs in seconds (previously minutes), with
  real events/sec recorded per cell in BENCH.json and RESULTS.md;
* the acceptance cell — 256 queries on 4 shards — must run **>= 10x**
  faster under the heap core than under the (kept, bit-identical)
  reference loop;
* 1024- and 4096-query FIFO fleets on 4 shards qualify for the fast
  path; the 4096 cell must sustain **>= 600k events/s** (3x the PR 5
  ceiling) under a hard 10 s wall budget, bit-identical to the general
  heap core;
* independent fleets fan out across worker processes
  (``execute_many(parallel=N)``); with >= 4 host cores the aggregate
  scheduling throughput must reach **>= 2.5x** the serial run's;
* a 64-query smoke cell carries a hard wall-clock budget so CI catches a
  scheduler regression the simulated clock cannot see — and the CI job
  gates it through ``python -m repro bench-diff`` against the committed
  ``BENCH_BASELINE.json``.

Fleets are admitted from *precomputed* plans (``admit(plan=...)``): the
per-stream plans are identical across queries, so planning cost is paid
8 times, not 512, and the measured wall-clock is the executor core.
"""

import os
from time import perf_counter

import pytest

from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A
from repro.query.parallel import merge_reports
from repro.query.scheduler import (
    FairSharePolicy,
    FIFOPolicy,
    OperatorContextPool,
)
from repro.storage.disk import DiskBandwidthPool
from repro.units import GB

SHARD_COUNTS = (1, 4, 8)
QUERY_COUNTS = (16, 64, 256, 512)
N_STREAMS = 8
SEGMENTS_PER_STREAM = 8
SPAN = 64.0

#: One HDD spindle, as in the shard-scaling sweep.
SPINDLE_READ_BW = 0.125 * GB
SPINDLE_WRITE_BW = 0.1 * GB

#: Acceptance: heap core vs reference loop at this cell.
SPEEDUP_CELL = (256, 4)
MIN_SPEEDUP = 10.0

#: Acceptance: the vectorized fast path at fleet scale.  FIFO fleets of
#: single-context queries qualify; 4096 x 4 shards must sustain this.
FASTPATH_QUERY_COUNTS = (1024, 4096)
FASTPATH_MIN_EPS = 600_000.0
FASTPATH_WALL_BUDGET = 10.0

#: Acceptance: multi-core fleet execution.  With at least this many host
#: cores, ``parallel=4`` must deliver this aggregate-throughput multiple
#: over the serial run of the same independent fleets.
PARALLEL_WORKERS = 4
PARALLEL_MIN_SPEEDUP = 2.5
PARALLEL_FLEETS = 8
PARALLEL_FLEET_QUERIES = 2048

#: CI perf-smoke budget: the heap core must clear 64 queries x 4 shards
#: (~1000 scheduled tasks) in this much real time on any CI worker.
SMOKE_QUERIES = 64
SMOKE_WALL_BUDGET = 5.0

#: The smoke cell backs two bench-diff gates (the 0.30 baseline gate and
#: the 5% metrics-overhead A/B), and a single ~10 ms run is noise-
#: dominated on shared CI workers; record the best of this many
#: back-to-back runs instead.
SMOKE_REPEATS = 7

#: Smoke cells under the metrics-overhead A/B.  Interleaved detached/
#: attached pairs in one process are the only sound way to resolve a 5%
#: effect: back-to-back pytest *sessions* on a shared worker drift by
#: 30%+ (CPU frequency scaling), which would drown the gate.
SMOKE_CELL = f"executor_scale/smoke_q{SMOKE_QUERIES}_s4"
SMOKE_CELL_DETACHED = f"{SMOKE_CELL}_detached"


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Lazy per-shard-count fleets: ``fleet(shards) -> (store, plans)``.

    Stores are ingested (and their per-stream plans computed) only for
    the shard counts a test actually asks for, so the CI perf-smoke job —
    which runs just the 64-query x 4-shard cell — pays for one fleet,
    not three.
    """
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    built = {}

    def get(shards):
        if shards not in built:
            store = VStore(
                workdir=str(tmp_path_factory.mktemp(f"scale{shards}")),
                library=library, shards=shards,
            )
            for disk in store.disk_array.disks:
                disk.read_bandwidth = SPINDLE_READ_BW
                disk.write_bandwidth = SPINDLE_WRITE_BW
            store.configure()
            engine = store.engine("jackson")
            plans = {}
            for i in range(N_STREAMS):
                stream = f"cam{i:02d}"
                store.ingest("jackson", n_segments=SEGMENTS_PER_STREAM,
                             stream=stream)
                plans[stream] = engine.plan(
                    QUERY_A, 0.9, store.segments, 0.0, SPAN, stream=stream
                )
            built[shards] = (store, plans)
        return built[shards]

    yield get
    for store, _ in built.values():
        store.close()


def _run_fleet(store, plans, n_queries, core, policy=None, fastpath=True,
               **executor_kwargs):
    """Admit and run one fleet; returns the executor's stats.

    ``executor_kwargs`` pass through to ``store.executor`` — the smoke
    A/B uses ``metrics=None`` / ``metrics=store.metrics`` to force the
    registry detached or attached regardless of the environment switch.
    """
    ex = store.executor(
        policy=policy or FairSharePolicy(),
        disk_pool=DiskBandwidthPool(1),  # one I/O channel per shard
        decoder_pool=DecoderPool(2),
        operator_pool=OperatorContextPool(4),
        core=core,
        fastpath=fastpath,
        **executor_kwargs,
    )
    for i in range(n_queries):
        stream = f"cam{i % N_STREAMS:02d}"
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, SPAN, stream=stream,
                 plan=plans[stream])
    ex.run()
    return ex.stats()


def test_executor_scale_sweep(record, bench_metrics, fleet):
    """The whole grid under the heap core, with per-cell throughput."""
    cells = {}
    for shards in SHARD_COUNTS:
        store, plans = fleet(shards)
        for n in QUERY_COUNTS:
            stats = _run_fleet(store, plans, n, "heap")
            cells[(shards, n)] = stats
            bench_metrics(
                f"executor_scale/q{n}_s{shards}_heap",
                core=stats.core,
                shards=shards,
                queries=n,
                wall_seconds=round(stats.wall_seconds, 4),
                events=stats.events,
                events_per_second=round(stats.events_per_second),
                sim_makespan=round(stats.makespan, 3),
            )

    lines = [f"{'shards':>7} {'queries':>8} {'tasks':>7} {'wall':>9} "
             f"{'events/s':>9} {'sim makespan':>13}"]
    for (shards, n), stats in sorted(cells.items()):
        lines.append(
            f"{shards:>7} {n:>8} {stats.events // 2:>7} "
            f"{stats.wall_seconds * 1e3:>7.1f}ms "
            f"{stats.events_per_second:>9,.0f} {stats.makespan:>12.3f}s"
        )
    record("Executor scale — event-heap core, 16-512 queries x 1-8 shards "
           "(fair share, spindle-grade disks, 1 channel/shard)",
           "\n".join(lines))
    record("Perf telemetry",
           "Machine-readable per-benchmark wall-clock and executor "
           "events/sec for this session are in benchmarks/BENCH.json "
           "(rewritten by every benchmark run; uploaded as a CI artifact "
           "by both the benchmark step and the perf-smoke job).")

    # The grid itself is the previously-unrunnable artifact: every cell
    # must finish, and scheduling must stay within interactive budgets
    # even at the 512 x 8 corner.
    assert all(s.wall_seconds < 30.0 for s in cells.values())
    # Simulated time is hardware-bound: more shards never slow a fleet.
    for n in QUERY_COUNTS:
        makespans = [cells[(s, n)].makespan for s in SHARD_COUNTS]
        assert makespans == sorted(makespans, reverse=True)


def test_heap_vs_reference_speedup(benchmark, record, bench_metrics, fleet):
    """Acceptance: >= 10x wall-clock over the legacy loop at 256 x 4.

    Best-of-N wall-clock on both sides: the minimum is the standard
    noise-robust estimator, and the heap core's ~70 ms runs are the ones
    a busy CI worker can inflate severalfold.
    """
    n, shards = SPEEDUP_CELL
    store, plans = fleet(shards)

    heap_stats = benchmark.pedantic(
        lambda: _run_fleet(store, plans, n, "heap"),
        rounds=1, iterations=1,
    )
    for _ in range(2):  # best of 3
        candidate = _run_fleet(store, plans, n, "heap")
        if candidate.wall_seconds < heap_stats.wall_seconds:
            heap_stats = candidate
    ref_stats = _run_fleet(store, plans, n, "reference")
    candidate = _run_fleet(store, plans, n, "reference")  # best of 2
    if candidate.wall_seconds < ref_stats.wall_seconds:
        ref_stats = candidate

    # Bit-identical simulation, wildly different wall-clock.
    assert heap_stats.makespan == ref_stats.makespan
    assert heap_stats.busy_seconds == ref_stats.busy_seconds
    speedup = ref_stats.wall_seconds / heap_stats.wall_seconds
    bench_metrics(
        f"executor_scale/speedup_q{n}_s{shards}",
        core="heap",
        shards=shards,
        queries=n,
        heap_wall_seconds=round(heap_stats.wall_seconds, 4),
        reference_wall_seconds=round(ref_stats.wall_seconds, 4),
        speedup=round(speedup, 1),
        events=heap_stats.events,
    )
    record(
        "Executor scale — heap core vs reference loop "
        f"({n} queries x {shards} shards)",
        f"reference loop: {ref_stats.wall_seconds:8.3f}s wall "
        f"({ref_stats.events_per_second:10,.0f} events/s)\n"
        f"heap core:      {heap_stats.wall_seconds:8.3f}s wall "
        f"({heap_stats.events_per_second:10,.0f} events/s)\n"
        f"speedup:        {speedup:8.1f}x "
        f"(acceptance floor {MIN_SPEEDUP:.0f}x)",
    )
    assert speedup >= MIN_SPEEDUP


def test_fastpath_fleet_scale(record, bench_metrics, fleet):
    """Acceptance: the vectorized fast path at 1024 and 4096 queries.

    FIFO fleets of single-context queries on an uncached store qualify
    for ``repro.query.fastpath``; the dispatch must actually take it,
    simulate bit-identically to the general heap core, and sustain
    >= 600k events/s at the 4096 x 4-shard corner under a 10 s wall
    budget (>= 3x the PR 5 per-event ceiling).
    """
    store, plans = fleet(4)
    lines = [f"{'queries':>8} {'core':>9} {'wall':>9} {'events/s':>10}"]
    final_eps = 0.0
    for n in FASTPATH_QUERY_COUNTS:
        stats = _run_fleet(store, plans, n, "heap", policy=FIFOPolicy())
        for _ in range(2):  # best of 3: CI workers are noisy
            candidate = _run_fleet(store, plans, n, "heap",
                                   policy=FIFOPolicy())
            if candidate.wall_seconds < stats.wall_seconds:
                stats = candidate
        assert stats.core == "fastpath"  # the dispatch must qualify
        # Bit-parity at scale: the general (batch-drained) heap core
        # produces the same simulation, only slower.
        general = _run_fleet(store, plans, n, "heap", policy=FIFOPolicy(),
                             fastpath=False)
        assert general.core == "heap"
        assert general.makespan == stats.makespan
        assert general.busy_seconds == stats.busy_seconds
        assert general.events == stats.events
        bench_metrics(
            f"executor_scale/q{n}_s4_fastpath",
            core=stats.core,
            shards=4,
            queries=n,
            wall_seconds=round(stats.wall_seconds, 4),
            events=stats.events,
            events_per_second=round(stats.events_per_second),
            sim_makespan=round(stats.makespan, 3),
            heap_wall_seconds=round(general.wall_seconds, 4),
        )
        for s, core in ((stats, "fastpath"), (general, "heap")):
            lines.append(f"{n:>8} {core:>9} {s.wall_seconds * 1e3:>7.1f}ms "
                         f"{s.events_per_second:>10,.0f}")
        assert stats.wall_seconds < FASTPATH_WALL_BUDGET
        final_eps = stats.events_per_second
    record("Executor scale — vectorized fast path, 1024/4096 FIFO queries "
           "x 4 shards (bit-identical to the general heap core)",
           "\n".join(lines))
    assert final_eps >= FASTPATH_MIN_EPS


def test_parallel_fleet_throughput(record, bench_metrics, fleet):
    """Multi-core fleet execution: independent fleets across workers.

    Eight independent 2048-query fleets run serially (``parallel=1``)
    and across four forked workers; the per-fleet reports must be
    bit-equal, and on a host with >= 4 cores the aggregate scheduling
    throughput (total events over elapsed wall) must be >= 2.5x.  On
    smaller hosts the cell still records honest measurements — there is
    no parallelism to find, so only equality is asserted.
    """
    store, plans = fleet(4)
    specs = []
    for i in range(PARALLEL_FLEET_QUERIES):
        stream = f"cam{i % N_STREAMS:02d}"
        specs.append(dict(query=QUERY_A, dataset="jackson", accuracy=0.9,
                          t0=0.0, t1=SPAN, stream=stream,
                          plan=plans[stream]))
    fleets = [specs] * PARALLEL_FLEETS
    kwargs = dict(policy=FIFOPolicy(), disk_pool=DiskBandwidthPool(1),
                  decoder_pool=DecoderPool(2),
                  operator_pool=OperatorContextPool(4))

    t0 = perf_counter()
    serial = store.execute_many(fleets, parallel=1, **kwargs)
    serial_wall = perf_counter() - t0
    t0 = perf_counter()
    parallel = store.execute_many(fleets, parallel=PARALLEL_WORKERS,
                                  **kwargs)
    parallel_wall = perf_counter() - t0

    for s, p in zip(serial, parallel):  # worker isolation is bit-exact
        assert s.makespan == p.makespan
        assert s.rows == p.rows
        assert s.events == p.events

    merged = merge_reports(parallel, wall_seconds=parallel_wall)
    speedup = serial_wall / parallel_wall
    cpus = os.cpu_count() or 1
    bench_metrics(
        "executor_scale/parallel_fleets",
        core=serial[0].core,
        shards=4,
        queries=PARALLEL_FLEET_QUERIES,
        fleets=PARALLEL_FLEETS,
        queries_per_fleet=PARALLEL_FLEET_QUERIES,
        workers=PARALLEL_WORKERS,
        host_cpus=cpus,
        serial_wall_seconds=round(serial_wall, 4),
        parallel_wall_seconds=round(parallel_wall, 4),
        aggregate_events=merged.events,
        aggregate_events_per_second=round(merged.events_per_second),
        speedup=round(speedup, 2),
    )
    record(
        "Executor scale — multi-core fleet execution "
        f"({PARALLEL_FLEETS} independent fleets x "
        f"{PARALLEL_FLEET_QUERIES} queries, {PARALLEL_WORKERS} workers, "
        f"{cpus} host cores)",
        f"serial:   {serial_wall:8.3f}s elapsed\n"
        f"parallel: {parallel_wall:8.3f}s elapsed "
        f"({merged.events_per_second:,.0f} aggregate events/s)\n"
        f"speedup:  {speedup:8.2f}x "
        f"(floor {PARALLEL_MIN_SPEEDUP}x when >= {PARALLEL_WORKERS} cores)",
    )
    if cpus >= PARALLEL_WORKERS:
        assert speedup >= PARALLEL_MIN_SPEEDUP


def test_perf_smoke_64_queries(bench_metrics, fleet):
    """CI perf-smoke cells: 64 queries x 4 shards under a hard wall budget.

    Runs standalone via ``pytest benchmarks/test_executor_scale.py -k
    smoke`` so the CI job stays minutes-cheap (the lazy ``fleet`` fixture
    then builds only the 4-shard store).  Each repeat runs the fleet
    twice back to back — metrics registry detached, then attached — and
    the best of ``SMOKE_REPEATS`` such pairs lands in two cells:

    * ``executor_scale/smoke_q64_s4`` (attached) — gated against the
      committed ``BENCH_BASELINE.json`` at the 0.30 tolerance;
    * ``executor_scale/smoke_q64_s4_detached`` — the same-process A/B
      partner the CI job diffs the attached cell against at 5%, proving
      the always-on registry near-zero overhead.

    Best-of-N over *interleaved pairs* is what makes the 5% gate sound:
    it strips scheduler jitter and CPU-frequency drift that dominate a
    ~10 ms wall measured across separate processes.  The order within a
    pair alternates each repeat — under a monotonic frequency ramp
    (e.g. turbo decay right after a heavier job) whichever side always
    ran second would otherwise absorb the whole drift as fake overhead.
    """
    store, plans = fleet(4)
    detached, attached = [], []
    for rep in range(SMOKE_REPEATS):
        sides = [(detached, None), (attached, store.metrics)]
        for runs, registry in sides if rep % 2 == 0 else reversed(sides):
            runs.append(_run_fleet(store, plans, SMOKE_QUERIES, "heap",
                                   metrics=registry))
    for cell, runs, registry in ((SMOKE_CELL_DETACHED, detached, "detached"),
                                 (SMOKE_CELL, attached, "attached")):
        stats = min(runs, key=lambda s: s.total_wall_seconds)
        bench_metrics(
            cell,
            core=stats.core,
            shards=4,
            queries=SMOKE_QUERIES,
            wall_seconds=round(stats.wall_seconds, 4),
            events=stats.events,
            events_per_second=round(stats.events_per_second),
            wall_budget_seconds=SMOKE_WALL_BUDGET,
            repeats=SMOKE_REPEATS,
            registry=registry,
        )
        assert stats.events > 0
        assert stats.wall_seconds < SMOKE_WALL_BUDGET
