"""SLO analysis of open-loop serving runs.

The closed-loop report (:mod:`repro.analysis.concurrency`) answers "how
unfair was the drain"; this one answers the operator's serving
questions: what were the latency quantiles, which tenants missed their
deadlines and how often, how deep did the admission queue get, and how
evenly was the pain shared.

Latency here is the *honest* number — finish minus arrival, including
time spent queued in admission control before the query was let in —
and quantiles are exact (computed from the per-query latencies, not a
histogram): a 10k-query fleet sorts in microseconds, and an SLO gate
should not carry ±one-bucket resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.concurrency import jain_index
from repro.query.scheduler import QueryOutcome

__all__ = [
    "TenantSLO",
    "SLOReport",
    "slo_report",
    "format_slo_table",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's serving outcome (``tenant="*"`` = the whole fleet)."""

    tenant: str
    n_queries: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queued: float  # admission-queue wait folded into every latency
    deadline_total: int  # queries that carried a deadline
    deadline_misses: int
    mean_slowdown: float  # over finite rows; 1.0 when none are finite

    @property
    def miss_rate(self) -> float:
        """Deadline-miss fraction; 0.0 when nothing carried a deadline."""
        if not self.deadline_total:
            return 0.0
        return self.deadline_misses / self.deadline_total


@dataclass(frozen=True)
class SLOReport:
    """Operator-facing view of one open-loop serving run."""

    overall: TenantSLO
    tenants: Tuple[TenantSLO, ...]  # sorted by tenant name
    #: Jain's index over per-tenant mean slowdowns — 1.0 when contention
    #: hurt every tenant equally, 1/n when one tenant absorbed it all.
    fairness: float
    #: ``(t, queued, in_flight)`` admission samples (empty without
    #: admission control).
    queue_timeline: Tuple[Tuple[float, int, int], ...]
    makespan: float

    @property
    def peak_queued(self) -> int:
        return max((q for _, q, _ in self.queue_timeline), default=0)

    @property
    def peak_in_flight(self) -> int:
        return max((f for _, _, f in self.queue_timeline), default=0)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.overall.n_queries / self.makespan


def _tenant_slo(name: str, outcomes: Sequence[QueryOutcome]) -> TenantSLO:
    latencies = [o.latency for o in outcomes]
    queued = [o.queued_seconds for o in outcomes]
    finite = [o.slowdown for o in outcomes if math.isfinite(o.slowdown)]
    dated = [o for o in outcomes if o.deadline_met is not None]
    return TenantSLO(
        tenant=name,
        n_queries=len(outcomes),
        mean_latency=sum(latencies) / len(latencies),
        p50_latency=percentile(latencies, 0.50),
        p95_latency=percentile(latencies, 0.95),
        p99_latency=percentile(latencies, 0.99),
        mean_queued=sum(queued) / len(queued),
        deadline_total=len(dated),
        deadline_misses=sum(1 for o in dated if o.deadline_met is False),
        mean_slowdown=(sum(finite) / len(finite)) if finite else 1.0,
    )


def slo_report(
    outcomes: Sequence[QueryOutcome],
    *,
    queue_timeline: Sequence[Tuple[float, int, int]] = (),
    makespan: Optional[float] = None,
) -> SLOReport:
    """Build the serving report from a run's outcomes.

    Background jobs (scheduling class 1) are excluded — they have no
    arrival semantics.  ``queue_timeline`` is the executor's
    ``admission_timeline``; ``makespan`` defaults to the latest finish
    minus the earliest arrival across the outcomes.
    """
    queries = [o for o in outcomes if o.session.klass == 0]
    if not queries:
        raise ValueError("no query outcomes: admit and run queries first")
    by_tenant: Dict[str, List[QueryOutcome]] = {}
    for o in queries:
        by_tenant.setdefault(o.session.tenant or "", []).append(o)
    tenants = tuple(
        _tenant_slo(name, group) for name, group in sorted(by_tenant.items())
    )
    if makespan is None:
        makespan = (max(o.session.finished_at for o in queries)
                    - min(o.session.arrival_at for o in queries))
    return SLOReport(
        overall=_tenant_slo("*", queries),
        tenants=tenants,
        fairness=jain_index([t.mean_slowdown for t in tenants]),
        queue_timeline=tuple(tuple(p) for p in queue_timeline),
        makespan=makespan,
    )


def format_slo_table(report: SLOReport) -> str:
    """Render the serving run the way the paper renders its tables."""
    lines: List[str] = []
    o = report.overall
    lines.append(
        f"Open-loop run: {o.n_queries} queries over "
        f"{report.makespan:.1f}s simulated "
        f"({report.throughput_qps:.2f} q/s)"
    )
    header = (f"{'tenant':<12} {'queries':>8} {'p50':>8} {'p95':>8} "
              f"{'p99':>8} {'queued':>8} {'miss%':>7} {'slowdn':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for t in report.tenants + (o,):
        lines.append(
            f"{t.tenant:<12} {t.n_queries:>8} {t.p50_latency:>8.3f} "
            f"{t.p95_latency:>8.3f} {t.p99_latency:>8.3f} "
            f"{t.mean_queued:>8.3f} {t.miss_rate * 100:>6.1f}% "
            f"{t.mean_slowdown:>6.2f}x"
        )
    lines.append(
        f"fairness (Jain, tenant mean slowdowns) {report.fairness:.3f}; "
        f"peak queue {report.peak_queued}, "
        f"peak in-flight {report.peak_in_flight}"
    )
    return "\n".join(lines)
