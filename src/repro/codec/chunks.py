"""GOP (chunk) structure and chunk-skip decode accounting (Section 2.3).

An encoded stream is a sequence of chunks; each begins with a keyframe and
is the smallest independently decodable unit.  When a consumer samples one
frame every N stored frames and N exceeds the keyframe interval M, the
decoder can jump to the sampled frame's chunk and decode only from that
chunk's keyframe, skipping whole chunks in between (Figure 3b).

This module computes the *exact* number of frames a decoder must touch for
a given (sampling stride, keyframe interval) pair.
"""

from __future__ import annotations

from math import gcd
from typing import List

from repro.errors import CodecError


def gop_layout(n_frames: int, keyframe_interval: int) -> List[int]:
    """Chunk lengths for a stream of ``n_frames`` with the given GOP size."""
    if keyframe_interval <= 0:
        raise CodecError(f"keyframe interval must be positive: {keyframe_interval}")
    full, rest = divmod(n_frames, keyframe_interval)
    layout = [keyframe_interval] * full
    if rest:
        layout.append(rest)
    return layout


def decoded_frame_count(n_frames: int, stride: int, keyframe_interval: int) -> int:
    """Frames the decoder must decode to produce samples 0, stride, 2*stride...

    Within a chunk, decoding frame i requires every frame from the chunk's
    keyframe up to i (the reference chain); across samples the decoder either
    continues from where it stopped or jumps to the next sample's keyframe,
    whichever touches fewer frames.
    """
    if stride <= 0:
        raise CodecError(f"sampling stride must be positive: {stride}")
    if n_frames <= 0:
        return 0
    decoded = 0
    last = -1  # index of the last decoded frame, -1 before any decode
    for i in range(0, n_frames, stride):
        key = (i // keyframe_interval) * keyframe_interval
        start = last + 1 if last >= key else key
        decoded += i - start + 1
        last = i
    return decoded


def decoded_frame_fraction(stride: int, keyframe_interval: int) -> float:
    """Long-run fraction of stored frames decoded under sparse sampling.

    Computed exactly over one period of the joint (stride, GOP) pattern, so
    it is precise for any combination, not just stride >> GOP.
    """
    if stride <= 1:
        return 1.0
    period = stride * keyframe_interval // gcd(stride, keyframe_interval)
    # Cover at least a few samples so the steady state dominates.
    n = max(period, stride * 4)
    n -= n % stride  # end exactly on a sample boundary
    return decoded_frame_count(n, stride, keyframe_interval) / float(n)
