"""OCR: optical character recognition on plate regions (OpenALPR).

OCR reads the characters inside detected plate regions.  Characters are a
fraction of the plate's height, making OCR the most resolution-hungry
operator in the library: the paper's configuration keeps 540p-720p inputs
at ``best``/``good`` quality even for 0.8-target accuracy.
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator


class OCROperator(DetectorOperator):
    """Optical character recognition on license plates [OpenALPR]."""

    name = "OCR"
    platform = "cpu"

    # Cost: per-region classification, moderate pixel scaling.
    cost_base = 2.8e-3
    cost_per_mp = 6.0e-3
    cost_gamma = 1.0

    target_kinds = ("car",)
    requires_plate = True
    feature_scale = 0.25
    theta = 3.05  # characters need more pixels than plate boxes
    width = 0.32
    quality_alpha = 1.8  # glyph strokes vanish with compression
    fp_base = 0.03
