"""Figure 6: video retrieval can bottleneck consumption.

(a) License: consumption can outrun decoding when the on-disk video is the
    richest ingest format, but not when stored at the consumed fidelity;
(b) Motion: consumption outruns decoding even at matching fidelity — such
    consumers need raw frames.
"""

from repro.codec.model import DEFAULT_CODEC
from repro.profiler.profiler import OperatorProfiler
from repro.retrieval.speed import retrieval_speed
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity, richest_fidelity
from repro.video.format import StorageFormat

CODING = Coding("slowest", 250)


def test_fig6a_license(benchmark, record, full_library):
    profiler = OperatorProfiler(full_library, "dashcam")
    fidelities = [
        Fidelity.parse("good-540p-1/6-75%"),
        Fidelity.parse("bad-540p-1/6-100%"),
        Fidelity.parse("good-540p-1/6-100%"),
    ]

    def measure():
        rows = []
        golden = StorageFormat(richest_fidelity(), CODING)
        for fid in fidelities:
            profile = profiler.profile("License", fid)
            from_golden = retrieval_speed(golden, fid.sampling)
            same_fid = retrieval_speed(StorageFormat(fid, CODING),
                                       fid.sampling)
            rows.append((fid.label, profile.accuracy,
                         profile.consumption_speed, from_golden, same_fid))
        return rows

    rows = benchmark(measure)
    lines = [f"{'fidelity':>22} {'F1':>5} {'consume':>9} {'dec@golden':>11} "
             f"{'dec@same':>9}"]
    for label, acc, cons, golden, same in rows:
        lines.append(f"{label:>22} {acc:>5.2f} {cons:>8.0f}x {golden:>10.0f}x "
                     f"{same:>8.0f}x")
    record("Figure 6a — License", "\n".join(lines))

    for _, _, cons, from_golden, same_fid in rows:
        # Decoding the golden format bottlenecks consumption...
        assert cons > from_golden
        # ...while decoding video stored at the consumed fidelity keeps up.
        assert same_fid > cons


def test_fig6b_motion_needs_raw(benchmark, record, full_library):
    profiler = OperatorProfiler(full_library, "dashcam")
    fidelities = [
        Fidelity.parse("bad-180p-1/6-100%"),
        Fidelity.parse("best-180p-1-100%"),
    ]

    def measure():
        rows = []
        for fid in fidelities:
            profile = profiler.profile("Motion", fid)
            same_fid = retrieval_speed(StorageFormat(fid, CODING),
                                       fid.sampling)
            raw = retrieval_speed(StorageFormat(fid, RAW), fid.sampling)
            rows.append((fid.label, profile.accuracy,
                         profile.consumption_speed, same_fid, raw))
        return rows

    rows = benchmark(measure)
    lines = [f"{'fidelity':>22} {'F1':>5} {'consume':>10} {'dec@same':>9} "
             f"{'raw':>9}"]
    for label, acc, cons, same, raw in rows:
        lines.append(f"{label:>22} {acc:>5.2f} {cons:>9.0f}x {same:>8.0f}x "
                     f"{raw:>8.0f}x")
    record("Figure 6b — Motion", "\n".join(lines))

    for _, _, cons, same_fid, raw in rows:
        # Even matching-fidelity decoding is too slow for Motion...
        assert cons > same_fid
        # ...and raw frames close (most of) the gap.
        assert raw > 5 * same_fid
