"""S-NN: specialized shallow neural network detecting one object class.

NoScope's model search produces a very shallow AlexNet specialized for the
queried class (cars here).  It is orders of magnitude cheaper than a full
NN but far more brittle: it needs sharp, good-sized inputs, so both its
size threshold and its quality sensitivity are high.  Table 3 shows VStore
giving S-NN ``best`` quality at ~200p across accuracy levels.
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator


class SNNOperator(DetectorOperator):
    """Specialized shallow NN for one object class [NoScope]."""

    name = "S-NN"
    platform = "gpu"

    # Cost: a few conv layers on GPU; nearly resolution-flat.
    cost_base = 4.2e-5
    cost_per_mp = 1.6e-4
    cost_gamma = 0.7

    target_kinds = ("car",)
    feature_scale = 1.0
    theta = 3.05  # needs reasonably sized objects
    width = 0.42
    quality_alpha = 2.3  # shallow nets are brittle to compression
    fp_base = 0.05
