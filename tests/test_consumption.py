"""Consumption-format derivation (Section 4.2)."""

import pytest

from repro.core.consumption import ConsumptionPlanner
from repro.core.knobs import boundary_search_run_bound, exhaustive_run_bound
from repro.errors import ConfigurationError
from repro.operators.library import Consumer, default_library
from repro.profiler.profiler import OperatorProfiler

CONSUMERS = [
    Consumer("Diff", 0.9),
    Consumer("S-NN", 0.8),
    Consumer("NN", 0.95),
]


@pytest.fixture(scope="module")
def planner(library):
    return ConsumptionPlanner(OperatorProfiler(library, "jackson"))


@pytest.fixture(scope="module")
def planner_b(library):
    return ConsumptionPlanner(OperatorProfiler(library, "dashcam"))


@pytest.mark.parametrize("consumer", CONSUMERS, ids=str)
def test_derived_format_meets_accuracy(planner, consumer):
    d = planner.derive(consumer)
    assert d.accuracy >= consumer.accuracy
    assert d.consumption_speed > 0
    assert d.cf.fidelity == d.fidelity


@pytest.mark.parametrize("consumer", CONSUMERS, ids=str)
def test_boundary_matches_exhaustive_optimum(planner, consumer):
    """The O(rows+cols) walk finds the same minimum-cost format as
    profiling all 600 fidelity options."""
    fast = planner.derive(consumer)
    slow = planner.derive_exhaustive(consumer)
    assert fast.consumption_speed >= slow.consumption_speed * (1 - 1e-9)


def test_lower_accuracy_is_never_slower(planner_b):
    """Figure 11a's premise: dropping the target accuracy lets the store
    hand the operator cheaper video."""
    speeds = [
        planner_b.derive(Consumer("License", acc)).consumption_speed
        for acc in (0.95, 0.9, 0.8, 0.7)
    ]
    assert speeds == sorted(speeds)


def test_profiling_run_bound(library):
    """The search profiles O((Ns+Nr)*Ncrop + Nq) options per consumer —
    far below the 600-option exhaustive bound (Figure 14's 9-15x)."""
    profiler = OperatorProfiler(library, "jackson")
    planner = ConsumptionPlanner(profiler)
    planner.derive(Consumer("NN", 0.9))
    assert profiler.stats.runs <= boundary_search_run_bound()
    assert boundary_search_run_bound() * 9 <= exhaustive_run_bound()


def test_accuracies_share_profiling_runs(library):
    """Profiling one operator's four accuracy levels shares runs through
    memoization (Section 4.2's 'further optimization')."""
    profiler = OperatorProfiler(library, "jackson")
    planner = ConsumptionPlanner(profiler)
    planner.derive(Consumer("S-NN", 0.95))
    runs_first = profiler.stats.runs
    planner.derive(Consumer("S-NN", 0.9))
    planner.derive(Consumer("S-NN", 0.8))
    planner.derive(Consumer("S-NN", 0.7))
    assert profiler.stats.runs < 4 * runs_first
    assert profiler.stats.memo_hits > 0


def test_quality_post_pass_lowers_quality_only_if_adequate(planner):
    d = planner.derive(Consumer("NN", 0.8))
    # Any richer quality at the same other knobs must also be adequate
    # (monotonicity), and the chosen one is adequate itself.
    assert d.accuracy >= 0.8


def test_impossible_accuracy_raises(planner):
    with pytest.raises(ConfigurationError):
        planner.derive(Consumer("NN", 1.5))


def test_derive_all(planner):
    decisions = planner.derive_all(CONSUMERS)
    assert [d.consumer for d in decisions] == CONSUMERS
