"""Exporters: Chrome trace-event JSON and the columnar analytics tier.

Two evidence formats, two audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` render a run's task
  intervals as Chrome trace-event JSON — open the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and *see* where
  simulated time went: one process lane per query with its serial task
  slices, plus per-resource occupancy counter tracks.  The output is
  deterministic byte-for-byte (sorted keys, canonical float rounding),
  so it is golden-testable like the raw traces;
* the columnar tier (:func:`write_rows` / :func:`read_rows` /
  :func:`export_run`) persists trace events, per-task intervals,
  utilization timelines, per-query spans, metrics snapshots, and bench
  history as analytics tables — Parquet via ``pyarrow`` when the host
  has it, otherwise a deterministic JSONL fallback with identical rows.
  Both load straight into pandas (:func:`to_dataframe`) or DuckDB
  (``SELECT ... FROM 'trace_events.jsonl'`` works as-is), which turns
  cross-PR regression diffing into a query instead of an eyeball pass.

Nothing here imports the executor: exporters consume the locked trace
schema (:mod:`repro.obs.trace`) and plain row dicts, so they work on a
live run, a golden file, or a BENCH.json equally.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    intervals_from_events,
    phase_of,
    query_spans,
)

__all__ = [
    "chrome_trace",
    "columnar_suffix",
    "export_run",
    "bench_history_rows",
    "read_rows",
    "to_dataframe",
    "write_chrome_trace",
    "write_rows",
]


def _pyarrow():
    """The pyarrow module, or None when the host image lacks it."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401

        return pyarrow
    except ImportError:
        return None


def columnar_suffix() -> str:
    """Extension the columnar tier writes on this host."""
    return ".parquet" if _pyarrow() is not None else ".jsonl"


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

#: pid reserved for the per-resource occupancy counter tracks; query
#: lanes start at pid 1 in first-submission order.
_RESOURCE_PID = 0


def _us(seconds: float) -> float:
    """Canonical microsecond timestamp: rounded so output is stable."""
    return round(seconds * 1e6, 3)


def chrome_trace(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> Dict[str, object]:
    """Render one executor trace as a Chrome trace-event payload.

    Layout: one *process* per query (named lane in Perfetto), one ``X``
    complete-slice per task (``args`` carry resource, phase and queueing
    delay), and per-resource ``C`` counter tracks plotting how many
    tasks each pool is running over simulated time.  Deterministic for a
    given event stream.
    """
    intervals = intervals_from_events(events, start_time)
    trace_events: List[Dict[str, object]] = []

    queries: List[str] = []
    for iv in intervals:
        if iv.query not in queries:
            queries.append(iv.query)
    pid_of = {q: i + 1 for i, q in enumerate(queries)}

    trace_events.append({
        "ph": "M", "pid": _RESOURCE_PID, "tid": 0,
        "name": "process_name", "args": {"name": "resources"},
    })
    for q in queries:
        trace_events.append({
            "ph": "M", "pid": pid_of[q], "tid": 0,
            "name": "process_name", "args": {"name": q},
        })

    for iv in intervals:
        trace_events.append({
            "ph": "X",
            "pid": pid_of[iv.query],
            "tid": 0,
            "ts": _us(iv.start),
            "dur": _us(iv.duration),
            "name": f"{iv.kind}:{iv.operator}",
            "cat": iv.phase,
            "args": {
                "resource": iv.resource,
                "wait_us": _us(iv.wait),
                "background": iv.background,
            },
        })

    # Occupancy counters: +1 at each start, -1 at each end, one track
    # per resource, emitted at every change point.
    deltas: Dict[str, List] = {}
    for iv in intervals:
        deltas.setdefault(iv.resource, []).append((iv.start, 1))
        deltas.setdefault(iv.resource, []).append((iv.end, -1))
    for resource in sorted(deltas):
        running = 0
        last_t = None
        for t, delta in sorted(deltas[resource]):
            if last_t is not None and t != last_t:
                trace_events.append({
                    "ph": "C", "pid": _RESOURCE_PID, "tid": 0,
                    "ts": _us(last_t), "name": f"occupancy:{resource}",
                    "args": {"running": running},
                })
            running += delta
            last_t = t
        if last_t is not None:
            trace_events.append({
                "ph": "C", "pid": _RESOURCE_PID, "tid": 0,
                "ts": _us(last_t), "name": f"occupancy:{resource}",
                "args": {"running": running},
            })

    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.export",
            "trace_schema_version": TRACE_SCHEMA_VERSION,
        },
        "traceEvents": trace_events,
    }


def write_chrome_trace(
    path: str,
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> str:
    """Write the Chrome trace to ``path``; bytes are deterministic."""
    payload = chrome_trace(events, start_time)
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1, ensure_ascii=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# The columnar analytics tier
# ---------------------------------------------------------------------------


def _normalize_rows(rows: Sequence[Mapping[str, object]]) -> List[Dict]:
    """Uniform key-set across rows (None-filled), keys sorted.

    Parquet needs one schema per table; the JSONL fallback adopts the
    same normalization so both formats reload identical rows.
    """
    keys = sorted({k for row in rows for k in row})
    return [{k: row.get(k) for k in keys} for row in rows]


def write_rows(path: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Write one analytics table; format chosen by the path's suffix.

    ``.parquet`` requires pyarrow (raising if absent — pick the suffix
    via :func:`columnar_suffix`); ``.jsonl`` writes one sorted-keys JSON
    object per line, bit-deterministic for a given row sequence.
    """
    normalized = _normalize_rows(rows)
    if path.endswith(".parquet"):
        pa = _pyarrow()
        if pa is None:
            raise RuntimeError(
                f"cannot write {path}: pyarrow is not installed "
                f"(use the .jsonl fallback via columnar_suffix())"
            )
        columns = sorted({k for row in normalized for k in row})
        table = pa.table({
            k: [row.get(k) for row in normalized] for k in columns
        })
        pa.parquet.write_table(table, path)
        return path
    if path.endswith(".jsonl"):
        with open(path, "w") as fh:
            for row in normalized:
                fh.write(json.dumps(row, sort_keys=True, ensure_ascii=True))
                fh.write("\n")
        return path
    raise ValueError(f"unknown columnar suffix on {path!r} "
                     f"(want .parquet or .jsonl)")


def read_rows(path: str) -> List[Dict]:
    """Reload a columnar table written by :func:`write_rows`."""
    if path.endswith(".parquet"):
        pa = _pyarrow()
        if pa is None:
            raise RuntimeError(f"cannot read {path}: pyarrow not installed")
        return pa.parquet.read_table(path).to_pylist()
    if path.endswith(".jsonl"):
        with open(path) as fh:
            return [json.loads(line) for line in fh if line.strip()]
    raise ValueError(f"unknown columnar suffix on {path!r}")


def to_dataframe(path_or_rows):
    """Load a table (path or row list) as a pandas DataFrame.

    Requires pandas; the rest of the tier works without it.
    """
    try:
        import pandas as pd
    except ImportError as exc:  # pragma: no cover - host-dependent
        raise RuntimeError(
            "to_dataframe requires pandas; install it or query the "
            ".jsonl/.parquet files with DuckDB directly"
        ) from exc
    if isinstance(path_or_rows, str):
        return pd.DataFrame(read_rows(path_or_rows))
    return pd.DataFrame(list(path_or_rows))


def bench_history_rows(path: str) -> List[Dict]:
    """Flatten one BENCH.json into analytics rows (one per metric cell)."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != 1:
        raise ValueError(f"{path}: unsupported BENCH schema "
                         f"{data.get('schema')!r}")
    rows: List[Dict] = []
    for cell in sorted(data.get("metrics", {})):
        rows.append({"cell": cell, **data["metrics"][cell]})
    return rows


def export_run(
    outdir: str,
    events: Sequence[Mapping[str, object]] = (),
    metrics_rows: Sequence[Mapping[str, object]] = (),
    bench_path: Optional[str] = None,
    start_time: Optional[float] = None,
) -> Dict[str, str]:
    """Export one run's full observability bundle into ``outdir``.

    Writes (when the corresponding input is non-empty):

    * ``chrome_trace.json`` — the Perfetto-loadable trace;
    * ``trace_events.*`` — the raw locked-schema event stream;
    * ``intervals.*`` — per-task intervals with submit/wait;
    * ``queries.*`` — per-query spans (critical resource, phase split);
    * ``utilization.*`` — per-resource running/waiting timeline;
    * ``metrics.*`` — the registry snapshot, flattened;
    * ``bench_history.*`` — flattened BENCH.json cells.

    Returns ``{table name: written path}``.  ``*`` is ``.parquet`` when
    pyarrow is available, ``.jsonl`` otherwise — both reload bit-equal
    through :func:`read_rows`.
    """
    os.makedirs(outdir, exist_ok=True)
    suffix = columnar_suffix()
    written: Dict[str, str] = {}

    def _table(name: str, rows: Sequence[Mapping[str, object]]) -> None:
        if rows:
            written[name] = write_rows(
                os.path.join(outdir, name + suffix), rows
            )

    if events:
        written["chrome_trace"] = write_chrome_trace(
            os.path.join(outdir, "chrome_trace.json"), events, start_time
        )
        _table("trace_events", list(events))
        intervals = intervals_from_events(events, start_time)
        _table("intervals", [
            {
                "query": iv.query, "kind": iv.kind, "operator": iv.operator,
                "resource": iv.resource, "phase": phase_of(iv.resource),
                "submit": iv.submit, "start": iv.start, "end": iv.end,
                "duration": iv.duration, "wait": iv.wait,
                "background": iv.background,
            }
            for iv in intervals
        ])
        spans = query_spans(events, start_time)
        _table("queries", [
            {
                "query": s.query, "admitted": s.admitted,
                "finished": s.finished, "latency": s.latency,
                "n_tasks": s.n_tasks, "service": s.service_seconds,
                "waited": s.waited_seconds,
                "bound_resource": s.bound_resource,
                "background": s.background,
                "single_flight": s.single_flight,
            }
            for s in spans
        ])
        from repro.analysis.obs import utilization_rows

        _table("utilization", utilization_rows(events, start_time))
    _table("metrics", list(metrics_rows))
    if bench_path is not None:
        _table("bench_history", bench_history_rows(bench_path))
    return written
