"""Adapting to changes in operators and hardware (Section 7).

VStore works with any queries composed from its pre-defined library.  When
the library *changes*, the paper prescribes incremental adaptation rather
than wholesale reconfiguration:

* **adding an operator (or accuracy level)**: profile the newcomer and
  derive its consumption formats.  For *forthcoming* videos the storage
  formats are re-derived; for *existing* videos — transcoding old footage
  is too expensive — each new CF subscribes to the cheapest existing SF
  with satisfiable fidelity (R1 holds, so accuracy is met; retrieval may be
  slower than optimal until that footage ages out).
* **hardware changes** (e.g. a new GPU): all operators are re-profiled,
  which this module models by rebuilding the configuration with fresh
  profilers under the new cost model.

Since the online-evolution refactor this module also hosts the *live*
adaptation path: :func:`replan_incremental` hill-climbs a new configuration
from the current plan (Mode-3 style, warm-started via the coding profiler's
memo tables), :func:`legacy_configuration` lets frozen stores keep answering
drifted queries from existing formats, and the job builders at the bottom
(:func:`reencode_jobs`, :func:`retirement_jobs`, :func:`erosion_jobs`,
:func:`rebalance_jobs`) turn the plan diff into
:class:`~repro.query.scheduler.BackgroundJob` chains that contend with
foreground queries on the executor's shared pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.core.coalesce import (
    CoalescePlan,
    Demand,
    SFPlan,
    StorageFormatPlanner,
)
from repro.core.config import (
    ConfigStats,
    Configuration,
    DEFAULT_PROFILE_DATASETS,
    build_operator_profilers,
    derive_configuration,
    mean_profile_activity,
    resolve_profile_datasets,
)
from repro.core.consumption import ConsumptionDecision, ConsumptionPlanner
from repro.core.erosion import ErosionPlanner
from repro.errors import ConfigurationError
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer, OperatorLibrary
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.retrieval.speed import retrieval_speed
from repro.storage.lifespan import AgeTracker, erosion_rank
from repro.storage.segment_store import SegmentStore
from repro.storage.sharding import plan_rebalance
from repro.units import SEGMENT_SECONDS
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class LegacySubscription:
    """A new consumer bound to an *existing* storage format.

    ``optimal`` is False when the legacy format satisfies fidelity (R1) but
    cannot match the consumer's consumption speed (R2) — the paper's
    "operators run with designated accuracies, albeit slower than optimal".
    """

    consumer: Consumer
    decision: ConsumptionDecision
    storage: SFPlan
    effective_speed: float
    optimal: bool


@dataclass
class EvolvedConfiguration:
    """Outcome of adding operators to a configured store."""

    #: Configuration applied to forthcoming videos (SFs re-derived).
    forthcoming: Configuration
    #: Subscriptions of the *new* consumers on already-stored videos.
    legacy: List[LegacySubscription]


def subscribe_to_existing(
    decision: ConsumptionDecision, formats: Sequence[SFPlan]
) -> LegacySubscription:
    """Bind a new consumer to the cheapest existing SF with satisfiable
    fidelity (Section 7's rule for footage already on disk)."""
    candidates = [
        sf for sf in formats if sf.fidelity.richer_equal(decision.fidelity)
    ]
    if not candidates:
        raise ConfigurationError(
            f"no existing storage format can supply {decision.fidelity.label}"
            " — the golden format should always qualify"
        )

    def cost_key(sf: SFPlan) -> Tuple[float, float]:
        # Cheapest to retrieve from, then fewest pixels (cheapest to hold).
        speed = retrieval_speed(sf.fmt, decision.fidelity.sampling)
        return (-speed, sf.fidelity.pixels)

    best = min(candidates, key=cost_key)
    speed = retrieval_speed(best.fmt, decision.fidelity.sampling)
    effective = min(speed, decision.consumption_speed)
    return LegacySubscription(
        consumer=decision.consumer,
        decision=decision,
        storage=best,
        effective_speed=effective,
        optimal=speed >= decision.consumption_speed,
    )


def add_operators(
    config: Configuration,
    library: OperatorLibrary,
    new_consumers: Sequence[Consumer],
    profile_datasets: Optional[Dict[str, str]] = None,
    clock: Optional[SimClock] = None,
) -> EvolvedConfiguration:
    """Admit new consumers into a configured store (Section 7).

    ``library`` must already contain the new operators.  Existing consumers
    keep their decisions; only the newcomers are profiled, which keeps the
    adaptation cost at O(new operators) rather than a full round.
    """
    clock = clock or SimClock()
    datasets = dict(profile_datasets or DEFAULT_PROFILE_DATASETS)
    existing = {c for c in config.consumers}
    added = [c for c in new_consumers if c not in existing]
    if not added:
        raise ConfigurationError("no new consumers to add")

    profilers: Dict[str, OperatorProfiler] = {}
    new_decisions: List[ConsumptionDecision] = []
    for consumer in added:
        dataset = datasets.get(consumer.operator)
        if dataset is None:
            raise ConfigurationError(
                f"no profiling dataset assigned for {consumer.operator!r}"
            )
        if dataset not in profilers:
            profilers[dataset] = OperatorProfiler(library, dataset,
                                                  clock=clock)
        planner = ConsumptionPlanner(profilers[dataset])
        new_decisions.append(planner.derive(consumer))

    # Existing videos: bind each new CF to the cheapest satisfiable SF.
    legacy = [
        subscribe_to_existing(d, config.plan.formats) for d in new_decisions
    ]

    # Forthcoming videos: re-derive the configuration over the full
    # consumer set, reusing the already-built profilers.
    forthcoming = derive_configuration(
        library,
        consumers=list(config.consumers) + added,
        profile_datasets=datasets,
        clock=clock,
        profilers=profilers,
    )
    return EvolvedConfiguration(forthcoming=forthcoming, legacy=legacy)


def reprofile_for_hardware(
    library: OperatorLibrary,
    config: Configuration,
    speedup: float,
    profile_datasets: Optional[Dict[str, str]] = None,
) -> Configuration:
    """Re-derive the configuration after a hardware change (Section 7).

    ``speedup`` scales every operator's consumption speed (e.g. 2.0 for a
    GPU twice as fast).  All operators are re-profiled; the caller applies
    the new SFs to forthcoming videos only, exactly as with operator
    additions.
    """
    if speedup <= 0:
        raise ConfigurationError(f"speedup must be positive: {speedup}")
    for op in library:
        # Faster hardware divides the per-frame costs.
        op.cost_base = op.cost_base / speedup
        op.cost_per_mp = op.cost_per_mp / speedup
    try:
        return derive_configuration(
            library,
            consumers=config.consumers,
            profile_datasets=profile_datasets,
        )
    finally:
        for op in library:
            op.cost_base = op.cost_base * speedup
            op.cost_per_mp = op.cost_per_mp * speedup


# -- incremental re-planning (online evolution) ------------------------------


def decide_consumers(
    library: OperatorLibrary,
    consumers: Sequence[Consumer],
    profile_datasets: Optional[Mapping[str, str]] = None,
    clock: Optional[SimClock] = None,
    known: Optional[Mapping[Consumer, ConsumptionDecision]] = None,
    profilers: Optional[Dict[str, OperatorProfiler]] = None,
) -> List[ConsumptionDecision]:
    """Consumption decisions for ``consumers``, profiling only the unknown.

    ``known`` carries decisions from the current configuration; consumers
    found there are returned as-is, so a stationary mix costs zero profiler
    runs and a drifted mix costs O(new consumers) — the same property
    :func:`add_operators` has, packaged for the re-planner.
    """
    clock = clock or SimClock()
    datasets = resolve_profile_datasets(profile_datasets)
    known = dict(known or {})
    missing = [c for c in consumers if c not in known]
    if missing:
        profilers = build_operator_profilers(
            library, missing, datasets, clock, profilers
        )
    decisions: List[ConsumptionDecision] = []
    for consumer in consumers:
        decision = known.get(consumer)
        if decision is None:
            planner = ConsumptionPlanner(
                profilers[datasets[consumer.operator]]
            )
            decision = planner.derive(consumer)
            known[consumer] = decision
        decisions.append(decision)
    return decisions


@dataclass
class ReplanResult:
    """An incrementally re-derived configuration, diffed against the old."""

    configuration: Configuration
    #: Formats in the new plan that the old plan did not hold (must be
    #: materialized by re-encode jobs before the plan can serve queries).
    added: List[SFPlan]
    #: Old formats the new plan dropped (retired once the plan commits).
    removed: List[SFPlan]
    #: Formats present in both plans (their stored segments carry over).
    kept: List[SFPlan]

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)


def replan_incremental(
    config: Configuration,
    library: OperatorLibrary,
    consumers: Sequence[Consumer],
    profile_datasets: Optional[Mapping[str, str]] = None,
    ingest_budget: IngestBudget = IngestBudget(),
    storage_budget_bytes: Optional[float] = None,
    lifespan_days: int = 10,
    clock: Optional[SimClock] = None,
) -> ReplanResult:
    """Re-derive the configuration for a drifted mix, warm from the old.

    The paper's Mode-3 planner: instead of re-running the full backward
    derivation, the hill-climb restarts from the *current* plan
    (:meth:`StorageFormatPlanner.incremental_coalesce
    <repro.core.coalesce.StorageFormatPlanner.incremental_coalesce>`) and
    only the consumers the old configuration never decided are profiled.
    The old configuration's coding profiler — with its ProfileTable memos —
    is threaded through, so every (fidelity, coding) surface point the old
    derivation already paid for is a memo hit here.
    """
    clock = clock or SimClock()
    consumers = list(consumers)
    if not consumers:
        raise ConfigurationError("cannot re-plan with no consumers")
    known = {d.consumer: d for d in config.decisions}
    profilers: Dict[str, OperatorProfiler] = {}
    decisions = decide_consumers(
        library, consumers, profile_datasets, clock,
        known=known, profilers=profilers,
    )

    coding_profiler = config.coding_profiler
    if coding_profiler is None:
        # A configuration built without the warm-start channel (hand-rolled
        # in tests, or loaded from an older store) re-plans cold.
        coding_profiler = CodingProfiler(
            activity=mean_profile_activity(profilers), clock=clock
        )
    planner = StorageFormatPlanner(coding_profiler, ingest_budget)
    plan = planner.incremental_coalesce(decisions, config.plan.formats)

    rates = {
        sf.label: coding_profiler.profile(sf.fmt).bytes_per_second
        for sf in plan.formats
    }
    erosion = ErosionPlanner(
        plan.formats, rates, lifespan_days
    ).plan(storage_budget_bytes)

    stats = ConfigStats(
        operator_runs=sum(p.stats.runs for p in profilers.values()),
        operator_seconds=sum(p.stats.seconds for p in profilers.values()),
        coding_runs=coding_profiler.stats.runs,
        coding_memo_hits=coding_profiler.stats.memo_hits,
        coding_seconds=coding_profiler.stats.seconds,
        coalesce_rounds=plan.rounds,
    )
    configuration = Configuration(
        consumers=consumers,
        decisions=decisions,
        plan=plan,
        erosion=erosion,
        stats=stats,
        coding_profiler=coding_profiler,
    )

    old_labels = {sf.label for sf in config.plan.formats}
    new_labels = {sf.label for sf in plan.formats}
    return ReplanResult(
        configuration=configuration,
        added=[sf for sf in plan.formats if sf.label not in old_labels],
        removed=[sf for sf in config.plan.formats
                 if sf.label not in new_labels],
        kept=[sf for sf in plan.formats if sf.label in old_labels],
    )


def legacy_configuration(
    config: Configuration,
    new_decisions: Sequence[ConsumptionDecision],
) -> Configuration:
    """A *frozen* store's answer to a drifted mix: subscribe, don't evolve.

    Consumers already in ``config`` keep their subscriptions; every new
    decision binds to the cheapest existing SF with satisfiable fidelity
    (:func:`subscribe_to_existing` — the golden format always qualifies).
    The returned configuration shares the frozen plan's format set (demand
    lists are copied, stored segments are untouched), so the query engine
    can plan and execute the drifted queries against the unchanged store.
    This is the baseline online evolution is measured against in
    :mod:`repro.analysis.drift`.
    """
    formats = [
        SFPlan(sf.fidelity, sf.coding, list(sf.demands), golden=sf.golden)
        for sf in config.plan.formats
    ]
    decisions = list(config.decisions)
    known = {d.consumer for d in decisions}
    for decision in new_decisions:
        if decision.consumer in known:
            continue
        sub = subscribe_to_existing(decision, formats)
        sub.storage.demands.append(
            Demand(decision.consumer, decision.fidelity,
                   decision.consumption_speed, legacy=True)
        )
        decisions.append(decision)
        known.add(decision.consumer)
    plan = CoalescePlan(
        formats=formats,
        storage_bytes_per_second=config.plan.storage_bytes_per_second,
        ingest_cores=config.plan.ingest_cores,
        rounds=config.plan.rounds,
    )
    return Configuration(
        consumers=[d.consumer for d in decisions],
        decisions=decisions,
        plan=plan,
        erosion=config.erosion,
        stats=config.stats,
        coding_profiler=config.coding_profiler,
    )


# -- background-job builders -------------------------------------------------
#
# Each builder turns one piece of an adopted plan diff into
# :class:`~repro.query.scheduler.BackgroundJob` chains.  The tasks charge
# the executor's pools (disk channels, decoder, operator contexts) with the
# modeled cost of the physical work, and each chain's *final* task carries
# the ``on_done`` hook that commits the store mutation at the simulated
# completion instant — so a mutation lands only after its I/O and compute
# were actually paid for under contention.  The scheduler is imported
# inside the builders: ``repro.core`` loads before ``repro.query`` in the
# package graph, so a module-level import would cycle.


def _shard_disk(store: SegmentStore, shard: int):
    return store.disk if store.array is None else store.array.shard(shard)


def reencode_jobs(
    store: SegmentStore,
    stream: str,
    targets: Sequence[StorageFormat],
    source: StorageFormat,
    *,
    epoch: int,
    codec: CodecModel = DEFAULT_CODEC,
) -> List["BackgroundJob"]:  # noqa: F821 - imported in the function body
    """One re-encode job per new format: read golden, decode, encode, write.

    Every stored segment of ``source`` (the golden format — the only one
    guaranteed to satisfy any new format's fidelity) becomes a four-task
    chain: a shard-routed disk read, a decode on the decoder pool (skipped
    for raw sources), a transcode on the operator pool whose cost is
    exactly the ingest encoder's, and a disk write whose ``on_done``
    commits the segment via :meth:`SegmentStore.put` with ``charge=False``
    (the write time was already paid on the channel pool) tagged with the
    in-flight ``epoch``.  The write is charged to the *source* segment's
    shard — a locality approximation; the placement policy assigns the
    committed segment's real shard at put time.
    """
    from repro.query.scheduler import BackgroundJob, ResourceTask

    jobs: List[BackgroundJob] = []
    indices = store.indices(stream, source)
    for target in targets:
        tasks: List[ResourceTask] = []
        for index in indices:
            meta = store.meta(stream, source, index)
            disk = _shard_disk(store, meta.shard)
            tasks.append(ResourceTask(
                kind="read", resource="disk", units=1,
                duration=(meta.size_bytes / disk.read_bandwidth
                          + disk.request_overhead),
                category="disk", operator="reencode", shard=meta.shard,
            ))
            if not source.coding.raw:
                tasks.append(ResourceTask(
                    kind="decode", resource="decoder", units=1,
                    duration=meta.n_frames * codec.decode_frame_seconds(
                        source.fidelity, source.coding
                    ),
                    category="decode", operator="reencode",
                ))
            # A scratch-clock encoder reproduces the ingest pipeline's
            # exact cost and size floats for the re-encoded segment.
            scratch = SimClock()
            encoded = Encoder(codec, scratch).encode(
                meta.segment, target, meta.activity
            )
            tasks.append(ResourceTask(
                kind="transcode", resource="operators", units=1,
                duration=scratch.by_category.get("ingest", 0.0),
                category="ingest", operator="reencode",
            ))
            tasks.append(ResourceTask(
                kind="write", resource="disk", units=1,
                duration=(encoded.size_bytes / disk.write_bandwidth
                          + disk.request_overhead),
                category="disk", operator="reencode", shard=meta.shard,
                on_done=(lambda e=encoded:
                         store.put(e, epoch=epoch, charge=False)),
            ))
        if tasks:
            jobs.append(BackgroundJob(
                name=f"reencode:{target.label}", stream=stream,
                kind="reencode", tasks=tuple(tasks),
            ))
    return jobs


def retirement_jobs(
    store: SegmentStore,
    stream: str,
    retired: Sequence[StorageFormat],
) -> List["BackgroundJob"]:  # noqa: F821
    """Delete every stored segment of the formats the new plan dropped.

    Deletes are metadata operations: each costs one request overhead on
    the segment's shard channel, and the ``on_done`` hook performs the
    actual :meth:`SegmentStore.delete` at the simulated instant.
    """
    from repro.query.scheduler import BackgroundJob, ResourceTask

    jobs: List[BackgroundJob] = []
    for fmt in retired:
        tasks: List[ResourceTask] = []
        for index in store.indices(stream, fmt):
            shard = store.shard_of(stream, fmt, index)
            disk = _shard_disk(store, shard)
            tasks.append(ResourceTask(
                kind="delete", resource="disk", units=1,
                duration=disk.request_overhead,
                category="disk", operator="retire", shard=shard,
                on_done=(lambda s=stream, f=fmt, i=index:
                         store.delete(s, f, i)),
            ))
        if tasks:
            jobs.append(BackgroundJob(
                name=f"retire:{fmt.label}", stream=stream,
                kind="retire", tasks=tuple(tasks),
            ))
    return jobs


def erosion_jobs(
    store: SegmentStore,
    stream: str,
    deleted_fraction: Mapping[Tuple[int, StorageFormat], float],
    now_seconds: float,
    lifespan_days: int,
    segment_seconds: float = SEGMENT_SECONDS,
) -> List["BackgroundJob"]:  # noqa: F821
    """Erosion deletes as one background job, mirroring the foreground path.

    Selects exactly the victims :func:`~repro.storage.lifespan.apply_erosion_step`
    would delete (same format/age iteration order, same erosion-rank rule,
    footage past the lifespan dropped entirely) and wraps each in a delete
    task whose ``on_done`` performs the store delete — so aging can run
    concurrently with queries instead of stopping the world.
    """
    from repro.query.scheduler import BackgroundJob, ResourceTask

    tracker = AgeTracker(now_seconds, segment_seconds)
    tasks: List[ResourceTask] = []
    for fmt in store.formats(stream):
        by_age = tracker.ages(store.indices(stream, fmt))
        for age, indices in by_age.items():
            if age > lifespan_days:
                fraction = 1.0
            else:
                fraction = deleted_fraction.get((age, fmt), 0.0)
            if fraction <= 0.0:
                continue
            for i in indices:
                if erosion_rank(i) < fraction:
                    shard = store.shard_of(stream, fmt, i)
                    disk = _shard_disk(store, shard)
                    tasks.append(ResourceTask(
                        kind="delete", resource="disk", units=1,
                        duration=disk.request_overhead,
                        category="disk", operator="erode", shard=shard,
                        on_done=(lambda s=stream, f=fmt, idx=i:
                                 store.delete(s, f, idx)),
                    ))
    if not tasks:
        return []
    return [BackgroundJob(name=f"erode:{stream}", stream=stream,
                          kind="erode", tasks=tuple(tasks))]


def rebalance_jobs(store: SegmentStore) -> List["BackgroundJob"]:  # noqa: F821
    """Shard migrations as background jobs (the online ``rebalance()``).

    Plans the same greedy move list the foreground
    :meth:`SegmentStore.rebalance` applies, but pays each move's source
    read and destination write on the executor's shard channel pools; the
    write's ``on_done`` commits the placement via
    :meth:`SegmentStore.commit_move` (bookkeeping only, no double charge).
    One job per stream keeps a stream's moves serial while streams migrate
    concurrently.
    """
    from repro.query.scheduler import BackgroundJob, ResourceTask

    if store.array is None or store.array.n_shards <= 1:
        return []
    array = store.array
    by_stream: Dict[str, List[ResourceTask]] = {}
    for (stream, fmt_text, index), src, dst in plan_rebalance(
        array.assignments(), array.n_shards
    ):
        # Same-package reach into the store's key/meta helpers: moves are
        # keyed by escaped format text, which has no public meta lookup.
        nbytes = store._read_meta(
            store._key_text(stream, fmt_text, index)
        )["size_bytes"]
        src_disk, dst_disk = array.shard(src), array.shard(dst)
        tasks = by_stream.setdefault(stream, [])
        tasks.append(ResourceTask(
            kind="read", resource="disk", units=1,
            duration=nbytes / src_disk.read_bandwidth
            + src_disk.request_overhead,
            category="disk", operator="migrate", shard=src,
        ))
        tasks.append(ResourceTask(
            kind="write", resource="disk", units=1,
            duration=nbytes / dst_disk.write_bandwidth
            + dst_disk.request_overhead,
            category="disk", operator="migrate", shard=dst,
            on_done=(lambda s=stream, f=fmt_text, i=index, d=dst:
                     store.commit_move(s, f, i, d)),
        ))
    return [
        BackgroundJob(name=f"migrate:{stream}", stream=stream,
                      kind="migrate", tasks=tuple(tasks))
        for stream, tasks in by_stream.items()
    ]


@dataclass
class EvolutionReport:
    """Outcome of one ``VStore.evolve_online`` round."""

    replan: ReplanResult
    epoch: int
    #: Every outcome of the shared run, in admission order (foreground
    #: queries and background jobs; tell them apart by ``session.klass``).
    outcomes: List
    stats: object  # ExecutorStats of the shared run
    reencoded_segments: int
    retired_segments: int

    @property
    def foreground(self) -> List:
        return [o for o in self.outcomes if o.session.klass == 0]

    @property
    def jobs(self) -> List:
        return [o for o in self.outcomes if o.session.klass != 0]
