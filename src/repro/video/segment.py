"""Video segments: the unit of storage, retrieval, and erosion.

The paper splits footage into 8-second segments, stores each segment of each
storage format as one value in the key-value backend, and retrieves or
deletes segments independently (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.units import SEGMENT_SECONDS


@dataclass(frozen=True)
class Segment:
    """One 8-second slice of a stream, identified by its index."""

    stream: str
    index: int
    seconds: float = SEGMENT_SECONDS

    @property
    def t0(self) -> float:
        """Start time of the segment within the stream, in seconds."""
        return self.index * self.seconds

    @property
    def t1(self) -> float:
        """End time (exclusive) of the segment."""
        return self.t0 + self.seconds

    @property
    def key(self) -> str:
        """Stable key for this segment (format-agnostic part)."""
        return f"{self.stream}/{self.index:012d}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key


def segment_index_for(t: float, seconds: float = SEGMENT_SECONDS) -> int:
    """Index of the segment containing stream time ``t``."""
    return int(t // seconds)


def segments_for_range(
    stream: str, t0: float, t1: float, seconds: float = SEGMENT_SECONDS
) -> List[Segment]:
    """All segments overlapping the half-open range [t0, t1)."""
    if t1 <= t0:
        return []
    first = segment_index_for(t0, seconds)
    last = segment_index_for(max(t0, t1 - 1e-9), seconds)
    return [Segment(stream, i, seconds) for i in range(first, last + 1)]


def iter_segments(stream: str, seconds: float = SEGMENT_SECONDS) -> Iterator[Segment]:
    """Endless iterator over a stream's segments, from index 0."""
    i = 0
    while True:
        yield Segment(stream, i, seconds)
        i += 1
