"""Byte-budgeted caches and eviction policies; the decoded-frame tier.

The retrieval cache keeps *decoded frames* in simulated RAM: a segment that
was already streamed off disk (raw formats) or decoded (encoded formats)
for one consumer can be handed to the next consumer of the same
(stream, segment, storage format, consumer fidelity) at memory speed,
skipping the :class:`~repro.storage.disk.DiskModel` read and the decode
charge entirely.

Capacity is a byte budget; when an insert does not fit, the configured
:class:`EvictionPolicy` picks victims among the *unpinned* entries.  An
entry is pinned while single-flight followers — concurrent queries that
deduplicated onto another query's in-flight retrieval — still have to be
served from it; pinned entries are never evicted (and never silently
dropped by an insert that cannot fit: such an insert is rejected instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import VStoreError

#: A cache key.  The first two elements are always ``(stream, index)`` so
#: invalidation by segment needs no reverse index.
CacheKey = Tuple


class CacheError(VStoreError):
    """A cache was configured or used inconsistently."""


@dataclass
class CacheEntry:
    """One resident entry of a byte-budgeted cache."""

    key: CacheKey
    nbytes: float  # RAM the entry occupies
    saved_seconds: float  # simulated seconds one hit avoids (disk + decode)
    last_seq: int  # recency: access sequence number of the last touch
    hits: int = 0
    pins: int = 0  # single-flight waiters that must still be served

    @property
    def pinned(self) -> bool:
        return self.pins > 0


class EvictionPolicy:
    """Orders unpinned entries for eviction (smallest key evicted first)."""

    name = "policy"

    def victim_key(self, entry: CacheEntry) -> Tuple:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used entry first."""

    name = "lru"

    def victim_key(self, entry: CacheEntry) -> Tuple:
        return (entry.last_seq,)


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used entry first (recency breaks ties)."""

    name = "lfu"

    def victim_key(self, entry: CacheEntry) -> Tuple:
        return (entry.hits, entry.last_seq)


class CostAwarePolicy(EvictionPolicy):
    """Evict the entry with the least retrieval benefit per byte first.

    Benefit weighs the bytes a hit keeps off the disk/decoder against the
    decode+disk seconds it avoids: an entry's score is its per-hit seconds
    saved, scaled by how often it actually hit, per byte of RAM it holds.
    Recency breaks ties so the policy degrades to LRU on uniform costs.
    """

    name = "cost"

    def victim_key(self, entry: CacheEntry) -> Tuple:
        density = entry.saved_seconds * (1 + entry.hits) / max(entry.nbytes, 1.0)
        return (density, entry.last_seq)


#: Policy registry used by :func:`policy_named` and the CLI.
POLICIES: Dict[str, Callable[[], EvictionPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    LFUPolicy.name: LFUPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
}


def policy_named(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise CacheError(
            f"unknown eviction policy {name!r}; pick one of {sorted(POLICIES)}"
        ) from None


class ByteBudgetCache:
    """A capacity-bounded cache of byte-sized entries with pluggable eviction.

    Occupancy never exceeds ``capacity_bytes``: an insert evicts unpinned
    entries in policy order until the new entry fits, and is *rejected*
    (returns ``False``) when even evicting every unpinned entry would not
    make room.  All counters needed for the operator-facing cache report
    are maintained here.
    """

    def __init__(self, capacity_bytes: float, policy: EvictionPolicy):
        if capacity_bytes < 0:
            raise CacheError(f"negative cache capacity: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self._entries: Dict[CacheKey, CacheEntry] = {}
        self._seq = 0
        self.occupancy_bytes = 0.0
        # counters
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.invalidations = 0
        self.bytes_saved = 0.0  # bytes hits kept off the disk/decoder
        self.seconds_saved = 0.0  # simulated seconds hits avoided

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def entries(self) -> List[CacheEntry]:
        return list(self._entries.values())

    def peek(self, key: CacheKey) -> Optional[CacheEntry]:
        """Look an entry up without touching recency or counters."""
        return self._entries.get(key)

    # -- access ------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """Look ``key`` up, recording a hit (and its savings) or a miss."""
        self._seq += 1
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        entry.hits += 1
        entry.last_seq = self._seq
        self.hits += 1
        self.bytes_saved += entry.nbytes
        self.seconds_saved += entry.saved_seconds
        return entry

    def record_hit(self, key: CacheKey, nbytes: float,
                   saved_seconds: float) -> None:
        """Count a hit served in simulated time (touching the entry).

        The read path decides hits at plan time but *serves* them later,
        when the corresponding task completes on the simulated clock —
        that is when the counters move.  The entry may legitimately have
        been evicted or invalidated in between, so the savings are taken
        from the access record rather than the entry.
        """
        self._seq += 1
        self.hits += 1
        self.bytes_saved += nbytes
        self.seconds_saved += saved_seconds
        entry = self._entries.get(key)
        if entry is not None:
            entry.hits += 1
            entry.last_seq = self._seq
            entry.saved_seconds = saved_seconds

    def put(self, key: CacheKey, nbytes: float, saved_seconds: float,
            pins: int = 0) -> bool:
        """Insert (or refresh) an entry; returns whether it is resident."""
        if nbytes < 0:
            raise CacheError(f"negative entry size: {nbytes}")
        self._seq += 1
        existing = self._entries.get(key)
        if existing is not None:
            existing.saved_seconds = saved_seconds
            existing.last_seq = self._seq
            existing.pins += pins
            return True
        if not self._make_room(nbytes):
            self.rejections += 1
            return False
        self._entries[key] = CacheEntry(
            key=key, nbytes=nbytes, saved_seconds=saved_seconds,
            last_seq=self._seq, pins=pins,
        )
        self.occupancy_bytes += nbytes
        self.insertions += 1
        return True

    def _make_room(self, nbytes: float) -> bool:
        if nbytes > self.capacity_bytes:
            return False
        if self.occupancy_bytes + nbytes <= self.capacity_bytes:
            return True
        unpinned = [e for e in self._entries.values() if not e.pinned]
        evictable = sum(e.nbytes for e in unpinned)
        if self.occupancy_bytes - evictable + nbytes > self.capacity_bytes:
            # Even evicting every unpinned entry would not make room:
            # reject without destroying the cache's useful contents.
            return False
        for victim in sorted(unpinned, key=self.policy.victim_key):
            self._drop(victim.key)
            self.evictions += 1
            if self.occupancy_bytes + nbytes <= self.capacity_bytes:
                return True
        return True  # pragma: no cover - loop always reaches capacity

    def _drop(self, key: CacheKey) -> None:
        entry = self._entries.pop(key)
        self.occupancy_bytes -= entry.nbytes

    # -- pinning (single-flight) -------------------------------------------

    def pin(self, key: CacheKey) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.pins += 1

    def unpin(self, key: CacheKey) -> None:
        entry = self._entries.get(key)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1

    # -- invalidation ------------------------------------------------------

    def invalidate(self, stream: str, index: Optional[int] = None) -> int:
        """Drop every entry of a segment (or a whole stream); returns count.

        Invalidation overrides pinning: a re-ingested or eroded segment's
        frames are stale for everyone, single-flight waiters included (the
        waiter still completes — it simply stops counting as served from
        this entry).
        """
        doomed = [
            key for key in self._entries
            if key[0] == stream and (index is None or key[1] == index)
        ]
        for key in doomed:
            self._drop(key)
        self.invalidations += len(doomed)
        return len(doomed)


class DecodedFrameCache(ByteBudgetCache):
    """The RAM tier holding decoded frames, keyed per consumer view.

    Key: ``(stream, segment index, storage-format label, consumer-fidelity
    label)`` — the same stored segment decoded for a sparser consumer is a
    different (smaller) entry, exactly as a real frame cache would hold the
    frames it actually materialized.
    """

    @staticmethod
    def key(stream: str, index: int, fmt_label: str,
            consumer_label: str) -> CacheKey:
        return (stream, index, fmt_label, consumer_label)
