"""Storage-format coalescing (Section 4.3): R1-R4, heuristic vs baselines."""

import pytest

from repro.core.coalesce import (
    Demand,
    SFPlan,
    StorageFormatPlanner,
    cheapest_adequate_coding,
    coding_is_adequate,
    _set_partitions,
)
from repro.core.consumption import ConsumptionPlanner
from repro.errors import BudgetError
from repro.ingest.budget import IngestBudget, cores_required
from repro.operators.library import Consumer, default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.retrieval.speed import retrieval_speed
from repro.video.coding import RAW
from repro.video.fidelity import Fidelity, knobwise_max


@pytest.fixture(scope="module")
def decisions(library):
    """Query B's 12 consumers, as in the paper's Section 6.4 experiment."""
    planner = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    return planner.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in (0.95, 0.9, 0.8, 0.7)]
    )


@pytest.fixture()
def planner():
    return StorageFormatPlanner(CodingProfiler(activity=0.6))


def _fid(label):
    return Fidelity.parse(label)


class TestCodingSelection:
    def test_no_demands_picks_cheapest_storage(self, planner):
        coding = cheapest_adequate_coding(planner.profiler, _fid(
            "best-720p-1-100%"), [])
        # Slowest preset, largest GOP: the storage-optimal option.
        assert coding.label == "250-slowest"

    def test_fast_demand_forces_raw(self, planner):
        demand = Demand(Consumer("Diff", 0.8), _fid("best-200p-1/30-100%"),
                        30000.0)
        coding = cheapest_adequate_coding(
            planner.profiler, _fid("best-200p-1-100%"), [demand]
        )
        assert coding == RAW

    def test_moderate_demand_picks_encoded(self, planner):
        demand = Demand(Consumer("NN", 0.9), _fid("good-540p-1/6-100%"), 20.0)
        coding = cheapest_adequate_coding(
            planner.profiler, _fid("good-540p-1/6-100%"), [demand]
        )
        assert not coding.raw
        fmt = SFPlan(_fid("good-540p-1/6-100%"), coding).fmt
        assert coding_is_adequate(planner.profiler, fmt, [demand])


class TestInitialFormats:
    def test_one_sf_per_unique_cf_plus_golden(self, planner, decisions):
        formats = planner.initial_formats(decisions)
        unique = {d.fidelity for d in decisions}
        assert len(formats) == len(unique) + 1
        assert sum(sf.golden for sf in formats) == 1

    def test_golden_is_knobwise_max(self, planner, decisions):
        formats = planner.initial_formats(decisions)
        golden = next(sf for sf in formats if sf.golden)
        assert golden.fidelity == knobwise_max([d.fidelity for d in decisions])

    def test_empty_decisions_rejected(self, planner):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            planner.initial_formats([])


class TestHeuristicCoalesce:
    def test_requirements_r1_r2(self, planner, decisions):
        """R1: every SF's fidelity covers its CFs.  R2: retrieval speed
        covers every consumer that any dedicated format could satisfy."""
        plan = planner.heuristic_coalesce(decisions)
        for sf in plan.formats:
            for demand in sf.demands:
                assert sf.fidelity.richer_equal(demand.cf_fidelity)  # R1
                speed = retrieval_speed(sf.fmt, demand.cf_fidelity.sampling)
                own = SFPlan(
                    demand.cf_fidelity,
                    cheapest_adequate_coding(planner.profiler,
                                             demand.cf_fidelity, [demand]),
                )
                own_speed = retrieval_speed(own.fmt,
                                            demand.cf_fidelity.sampling)
                if own_speed >= demand.required_speed:
                    assert speed >= demand.required_speed * (1 - 1e-9)  # R2

    def test_consolidates_formats_r3(self, planner, decisions):
        """R3: far fewer SFs than unique CFs."""
        plan = planner.heuristic_coalesce(decisions)
        unique = len({d.fidelity for d in decisions})
        assert len(plan.formats) < unique
        assert plan.rounds > 0

    def test_every_consumer_subscribed(self, planner, decisions):
        plan = planner.heuristic_coalesce(decisions)
        for d in decisions:
            sf = plan.subscription(d.consumer)
            assert sf in plan.formats

    def test_golden_survives(self, planner, decisions):
        plan = planner.heuristic_coalesce(decisions)
        assert plan.golden.golden

    def test_free_phase_never_increases_storage(self, planner, decisions):
        """Without a budget, coalescing must not cost storage (the paper's
        end-to-end setting: ingest savings at no storage increase)."""
        initial = planner.initial_formats(decisions)
        plan = planner.heuristic_coalesce(decisions)
        assert (plan.storage_bytes_per_second
                <= planner.storage_cost(initial) + 1e-6)

    def test_coalescing_reduces_ingest(self, planner, decisions):
        initial = planner.initial_formats(decisions)
        plan = planner.heuristic_coalesce(decisions)
        assert plan.ingest_cores < planner.ingest_cost(initial)


class TestExhaustiveValidation:
    def test_heuristic_matches_exhaustive(self, library):
        """Section 6.4: heuristic selection produces the same storage
        formats as exhaustive enumeration."""
        planner_cf = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
        small = planner_cf.derive_all(
            [Consumer(op, acc)
             for op in ("Motion", "License", "OCR")
             for acc in (0.95, 0.8)]
        )
        sfp = StorageFormatPlanner(CodingProfiler(activity=0.6))
        heuristic = sfp.heuristic_coalesce(small)
        exhaustive = sfp.exhaustive(small)
        assert (sorted(sf.label for sf in heuristic.formats)
                == sorted(sf.label for sf in exhaustive.formats))
        assert heuristic.storage_bytes_per_second == pytest.approx(
            exhaustive.storage_bytes_per_second
        )

    def test_exhaustive_guards_cf_count(self, planner, decisions):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            planner.exhaustive(decisions, max_cfs=2)

    def test_set_partitions_bell_numbers(self):
        # Bell numbers: 1, 1, 2, 5, 15, 52.
        for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert len(list(_set_partitions(list(range(n))))) == bell


class TestDistanceBased:
    def test_distance_reaches_target_count(self, planner, decisions):
        plan = planner.distance_coalesce(decisions, target_count=4)
        assert len(plan.formats) <= 4

    def test_distance_never_beats_heuristic_storage(self, decisions):
        """Section 6.4: distance-based selection costs extra storage (it is
        blind to resource impacts)."""
        heuristic = StorageFormatPlanner(
            CodingProfiler(activity=0.6)).heuristic_coalesce(decisions)
        distance = StorageFormatPlanner(
            CodingProfiler(activity=0.6)).distance_coalesce(
                decisions, target_count=len(heuristic.formats))
        assert (distance.storage_bytes_per_second
                >= heuristic.storage_bytes_per_second * (1 - 1e-9))

    def test_distance_profiles_less(self, decisions):
        """Distance-based selection is cheaper to run: it profiles only
        merged outcomes, not every candidate pair."""
        prof_h = CodingProfiler(activity=0.6)
        StorageFormatPlanner(prof_h).heuristic_coalesce(decisions)
        prof_d = CodingProfiler(activity=0.6)
        StorageFormatPlanner(prof_d).distance_coalesce(decisions,
                                                       target_count=4)
        assert prof_d.stats.runs < prof_h.stats.runs


class TestIngestBudget:
    def test_budget_adaptation_cheapens_coding(self, decisions):
        """Table 4: lowering the ingest budget steps coding toward faster
        presets and trades a bounded storage increase."""
        def plan_for(cores):
            sfp = StorageFormatPlanner(CodingProfiler(activity=0.6),
                                       IngestBudget(cores))
            return sfp.heuristic_coalesce(decisions)

        unlimited = plan_for(None)
        tight = plan_for(max(0.4, unlimited.ingest_cores * 0.5))
        assert tight.ingest_cores <= unlimited.ingest_cores
        assert (tight.storage_bytes_per_second
                >= unlimited.storage_bytes_per_second * (1 - 1e-9))
        assert cores_required([sf.fmt for sf in tight.formats]) <= max(
            0.4, unlimited.ingest_cores * 0.5) + 1e-9

    def test_infeasible_budget_raises(self, decisions):
        sfp = StorageFormatPlanner(CodingProfiler(activity=0.6),
                                   IngestBudget(1e-9))
        with pytest.raises(BudgetError):
            sfp.heuristic_coalesce(decisions)
