"""Programmatic figure-data series."""

import pytest

from repro.analysis.sweeps import (
    erosion_series,
    keyframe_series,
    query_speed_series,
    speed_step_series,
)
from repro.query.cascade import QUERY_A


def test_speed_step_series_shape():
    data = speed_step_series()
    assert data["step"] == ["slowest", "slow", "med", "fast", "fastest"]
    assert len(data["encode_speed"]) == 5
    assert data["encode_speed"] == sorted(data["encode_speed"])
    assert data["bytes_per_second"] == sorted(data["bytes_per_second"])


def test_keyframe_series_shape():
    data = keyframe_series()
    assert data["keyframe_interval"] == [5, 10, 50, 100, 250]
    # Sparse decode falls with growing GOP; size falls too.
    assert data["decode_sparse"] == sorted(data["decode_sparse"],
                                           reverse=True)
    assert data["bytes_per_second"] == sorted(data["bytes_per_second"],
                                              reverse=True)


def test_query_speed_series(configuration, query_library):
    data = query_speed_series(configuration, query_library, QUERY_A,
                              "jackson")
    assert data["accuracy"] == [0.95, 0.9, 0.8, 0.7]
    assert len(data["VStore"]) == 4
    assert all(v > 0 for v in data["VStore"])
    # 1->1 is a fixed operating point: one speed at every accuracy.
    assert max(data["1->1"]) == pytest.approx(min(data["1->1"]))


def test_erosion_series(configuration):
    plan = configuration.erosion
    data = erosion_series(plan)
    assert data["age"] == list(range(1, plan.lifespan_days + 1))
    assert len(data["overall_speed"]) == plan.lifespan_days
    per_format_keys = [k for k in data if k.startswith("residual:")]
    assert len(per_format_keys) == len(plan.labels)
    totals = data["total_residual_bytes"]
    summed = [
        sum(data[k][i] for k in per_format_keys)
        for i in range(plan.lifespan_days)
    ]
    assert totals == pytest.approx(summed)
