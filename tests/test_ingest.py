"""Ingestion: budgets, transcoder fan-out, pipeline accounting."""

import pytest

from repro.clock import SimClock
from repro.errors import BudgetError
from repro.ingest.budget import IngestBudget, cores_required
from repro.ingest.pipeline import IngestionPipeline
from repro.ingest.transcoder import Transcoder
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.segment_store import SegmentStore
from repro.units import DAY, GB
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

FORMATS = [
    StorageFormat(Fidelity.parse("best-720p-1-100%"), Coding("slowest", 250)),
    StorageFormat(Fidelity.parse("good-540p-1/6-100%"), Coding("slow", 250)),
    StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW),
]


class TestBudget:
    def test_cores_required_sums_encode_costs(self):
        total = cores_required(FORMATS)
        parts = [cores_required([f]) for f in FORMATS]
        assert total == pytest.approx(sum(parts))
        assert total > 1.0  # the golden slowest format alone needs cores

    def test_unlimited_budget_allows_anything(self):
        assert IngestBudget().allows(FORMATS)
        assert IngestBudget().headroom(FORMATS) == float("inf")

    def test_tight_budget_rejects(self):
        assert not IngestBudget(0.1).allows(FORMATS)
        assert IngestBudget(0.1).headroom(FORMATS) < 0

    def test_allows_and_headroom_agree_at_the_boundary(self):
        """Regression: ``allows`` used a 1e-9 tolerance that ``headroom``
        lacked, so a set could be allowed yet report negative headroom."""
        required = cores_required(FORMATS)
        # exactly on budget
        exact = IngestBudget(required)
        assert exact.allows(FORMATS)
        assert exact.headroom(FORMATS) >= 0.0
        # over budget by less than the tolerance: allowed, zero headroom
        within = IngestBudget(required - 5e-10)
        assert within.allows(FORMATS)
        assert within.headroom(FORMATS) == 0.0
        # over budget beyond the tolerance: rejected, negative headroom
        beyond = IngestBudget(required - 1e-6)
        assert not beyond.allows(FORMATS)
        assert beyond.headroom(FORMATS) < 0.0

    @pytest.mark.parametrize("cores", [0.1, 1.0, 2.5, 100.0, None])
    def test_allows_iff_headroom_nonnegative(self, cores):
        budget = IngestBudget(cores)
        assert budget.allows(FORMATS) == (budget.headroom(FORMATS) >= 0.0)


class TestTranscoder:
    def test_fan_out_one_segment_per_format(self):
        t = Transcoder(FORMATS, clock=SimClock())
        outs = t.transcode(Segment("cam", 0), activity=0.4)
        assert [o.fmt for o in outs] == FORMATS

    def test_cpu_utilization_metric(self):
        t = Transcoder(FORMATS, clock=SimClock())
        assert t.cpu_utilization_percent == pytest.approx(
            t.cores_required * 100.0
        )

    def test_budget_enforced_at_construction(self):
        with pytest.raises(BudgetError):
            Transcoder(FORMATS, budget=IngestBudget(0.01))


class TestPipeline:
    @pytest.fixture()
    def store(self, tmp_path):
        kv = KVStore(str(tmp_path / "seg.log"))
        yield SegmentStore(kv, DiskModel(clock=SimClock()))
        kv.close()

    def test_ingest_segments_stores_everything(self, store):
        pipe = IngestionPipeline("tucson", FORMATS, store=store,
                                 clock=SimClock())
        pipe.ingest_segments(4)
        for fmt in FORMATS:
            assert store.indices("tucson", fmt) == [0, 1, 2, 3]

    def test_ingest_requires_store(self):
        pipe = IngestionPipeline("tucson", FORMATS, clock=SimClock())
        with pytest.raises(ValueError):
            pipe.ingest_segments(1)

    def test_ingest_charges_clock(self, store):
        clock = SimClock()
        pipe = IngestionPipeline("tucson", FORMATS, store=store, clock=clock)
        pipe.ingest_segments(2)
        assert clock.spent("ingest") > 0

    def test_report_extrapolates_day(self):
        pipe = IngestionPipeline("jackson", FORMATS, clock=SimClock())
        report = pipe.report()
        assert report.bytes_per_day == pytest.approx(
            report.bytes_per_second * DAY
        )
        assert set(report.per_format_bytes_per_second) == {
            f.label for f in FORMATS
        }
        assert report.bytes_per_second == pytest.approx(
            sum(report.per_format_bytes_per_second.values())
        )
        # A handful of formats lands in the tens-to-hundreds of GB/day.
        assert 10 * GB < report.bytes_per_day < 3000 * GB

    def test_dashcam_costs_more_than_park(self):
        """Figure 11b: intense motion makes dashcam the most expensive
        stream to store by a wide margin (for encoded formats; raw frames
        do not care about motion)."""
        encoded = FORMATS[:2]
        dash = IngestionPipeline("dashcam", encoded, clock=SimClock()).report()
        park = IngestionPipeline("park", encoded, clock=SimClock()).report()
        assert dash.bytes_per_day > 1.8 * park.bytes_per_day

    def test_activity_cached(self):
        pipe = IngestionPipeline("jackson", FORMATS, clock=SimClock())
        a = pipe.mean_activity()
        assert pipe.mean_activity() == a
