"""The cache plane: configuration, facade, and the stats snapshot.

One :class:`CachePlane` instance spans a whole store.  It bundles the
three cooperating pieces of the tiered retrieval cache —

* the decoded-frame RAM tier (:class:`~repro.cache.frames.DecodedFrameCache`),
* the operator-result memo (:class:`~repro.cache.results.ResultCache`),
* the hot-segment promotion loop (:class:`~repro.cache.tiers.TierManager`) —

behind the handful of operations the read path needs: key construction,
hit-cost modeling (a hit is served at RAM bandwidth), commit/pin hooks for
the executor's single-flight dedup, segment invalidation (wired into the
segment store's write/delete path, so erosion and re-ingest can never leave
stale entries), and a frozen :class:`CacheStats` snapshot for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.frames import (
    CacheKey,
    DecodedFrameCache,
    policy_named,
)
from repro.cache.results import ResultCache
from repro.cache.tiers import TierConfig, TierManager
from repro.clock import SimClock
from repro.storage.disk import DiskModel
from repro.units import GB, MB


@dataclass(frozen=True)
class CacheConfig:
    """Knobs of the tiered retrieval cache.

    ``policy`` names the eviction policy shared by both byte-budgeted
    tiers: ``"lru"``, ``"lfu"`` or ``"cost"`` (benefit-per-byte aware).
    ``tiering=None`` disables hot-segment promotion; caching itself is
    enabled by constructing a store with any :class:`CacheConfig` at all.
    """

    frame_capacity_bytes: float = 256.0 * MB
    result_capacity_bytes: float = 64.0 * MB
    #: Real-RAM budget of the operator-output memo (None = 4x the
    #: result capacity) — bounds actual process memory, not simulated RAM.
    memo_capacity_bytes: Optional[float] = None
    policy: str = "lru"
    ram_bandwidth: float = 20.0 * GB  # bytes/second a cache hit streams at
    single_flight: bool = True
    tiering: Optional[TierConfig] = None


@dataclass(frozen=True)
class RetrievalAccess:
    """What the cache had to say about one planned segment retrieval."""

    key: CacheKey
    hit: bool
    full_seconds: float  # the miss cost (disk/decode) of this retrieval
    hit_seconds: float  # the RAM cost a hit pays instead
    nbytes: float  # decoded bytes the entry holds
    stored_bytes: float = 0.0  # on-disk size of the stored segment
    raw: bool = False  # raw storage format (disk-bound retrieval)

    @property
    def saved_seconds(self) -> float:
        return max(0.0, self.full_seconds - self.hit_seconds)


@dataclass(frozen=True)
class TierCounters:
    """Counters of one byte-budgeted cache tier."""

    hits: int
    misses: int
    insertions: int
    evictions: int
    rejections: int
    invalidations: int
    entries: int
    occupancy_bytes: float
    capacity_bytes: float
    bytes_saved: float
    seconds_saved: float

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0


@dataclass(frozen=True)
class TieringStats:
    """Counters of the hot-segment promotion loop."""

    promotions: int
    demotions: int
    invalidations: int
    promoted_segments: int
    fast_occupancy_bytes: float
    fast_capacity_bytes: float
    migrated_bytes: float
    migration_seconds: float


@dataclass(frozen=True)
class CacheStats:
    """Frozen snapshot of the whole cache plane, for reports."""

    policy: str
    frames: TierCounters
    results: TierCounters
    memo_hits: int  # real-compute memo hits (planning convenience)
    memo_misses: int
    single_flight_hits: int  # retrievals deduplicated onto an in-flight one
    single_flight_seconds_saved: float
    tiering: Optional[TieringStats]
    #: Dependency-blocked tasks released through the executor's event
    #: queue (0 under the reference rescan core).
    single_flight_wakeups: int = 0

    @property
    def seconds_saved(self) -> float:
        """Simulated *resource work* seconds the plane avoided charging.

        Summed per pool unit (a consume deduplicated across 4 contexts
        counts its full per-segment costs), so this measures contention
        removed, and can legitimately exceed the wall-clock makespan
        reduction.
        """
        return (self.frames.seconds_saved + self.results.seconds_saved
                + self.single_flight_seconds_saved)

    @property
    def bytes_saved(self) -> float:
        return self.frames.bytes_saved + self.results.bytes_saved


class CachePlane:
    """The store-wide cache: frame tier + result memo + tier manager."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        policy = policy_named(self.config.policy)
        self.frames = DecodedFrameCache(self.config.frame_capacity_bytes,
                                        policy)
        self.results = ResultCache(
            self.config.result_capacity_bytes,
            policy_named(self.config.policy),
            memo_capacity_bytes=self.config.memo_capacity_bytes,
        )
        self.tiers: Optional[TierManager] = (
            TierManager(self.config.tiering)
            if self.config.tiering is not None else None
        )
        self.single_flight_hits = 0
        self.single_flight_seconds_saved = 0.0
        self.single_flight_wakeups = 0

    # -- cost model --------------------------------------------------------

    def hit_seconds(self, nbytes: float) -> float:
        """Simulated seconds to serve ``nbytes`` from the RAM tier."""
        if self.config.ram_bandwidth <= 0:
            return 0.0
        return nbytes / self.config.ram_bandwidth

    # -- keys --------------------------------------------------------------

    @staticmethod
    def frame_key(stream: str, index: int, fmt_label: str,
                  consumer_label: str) -> CacheKey:
        return DecodedFrameCache.key(stream, index, fmt_label, consumer_label)

    @staticmethod
    def result_key(stream: str, index: int, dataset: str, operator: str,
                   fidelity_label: str, sampling: str) -> CacheKey:
        return ResultCache.key(stream, index, dataset, operator,
                               fidelity_label, sampling)

    # -- executor hooks ----------------------------------------------------
    #
    # Plan-time cache consultation is side-effect-free (peeks only); all
    # counters move through these hooks when the corresponding task
    # actually runs on the simulated clock — so a plan that is never
    # executed leaves no trace, and single-flight followers are counted
    # as dedups rather than as extra misses.

    def note_access(self, access: RetrievalAccess) -> None:
        """Record a served retrieval with the tier manager (hot tracking).

        Only raw-format retrievals build tier heat: they are the
        disk-bound ones a fast tier can speed up, and migration moves
        (and budgets) the segment's *stored* bytes, not the decoded RAM
        footprint.
        """
        if self.tiers is not None and access.raw:
            self.tiers.record_access(access.key[0], access.key[1],
                                     access.stored_bytes)

    def serve_retrieval(self, clock: SimClock,
                        access: RetrievalAccess) -> bool:
        """Immediate-execution read path: serve one decoded-frame access.

        A hit charges the RAM cost to ``"cache"`` and is recorded; a miss
        commits the decoded frames and returns ``False`` — the caller
        charges its own full retrieval cost.  Shared by
        :meth:`SegmentReader.read <repro.retrieval.reader.SegmentReader.read>`
        and :meth:`Decoder.decode <repro.codec.decoder.Decoder.decode>` so
        the two paths can never drift.
        """
        self.note_access(access)
        if access.hit:
            clock.charge(access.hit_seconds, "cache")
            self.record_frame_hit(access)
            return True
        self.commit_frames(access)
        return False

    def record_frame_hit(self, access: RetrievalAccess) -> None:
        """A committed decoded-frame hit was served in simulated time."""
        self.frames.record_hit(access.key, access.nbytes,
                               access.saved_seconds)

    def record_result_hit(self, key: CacheKey, saved_seconds: float) -> None:
        """A committed operator result zeroed a consume in simulated time."""
        self.results.record_charged_hit(key, saved_seconds)

    def commit_frames(self, access: RetrievalAccess, pins: int = 0) -> bool:
        """A miss completed: count it and make its frames resident."""
        self.frames.misses += 1
        return self.frames.put(access.key, access.nbytes,
                               access.saved_seconds, pins=pins)

    def serve_follower(self, access: RetrievalAccess) -> None:
        """A single-flight follower was served off the leader's entry."""
        self.frames.unpin(access.key)
        self.single_flight_hits += 1
        self.single_flight_seconds_saved += access.saved_seconds

    def note_wakeups(self, count: int) -> None:
        """Dependency-blocked tasks were woken through the event queue.

        The heap executor core wakes single-flight followers (and
        deduplicated consumes) by decrementing dependency counters when
        their leader completes — no rescan ever rediscovers them.  This
        counter makes that path observable: it tracks how many blocked
        tasks were released event-driven, which the reference (rescan)
        core leaves at zero.
        """
        self.single_flight_wakeups += count

    def dedup_consume(self, saved_seconds: float, count: int = 1) -> None:
        """Stage segment consumes deduplicated onto in-flight producers."""
        self.single_flight_hits += count
        self.single_flight_seconds_saved += saved_seconds

    def sweep_tiers(self, clock: SimClock, slow: DiskModel) -> Tuple[int, int]:
        """Run one promotion/demotion round (no-op without tiering)."""
        if self.tiers is None:
            return (0, 0)
        return self.tiers.sweep(clock, slow)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, stream: str, index: Optional[int] = None) -> int:
        """Drop every cached artifact of a segment (or stream)."""
        dropped = self.frames.invalidate(stream, index)
        dropped += self.results.invalidate(stream, index)
        if self.tiers is not None:
            self.tiers.invalidate(stream, index)
        return dropped

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _counters(cache) -> TierCounters:
        return TierCounters(
            hits=cache.hits,
            misses=cache.misses,
            insertions=cache.insertions,
            evictions=cache.evictions,
            rejections=cache.rejections,
            invalidations=cache.invalidations,
            entries=len(cache),
            occupancy_bytes=cache.occupancy_bytes,
            capacity_bytes=cache.capacity_bytes,
            bytes_saved=cache.bytes_saved,
            seconds_saved=cache.seconds_saved,
        )

    def stats(self) -> CacheStats:
        tiering = None
        if self.tiers is not None:
            tiering = TieringStats(
                promotions=self.tiers.promotions,
                demotions=self.tiers.demotions,
                invalidations=self.tiers.invalidations,
                promoted_segments=self.tiers.promoted_segments,
                fast_occupancy_bytes=self.tiers.fast_bytes,
                fast_capacity_bytes=self.tiers.config.capacity_bytes,
                migrated_bytes=self.tiers.migrated_bytes,
                migration_seconds=self.tiers.migration_seconds,
            )
        return CacheStats(
            policy=self.config.policy,
            frames=self._counters(self.frames),
            results=self._counters(self.results.committed),
            memo_hits=self.results.memo_hits,
            memo_misses=self.results.memo_misses,
            single_flight_hits=self.single_flight_hits,
            single_flight_seconds_saved=self.single_flight_seconds_saved,
            tiering=tiering,
            single_flight_wakeups=self.single_flight_wakeups,
        )
