#!/usr/bin/env python3
"""Rolling out new operators on a running store (Section 7).

Run:  python examples/operator_rollout.py

A store configured for license-plate analytics (Motion, License, OCR) later
gains tracking and contour queries (Opflow, Contour).  VStore profiles only
the newcomers: on footage already on disk the new consumers subscribe to
the cheapest existing storage format with satisfiable fidelity — meeting
their accuracy targets, possibly slower than optimal — while forthcoming
footage gets a re-derived storage-format set.
"""

from repro.core.config import derive_configuration
from repro.core.evolve import add_operators
from repro.operators.library import Consumer, default_library


def main() -> None:
    initial_library = default_library(names=("Motion", "License", "OCR"))
    config = derive_configuration(initial_library)
    print("Initial configuration:")
    for sf in config.plan.formats:
        tag = " (golden)" if sf.golden else ""
        print(f"  {sf.label}{tag}")
    print()

    grown_library = default_library(
        names=("Motion", "License", "OCR", "Opflow", "Contour")
    )
    new_consumers = [Consumer(op, acc)
                     for op in ("Opflow", "Contour")
                     for acc in (0.9, 0.8)]
    evolved = add_operators(config, grown_library, new_consumers)

    print("New consumers on EXISTING footage (cheapest satisfiable SF):")
    for sub in evolved.legacy:
        status = "optimal" if sub.optimal else "slower than optimal"
        print(f"  {sub.consumer.label:>16} -> {sub.storage.label:>40} "
              f"@ {sub.effective_speed:8.1f}x ({status})")
    print()

    print("Configuration for FORTHCOMING footage:")
    for sf in evolved.forthcoming.plan.formats:
        tag = " (golden)" if sf.golden else ""
        print(f"  {sf.label}{tag}")
    print()
    print(f"profiling spent on the rollout: "
          f"{evolved.forthcoming.stats.operator_runs} operator runs "
          f"(existing operators were not re-profiled from scratch)")


if __name__ == "__main__":
    main()
