"""Deriving storage formats by iterative coalescing (Section 4.3).

Starting from one storage format per unique consumption format, plus the
*golden* format (knob-wise maximum fidelity, cheapest-storage coding, the
ultimate erosion fallback), VStore coalesces pairs:

* the merged fidelity is the knob-wise maximum (satisfiable fidelity, R1);
* the merged coding is the cheapest-storage option whose retrieval speed
  still beats every downstream consumer (adequate retrieval, R2), falling
  back to raw frames when no encoded option keeps up;
* **heuristic selection** first harvests "free" merges (less ingest, no
  extra storage), then — only if the ingestion budget is exceeded — trades
  storage for ingest by merging further and by stepping individual formats
  to faster (cheaper to encode, bulkier) coding;
* **distance-based selection** (the evaluated alternative) merges the
  closest pair in normalized knob space without profiling pair outcomes;
* **exhaustive enumeration** (validation baseline) scores every set
  partition of the consumption formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.consumption import ConsumptionDecision
from repro.errors import BudgetError, ConfigurationError
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.video.coding import Coding, RAW, SPEED_STEPS, coding_space
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    SAMPLING_RATES,
    knobwise_max,
)
from repro.video.format import StorageFormat

_EPS = 1e-9


@dataclass(frozen=True)
class Demand:
    """One consumer's requirement on its storage format."""

    consumer: Consumer
    cf_fidelity: Fidelity
    required_speed: float  # the consumer's consumption speed (x realtime)


@dataclass
class SFPlan:
    """A storage format under construction, with its downstream demands."""

    fidelity: Fidelity
    coding: Coding
    demands: List[Demand] = field(default_factory=list)
    golden: bool = False

    @property
    def fmt(self) -> StorageFormat:
        return StorageFormat(self.fidelity, self.coding)

    @property
    def label(self) -> str:
        return self.fmt.label


@dataclass
class CoalescePlan:
    """The outcome of storage-format derivation."""

    formats: List[SFPlan]
    storage_bytes_per_second: float
    ingest_cores: float
    rounds: int = 0

    @property
    def golden(self) -> SFPlan:
        for sf in self.formats:
            if sf.golden:
                return sf
        raise ConfigurationError("plan lost its golden format")

    def subscription(self, consumer: Consumer) -> SFPlan:
        """The storage format a consumer's CF subscribes to."""
        for sf in self.formats:
            if any(d.consumer == consumer for d in sf.demands):
                return sf
        raise ConfigurationError(f"consumer {consumer} has no storage format")


def _storage_rank(profiler: CodingProfiler, fidelity: Fidelity) -> List[Coding]:
    """Encoded coding options ordered by on-disk size, cheapest first."""
    options = list(coding_space(include_raw=False))
    options.sort(
        key=lambda c: profiler.codec.encoded_bytes_per_second(
            fidelity, c, profiler.activity
        )
    )
    return options


def coding_is_adequate(
    profiler: CodingProfiler,
    fmt: StorageFormat,
    demands: Sequence[Demand],
) -> bool:
    """R2 check: retrieval beats every downstream consumer's speed."""
    for demand in demands:
        speed = profiler.retrieval_speed(fmt, demand.cf_fidelity.sampling)
        if speed < demand.required_speed - _EPS:
            return False
    return True


def cheapest_adequate_coding(
    profiler: CodingProfiler,
    fidelity: Fidelity,
    demands: Sequence[Demand],
) -> Coding:
    """The lowest-storage coding option meeting all retrieval demands.

    Walks encoded options from smallest on-disk size upward, profiling each
    candidate (memoized by the profiler); when even the cheapest-to-decode
    encoded option is too slow, the coding bypass (raw frames) is chosen —
    exactly the rule of Section 4.3.
    """
    for coding in _storage_rank(profiler, fidelity):
        if coding_is_adequate(profiler, StorageFormat(fidelity, coding), demands):
            return coding
    return RAW


class StorageFormatPlanner:
    """Coalesces consumption formats into storage formats."""

    def __init__(self, profiler: CodingProfiler,
                 budget: IngestBudget = IngestBudget()):
        self.profiler = profiler
        self.budget = budget

    # -- construction of the initial SF set ----------------------------------------

    def initial_formats(
        self, decisions: Sequence[ConsumptionDecision]
    ) -> List[SFPlan]:
        """One SF per unique CF (identical fidelity), plus the golden SF."""
        if not decisions:
            raise ConfigurationError("cannot plan storage with no consumers")
        by_cf: Dict[Fidelity, List[Demand]] = {}
        for d in decisions:
            demand = Demand(d.consumer, d.fidelity, d.consumption_speed)
            by_cf.setdefault(d.fidelity, []).append(demand)

        formats = [
            SFPlan(
                fidelity=fid,
                coding=cheapest_adequate_coding(self.profiler, fid, demands),
                demands=demands,
            )
            for fid, demands in by_cf.items()
        ]
        golden_fid = knobwise_max([d.fidelity for d in decisions])
        golden_coding = cheapest_adequate_coding(self.profiler, golden_fid, [])
        formats.append(SFPlan(golden_fid, golden_coding, demands=[], golden=True))
        return formats

    # -- cost accounting --------------------------------------------------------------

    def sf_storage(self, sf: SFPlan) -> float:
        return self.profiler.profile(sf.fmt).bytes_per_second

    def sf_ingest(self, sf: SFPlan) -> float:
        return self.profiler.profile(sf.fmt).ingest_cost

    def storage_cost(self, formats: Sequence[SFPlan]) -> float:
        return sum(self.sf_storage(sf) for sf in formats)

    def ingest_cost(self, formats: Sequence[SFPlan]) -> float:
        return sum(self.sf_ingest(sf) for sf in formats)

    # -- pair coalescing ---------------------------------------------------------------

    def coalesce_pair(self, a: SFPlan, b: SFPlan) -> SFPlan:
        """Merge two storage formats (Section 4.3's three-effect move)."""
        fidelity = knobwise_max([a.fidelity, b.fidelity])
        demands = list(a.demands) + list(b.demands)
        coding = cheapest_adequate_coding(self.profiler, fidelity, demands)
        return SFPlan(fidelity, coding, demands, golden=a.golden or b.golden)

    def _merge_is_safe(self, merged: SFPlan, parents: Sequence[SFPlan]) -> bool:
        """A merge must not take retrieval adequacy away from a consumer
        that had it before (some ultra-fast consumers are retrieval-bound
        even on raw frames; those may stay retrieval-bound, but an adequate
        consumer must remain adequate)."""
        for parent in parents:
            for demand in parent.demands:
                had = coding_is_adequate(self.profiler, parent.fmt, [demand])
                if had and not coding_is_adequate(
                    self.profiler, merged.fmt, [demand]
                ):
                    return False
        return True

    def _pair_moves(
        self, formats: List[SFPlan]
    ) -> Iterator[Tuple[float, float, int, int, SFPlan]]:
        """All safe pairwise merges as (d_storage, d_ingest, i, j, merged)."""
        for i in range(len(formats)):
            for j in range(i + 1, len(formats)):
                merged = self.coalesce_pair(formats[i], formats[j])
                if not self._merge_is_safe(merged, (formats[i], formats[j])):
                    continue
                d_sto = (
                    self.sf_storage(merged)
                    - self.sf_storage(formats[i])
                    - self.sf_storage(formats[j])
                )
                d_ing = (
                    self.sf_ingest(merged)
                    - self.sf_ingest(formats[i])
                    - self.sf_ingest(formats[j])
                )
                yield d_sto, d_ing, i, j, merged

    def _coding_bump_moves(
        self, formats: List[SFPlan]
    ) -> Iterator[Tuple[float, float, int, SFPlan]]:
        """Per-format steps to a faster (cheaper-encode) coding option."""
        for i, sf in enumerate(formats):
            if sf.coding.raw:
                continue
            step_idx = sf.coding.speed_idx
            if step_idx + 1 >= len(SPEED_STEPS):
                continue
            faster = Coding(
                speed_step=SPEED_STEPS[step_idx + 1],
                keyframe_interval=sf.coding.keyframe_interval,
            )
            bumped = replace(sf, coding=faster)
            if not coding_is_adequate(self.profiler, bumped.fmt, bumped.demands):
                continue
            d_sto = self.sf_storage(bumped) - self.sf_storage(sf)
            d_ing = self.sf_ingest(bumped) - self.sf_ingest(sf)
            if d_ing < -_EPS:
                yield d_sto, d_ing, i, bumped

    # -- heuristic-based selection --------------------------------------------------------

    def heuristic_coalesce(
        self, decisions: Sequence[ConsumptionDecision]
    ) -> CoalescePlan:
        """The paper's heuristic: free merges first, then pay storage for
        ingest until the budget is met."""
        formats = self.initial_formats(decisions)
        rounds = 0

        # Phase 1: harvest free merges (no storage increase, less ingest).
        while True:
            best = None
            for d_sto, d_ing, i, j, merged in self._pair_moves(formats):
                if d_sto > _EPS or d_ing > -_EPS:
                    continue
                key = (d_ing, d_sto)  # most ingest saved, then most storage
                if best is None or key < best[0]:
                    best = (key, i, j, merged)
            if best is None:
                break
            _, i, j, merged = best
            formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            formats.append(merged)
            rounds += 1

        # Phase 2: trade storage for ingest until under budget.
        while not self.budget.allows([sf.fmt for sf in formats],
                                     self.profiler.codec):
            best = None  # (storage paid per core saved, apply-closure)
            for d_sto, d_ing, i, j, merged in self._pair_moves(formats):
                if d_ing > -_EPS:
                    continue
                price = d_sto / -d_ing
                if best is None or price < best[0]:
                    best = (price, ("merge", i, j, merged))
            for d_sto, d_ing, i, bumped in self._coding_bump_moves(formats):
                price = d_sto / -d_ing
                if best is None or price < best[0]:
                    best = (price, ("bump", i, None, bumped))
            if best is None:
                raise BudgetError(
                    f"ingestion budget {self.budget.cores} cores is infeasible: "
                    f"cheapest format set needs "
                    f"{self.ingest_cost(formats):.2f} cores"
                )
            _, (kind, i, j, new_sf) = best
            if kind == "merge":
                formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            else:
                formats = [f for k, f in enumerate(formats) if k != i]
            formats.append(new_sf)
            rounds += 1

        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
            rounds=rounds,
        )

    # -- distance-based selection ------------------------------------------------------------

    @staticmethod
    def _knob_vector(fidelity: Fidelity) -> np.ndarray:
        """Knob indices normalized to [0, 1] for the similarity metric."""
        return np.array([
            fidelity.quality_idx / (len(QUALITIES) - 1),
            fidelity.resolution_idx / (len(RESOLUTION_ORDER) - 1),
            fidelity.sampling_idx / (len(SAMPLING_RATES) - 1),
            fidelity.crop_idx / (len(CROP_FACTORS) - 1),
        ])

    def distance_coalesce(
        self,
        decisions: Sequence[ConsumptionDecision],
        target_count: Optional[int] = 4,
    ) -> CoalescePlan:
        """The evaluated alternative: merge the closest pair in normalized
        knob space each round, ignoring resource impacts."""
        formats = self.initial_formats(decisions)
        rounds = 0

        def done() -> bool:
            under_budget = self.budget.allows(
                [sf.fmt for sf in formats], self.profiler.codec
            )
            at_target = target_count is None or len(formats) <= target_count
            return under_budget and at_target

        while len(formats) > 1 and not done():
            best = None
            for i in range(len(formats)):
                for j in range(i + 1, len(formats)):
                    dist = float(np.linalg.norm(
                        self._knob_vector(formats[i].fidelity)
                        - self._knob_vector(formats[j].fidelity)
                    ))
                    if best is None or dist < best[0]:
                        best = (dist, i, j)
            _, i, j = best
            merged = self.coalesce_pair(formats[i], formats[j])
            formats = [f for k, f in enumerate(formats) if k not in (i, j)]
            formats.append(merged)
            rounds += 1

        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
            rounds=rounds,
        )

    # -- exhaustive enumeration (validation baseline, Section 6.4) -------------------------------

    def exhaustive(
        self, decisions: Sequence[ConsumptionDecision], max_cfs: int = 10
    ) -> CoalescePlan:
        """Score every set partition of the CFs; minimize storage cost, then
        ingest cost, subject to the ingestion budget."""
        by_cf: Dict[Fidelity, List[Demand]] = {}
        for d in decisions:
            by_cf.setdefault(d.fidelity, []).append(
                Demand(d.consumer, d.fidelity, d.consumption_speed)
            )
        cfs = list(by_cf.items())
        if len(cfs) > max_cfs:
            raise ConfigurationError(
                f"exhaustive enumeration over {len(cfs)} CFs is unaffordable "
                f"(limit {max_cfs}); use heuristic_coalesce"
            )
        golden_fid = knobwise_max([d.fidelity for d in decisions])

        best: Optional[Tuple[Tuple[float, float], List[SFPlan]]] = None
        # Reference adequacy: what each CF's own dedicated SF can deliver.
        own_adequate: Dict[Fidelity, bool] = {}
        for fid, demands in cfs:
            coding = cheapest_adequate_coding(self.profiler, fid, demands)
            own_adequate[fid] = coding_is_adequate(
                self.profiler, StorageFormat(fid, coding), demands
            )

        for partition in _set_partitions(list(range(len(cfs)))):
            formats = []
            feasible = True
            for block in partition:
                fidelity = knobwise_max([cfs[k][0] for k in block])
                demands = [dem for k in block for dem in cfs[k][1]]
                coding = cheapest_adequate_coding(self.profiler, fidelity, demands)
                sf = SFPlan(fidelity, coding, demands)
                for k in block:
                    if own_adequate[cfs[k][0]] and not coding_is_adequate(
                        self.profiler, sf.fmt, cfs[k][1]
                    ):
                        feasible = False
                        break
                if not feasible:
                    break
                formats.append(sf)
            if not feasible:
                continue
            golden = next(
                (sf for sf in formats if sf.fidelity == golden_fid), None
            )
            if golden is None:
                coding = cheapest_adequate_coding(self.profiler, golden_fid, [])
                formats.append(SFPlan(golden_fid, coding, [], golden=True))
            else:
                golden.golden = True
            if not self.budget.allows([sf.fmt for sf in formats],
                                      self.profiler.codec):
                continue
            score = (self.storage_cost(formats), self.ingest_cost(formats))
            if best is None or score < best[0]:
                best = (score, formats)
        if best is None:
            raise BudgetError("no partition satisfies the ingestion budget")
        formats = best[1]
        return CoalescePlan(
            formats=formats,
            storage_bytes_per_second=self.storage_cost(formats),
            ingest_cores=self.ingest_cost(formats),
        )


def _set_partitions(items: List[int]) -> Iterator[List[List[int]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        yield [[first]] + partition
