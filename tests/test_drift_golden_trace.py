"""Golden-trace pin for a mixed foreground/background evolution run.

The evolution path shares the executor with live queries through priority
banding (class 0 foreground, class 1 background); a silent change in how
background work is granted — a new tie-break, a reordered pool scan —
would alter contention in ways coarse assertions miss.  This pins the
complete task trace of one deterministic drift-evolution run (two
foreground queries racing the re-encode jobs on tight pools)
byte-for-byte, exactly like the non-evolving traces in
``test_golden_traces.py`` — which must themselves stay untouched by the
evolution machinery.

Regenerate after an intentional scheduler change with::

    PYTHONPATH=src python -m pytest tests/test_drift_golden_trace.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.codec.decoder import DecoderPool
from repro.core.evolve import (
    decide_consumers,
    legacy_configuration,
    reencode_jobs,
    replan_incremental,
)
from repro.core.store import VStore
from repro.operators.library import Consumer, default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import FIFOPolicy, OperatorContextPool
from repro.storage.disk import DiskBandwidthPool

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "trace_drift.json"

PHASE1 = (Consumer("Motion", 0.9), Consumer("License", 0.9),
          Consumer("OCR", 0.9))
PHASE2 = (Consumer("Diff", 0.9), Consumer("S-NN", 0.9), Consumer("NN", 0.9))


def _round(value: float) -> float:
    return round(value, 9)


def _run_trace(workdir, core: str = "heap") -> dict:
    """One deterministic mixed run on a fresh store (the re-encode jobs'
    ``on_done`` hooks mutate the store, so every trace gets its own)."""
    lib = default_library(
        names=tuple(c.operator for c in PHASE1 + PHASE2)
    )
    with VStore(workdir=str(workdir), library=lib) as store:
        store.configure(consumers=list(PHASE1))
        store.ingest("jackson", n_segments=4)
        decisions = decide_consumers(
            store.library, PHASE2, clock=store.clock,
            known={d.consumer: d for d in store.configuration.decisions},
        )
        store.adopt(legacy_configuration(store.configuration, decisions))

        replan = replan_incremental(store.configuration, store.library,
                                    list(PHASE1 + PHASE2))
        epoch = store.segments.begin_epoch()
        jobs = []
        for stream in store.segments.streams():
            jobs.extend(reencode_jobs(
                store.segments, stream, [sf.fmt for sf in replan.added],
                store.configuration.plan.golden.fmt, epoch=epoch,
            ))
        assert jobs, "the drifted mix must require new formats"

        ex = store.executor(
            policy=FIFOPolicy(),
            disk_pool=DiskBandwidthPool(1),
            decoder_pool=DecoderPool(1),
            operator_pool=OperatorContextPool(2),
            core=core,
        )
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0)
        ex.admit(QUERY_B, "jackson", 0.9, 0.0, 16.0)
        for job in jobs:
            ex.admit_job(job)
        outcomes = ex.run()
        stats = ex.stats()
        return {
            "policy": stats.policy,
            "makespan": _round(stats.makespan),
            "events": [
                {
                    "event": e["event"],
                    "t": _round(e["t"]),
                    "query": e["query"],
                    "kind": e["kind"],
                    "operator": e["operator"],
                    "resource": e["resource"],
                    "duration": _round(e["duration"]),
                }
                for e in ex.trace_events
            ],
            "queries": [
                {
                    "label": o.session.label,
                    "klass": o.session.klass,
                    "latency": _round(o.latency),
                    "finished_at": _round(o.session.finished_at),
                }
                for o in outcomes
            ],
        }


def _canonical_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=1,
                       ensure_ascii=True) + "\n").encode("utf-8")


def test_drift_trace_matches_golden(tmp_path, request):
    data = _canonical_bytes(_run_trace(tmp_path / "golden"))
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_PATH.write_bytes(data)
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden trace {GOLDEN_PATH}; generate it with "
        f"pytest tests/test_drift_golden_trace.py --update-golden"
    )
    assert GOLDEN_PATH.read_bytes() == data, (
        "the drift-evolution execution trace changed; if the scheduler "
        "change is intentional, regenerate with --update-golden and "
        "review the diff"
    )


def test_heap_and_reference_cores_agree_on_mixed_fleets(tmp_path):
    """Priority banding must behave identically in both executor cores."""
    heap = _canonical_bytes(_run_trace(tmp_path / "heap", "heap"))
    ref = _canonical_bytes(_run_trace(tmp_path / "ref", "reference"))
    assert heap == ref


def test_drift_trace_is_well_formed(tmp_path):
    payload = _run_trace(tmp_path / "shape")
    events = payload["events"]
    assert events
    starts = [e for e in events if e["event"] == "start"]
    finishes = [e for e in events if e["event"] == "finish"]
    assert len(starts) == len(finishes)
    assert [e["t"] for e in events] == sorted(e["t"] for e in events)
    klasses = {q["klass"] for q in payload["queries"]}
    assert klasses == {0, 1}, "the run must mix foreground and background"
    # Foreground queries outrank the re-encode gang: with FIFO banding
    # they never finish after the whole run does.
    fg_finish = max(q["finished_at"] for q in payload["queries"]
                    if q["klass"] == 0)
    assert fg_finish <= payload["makespan"]
