"""Vectorized fleet fast path: the executor's hot loop on flat arrays.

The general event-heap core (:meth:`ConcurrentExecutor._run_heap
<repro.query.scheduler.ConcurrentExecutor._run_heap>`) pays real per-event
Python even after PR 5 made every decision O(log n): a ``_Waiting`` and a
``_Running`` dataclass per task, policy-callback indirection per priority,
dict traffic for service accounting, and attribute chases on every grant
and completion.  For the fleets the scale benchmarks and the planned
open-loop harness actually run — thousands of *independent* queries, no
cache plane, static priorities — none of that machinery changes the
schedule, so this module lowers the fleet onto flat parallel arrays once
at ``run()`` entry and drains it with a loop whose per-event work is a few
list index operations and one ``heapq`` push/pop.

Qualification (checked once, recorded as ``ExecutorStats.core ==
"fastpath"``; any miss falls back to the general heap core):

* no cache plane — so runtime chains are the plan chains verbatim: no
  single-flight rewrite, no dependency edges, no wakeups;
* the policy is exactly :class:`~repro.query.scheduler.FIFOPolicy` or
  :class:`~repro.query.scheduler.DeadlinePolicy` — both keys are static
  per session (``(seq,)`` / ``(deadline, seq)``), so lazy invalidation
  and priority callbacks vanish into one float per session;
* every session runs one context and every task requests one unit — true
  for all ``contexts=1`` admissions — so "fits" degenerates to
  ``free > 0`` and capacity parking cannot occur;
* every session is foreground (class 0) and no task carries an
  ``on_done`` hook — background evolution jobs band the priority key and
  commit store mutations at completion, both of which only the general
  core implements.

Lowering happens per *plan*, not per session, and is cached on the plan
object (keyed on the stage tuple's identity and the store's shard
layout): a benchmark fleet admitting one plan 4096 times lowers it once.

Bit-parity with the heap core (and therefore the reference oracle) is by
construction, not by approximation:

* the single ``seq`` counter increments on every submission *and* every
  grant, exactly as in the general cores, so all tie-breaks agree;
* grants pick the globally minimal ``(k0, seq)`` over the per-resource
  ready heaps — the same total order the policy callbacks produce;
* completions pop in ``(end, seq)`` order and replicate
  ``SimClock.charge`` / ``advance_to`` float-for-float, including the
  "charge exact duration when the task started at the current instant"
  branch that keeps a lone query bit-identical to sequential execution;
* per-pool busy seconds accumulate in completion order, and per-session
  service accumulates in chain order (a session's chain is serial, so
  its completion order *is* chain order — which is why service can be
  precomputed during lowering and shared by every session on the plan).

Trace recording honours the executor's tracing switch: a traced fastpath
run emits the identical event dicts the general cores would, which is how
the Hypothesis parity suite replays qualifying fleets through all three
cores and diffs the traces.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.obs.trace import task_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scheduler ↔ here)
    from repro.query.scheduler import ConcurrentExecutor, QueryPlan

__all__ = ["lower_fleet", "run_fastpath"]

#: Attribute the per-plan lowering is cached under (``object.__setattr__``
#: on the frozen plan, like ``QueryPlan.tasks`` caches its flattening).
_CACHE_ATTR = "_fastpath_lowered"


class _Chain:
    """One plan's task chain as parallel arrays, shared across sessions."""

    __slots__ = ("resource", "duration", "category", "kind", "operator",
                 "service", "n")

    def __init__(self, resource: List[str], duration: List[float],
                 category: List[str], kind: List[str], operator: List[str],
                 service: Dict[str, float]) -> None:
        self.resource = resource  # routed pool name per task
        self.duration = duration
        self.category = category
        self.kind = kind  # "retrieve" | "consume", for trace events
        self.operator = operator
        #: Chain-order service accumulation per pool name — exactly the
        #: floats ``_complete`` would leave in ``service_by_resource``.
        self.service = service
        self.n = len(duration)


class _Fleet:
    """A qualified fleet, lowered: per-session chains + static policy keys."""

    __slots__ = ("chains", "k0")

    def __init__(self, chains: List[_Chain], k0: List[float]) -> None:
        self.chains = chains
        self.k0 = k0  # one static priority scalar per session


def _lower_plan(plan: "QueryPlan", disk_shards: int) -> Optional[_Chain]:
    """Lower one plan's chain to arrays; ``None`` if a task disqualifies.

    Cached on the plan keyed by (stages identity, shard layout) — the
    routing of ``"disk"`` tasks onto per-shard channel pools is the only
    store-dependent part of the lowering.
    """
    cached = plan.__dict__.get(_CACHE_ATTR)
    if (cached is not None and cached[0] is plan.stages
            and cached[1] == disk_shards):
        return cached[2]
    resource: List[str] = []
    duration: List[float] = []
    category: List[str] = []
    kind: List[str] = []
    operator: List[str] = []
    service: Dict[str, float] = {}
    chain: Optional[_Chain] = None
    for task in plan.tasks:
        if task.units != 1:
            break  # multi-unit gang: parking semantics -> general core
        if task.on_done is not None:
            break  # completion hooks (background jobs) -> general core
        name = task.resource
        if name == "disk" and disk_shards > 1:
            name = f"disk:{task.shard % disk_shards}"
        resource.append(name)
        duration.append(task.duration)
        category.append(task.category)
        kind.append(task.kind)
        operator.append(task.operator)
        service[name] = service.get(name, 0.0) + task.duration
    else:
        chain = _Chain(resource, duration, category, kind, operator, service)
    object.__setattr__(plan, _CACHE_ATTR, (plan.stages, disk_shards, chain))
    return chain


def lower_fleet(executor: "ConcurrentExecutor") -> Optional[_Fleet]:
    """Lower a qualifying fleet to arrays; ``None`` to use the heap core."""
    from repro.query.scheduler import DeadlinePolicy, FIFOPolicy

    if executor.cache is not None:
        return None  # single-flight rewrite / wakeups need the general core
    if executor._admission is not None:
        return None  # open-loop admission control needs the general cores
    if executor._failure_events:
        return None  # failure timelines interleave with the general cores
    policy_type = type(executor.policy)
    if policy_type is not FIFOPolicy and policy_type is not DeadlinePolicy:
        return None  # dynamic (or custom) priorities need lazy invalidation
    sessions = executor._sessions
    if not sessions:
        return None
    edf = policy_type is DeadlinePolicy
    disk_shards = executor._disk_shards
    pools = executor._pools
    chains: List[_Chain] = []
    k0: List[float] = []
    lowered: Dict[int, Optional[_Chain]] = {}
    for session in sessions:
        if session.klass != 0:
            return None  # background jobs band the priority key
        if session.contexts != 1:
            return None  # gangs may park on the operator pool
        if session.arrival_at > executor.clock.now or session.tenant is not None:
            return None  # open-loop arrivals / tenancy need the general cores
        plan = session.plan
        key = id(plan)
        chain = lowered.get(key)
        if chain is None:
            chain = _lower_plan(plan, disk_shards)
            if chain is None:
                return None
            for name in chain.service:
                if name not in pools:  # pragma: no cover - defensive
                    return None
            lowered[key] = chain
        chains.append(chain)
        if edf:
            deadline = session.deadline
            k0.append(deadline if deadline is not None else math.inf)
        else:
            k0.append(0.0)
    return _Fleet(chains, k0)


def run_fastpath(executor: "ConcurrentExecutor", fleet: _Fleet) -> None:
    """Drain a lowered fleet; bit-identical to the general cores.

    The loop keeps every piece of mutable state in flat locals — ready
    heaps of ``(k0, seq, session)`` triples per pool, one completion heap
    of ``(end, seq, session, start)``, and plain lists for cursors, waits
    and pool capacity — and writes the results back onto the executor's
    sessions, pools and clock only once, after the drain.  Accumulation
    *order* (the thing float parity actually depends on) is identical to
    the general cores throughout; see the module docstring.
    """
    sessions = executor._sessions
    chains = fleet.chains
    k0 = fleet.k0
    clock = executor.clock
    now = run_start = clock.now
    by_category = clock.by_category
    tracing = executor._tracing
    trace_events = executor.trace_events
    labels = [s.label for s in sessions] if tracing else None

    pool_names = list(executor._pools)
    index = {name: r for r, name in enumerate(pool_names)}
    pools = [executor._pools[name] for name in pool_names]
    # Unbounded pools never run out: float inf survives -=/+= untouched.
    free = [math.inf if p.capacity is None else p.capacity - p.in_use
            for p in pools]
    busy = [p.busy_seconds for p in pools]

    n = len(sessions)
    res: List[List[int]] = []  # chain resource indices, per session
    for chain in chains:
        res.append([index[name] for name in chain.resource])

    ready: List[List[Tuple[float, int, int]]] = [[] for _ in pool_names]
    completions: List[Tuple[float, int, int, float]] = []
    cursor = [0] * n  # next task to submit, per session
    since = [0.0] * n  # submission instant of the session's waiting task
    waited = [s.waited_seconds for s in sessions]
    finished = [s.finished_at for s in sessions]
    seq = 0  # one counter for submissions AND grants, as in the cores

    for s in range(n):  # initial submissions, admission order
        if chains[s].n == 0:
            finished[s] = now  # empty chain: finished at admission instant
        else:
            heappush(ready[res[s][0]], (k0[s], seq, s))
            since[s] = now
            cursor[s] = 1
            seq += 1

    nres = len(pool_names)
    while True:
        # -- grant round: globally minimal (k0, seq) over fitting heads --
        while True:
            best = None
            best_r = -1
            for r in range(nres):
                q = ready[r]
                if q and free[r] > 0:
                    head = q[0]
                    if best is None or head < best:
                        best = head
                        best_r = r
            if best is None:
                break
            heappop(ready[best_r])
            s = best[2]
            free[best_r] -= 1
            waited[s] += now - since[s]
            i = cursor[s] - 1
            chain = chains[s]
            duration = chain.duration[i]
            heappush(completions, (now + duration, seq, s, now))
            if tracing:
                trace_events.append(task_event(
                    "start", now, labels[s], chain.kind[i],
                    chain.operator[i], chain.resource[i], duration,
                ))
            seq += 1

        if not completions:
            break

        # -- next completion in (end, seq) order --
        end, _, s, start = heappop(completions)
        chain = chains[s]
        i = cursor[s] - 1
        duration = chain.duration[i]
        category = chain.category[i]
        r = res[s][i]
        # SimClock.charge / advance_to, float-for-float: charge the exact
        # duration when the task started at the current instant (the N=1
        # sequential-parity branch), otherwise advance by the delta — and
        # ``advance_to`` adds the delta rather than assigning ``end``.
        if now == start:
            now = now + duration
            by_category[category] = by_category.get(category, 0.0) + duration
        else:
            delta = end - now
            if delta > 0:
                now = now + delta
                by_category[category] = (
                    by_category.get(category, 0.0) + delta
                )
        busy[r] += duration  # units == 1
        if tracing:
            trace_events.append(task_event(
                "finish", now, labels[s], chain.kind[i],
                chain.operator[i], chain.resource[i], duration,
            ))
        free[r] += 1
        i += 1
        if i >= chain.n:
            finished[s] = now
        else:
            heappush(ready[res[s][i]], (k0[s], seq, s))
            since[s] = now
            cursor[s] = i + 1
            seq += 1

    # -- write results back onto the executor's state, once --
    clock.now = now
    events = 0
    for s in range(n):
        session = sessions[s]
        chain = chains[s]
        session.finished_at = finished[s]
        session.entered_at = run_start
        session.waited_seconds = waited[s]
        session.service_by_resource = dict(chain.service)
        session.prio_version += chain.n  # one bump per completion
        session._cursor = chain.n
        events += 2 * chain.n  # one start + one finish per task
    for r, pool in enumerate(pools):
        pool.busy_seconds = busy[r]
    executor._events += events
