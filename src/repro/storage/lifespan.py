"""Age tracking and erosion execution (Section 4.4, execution side).

The erosion *planner* (:mod:`repro.core.erosion`) decides, for each video
age and each storage format, which cumulative fraction of segments must be
gone.  This module executes such plans against a segment store: it assigns
every segment a deterministic "erosion rank" so that raising the deleted
fraction only ever deletes *more* segments (deletions are stable and spread
evenly across a day's footage), and drops footage past its lifespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.storage.segment_store import SegmentStore
from repro.units import DAY, SEGMENT_SECONDS
from repro.video.format import StorageFormat

_KNUTH = 2654435761  # Knuth multiplicative hash constant


def erosion_rank(index: int) -> float:
    """A stable pseudo-uniform rank in [0, 1) for a segment index.

    Segments whose rank falls below the planned deletion fraction are
    deleted; because the rank is fixed, growing the fraction strictly grows
    the deleted set (cumulative erosion, as Figure 10 shows).
    """
    return ((index * _KNUTH) & 0xFFFFFFFF) / 2.0**32


def segment_age_days(index: int, now_seconds: float,
                     seconds: float = SEGMENT_SECONDS) -> int:
    """Age of a segment in whole days at stream time ``now_seconds``.

    Day 1 is the youngest age (the paper's x axis starts at 1).
    """
    end = (index + 1) * seconds
    return int(max(0.0, now_seconds - end) // DAY) + 1


@dataclass
class AgeTracker:
    """Groups a stream's segments by age for a given "now"."""

    now_seconds: float
    segment_seconds: float = SEGMENT_SECONDS

    def ages(self, indices: Iterable[int]) -> Dict[int, List[int]]:
        """Map age (days, 1-based) to the segment indices at that age."""
        out: Dict[int, List[int]] = {}
        for i in indices:
            age = segment_age_days(i, self.now_seconds, self.segment_seconds)
            out.setdefault(age, []).append(i)
        return out


def apply_erosion_step(
    store: SegmentStore,
    stream: str,
    deleted_fraction: Mapping[Tuple[int, StorageFormat], float],
    now_seconds: float,
    lifespan_days: int,
    segment_seconds: float = SEGMENT_SECONDS,
) -> int:
    """Bring the store in line with an erosion plan; returns deletions made.

    ``deleted_fraction`` maps (age-in-days, storage format) to the cumulative
    fraction of that age's segments that must be deleted.  Footage older than
    ``lifespan_days`` is dropped entirely regardless of the plan.
    """
    tracker = AgeTracker(now_seconds, segment_seconds)
    deletions = 0
    for fmt in store.formats(stream):
        by_age = tracker.ages(store.indices(stream, fmt))
        for age, indices in by_age.items():
            if age > lifespan_days:
                fraction = 1.0
            else:
                fraction = deleted_fraction.get((age, fmt), 0.0)
            if fraction <= 0.0:
                continue
            for i in indices:
                if erosion_rank(i) < fraction and store.delete(stream, fmt, i):
                    deletions += 1
    return deletions
