"""Age-based data erosion planning (Section 4.4, Figures 10 and 13).

As footage ages, VStore deletes growing fractions of each storage format's
segments, letting consumers fall back to richer ancestors in a richer-than
tree rooted at the golden format (which is never eroded).  Fallback keeps
accuracy intact (R1) but decays effective speed; the planner:

* computes each consumer's *relative speed* under a set of per-format
  deletion fractions, following the fallback chain;
* takes the overall speed as the max-min over consumers;
* plans deletions per age like a fair scheduler — always eroding the format
  that least harms the currently slowest consumer;
* sets per-age targets with the power law P(x) = (1-Pmin) x^-k + Pmin and
  binary-searches the smallest decay factor k that fits the storage budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.coalesce import Demand, SFPlan
from repro.errors import ErosionError
from repro.retrieval.speed import retrieval_speed
from repro.units import DAY
from repro.video.format import StorageFormat

#: Granularity of deletion fractions while planning one age.
_STEP = 0.02
_EPS = 1e-9


@dataclass(frozen=True)
class ErosionPlan:
    """The derived erosion schedule for one stream's storage formats."""

    k: float
    pmin: float
    lifespan_days: int
    #: cumulative deleted fraction per (age, format label).
    fractions: Dict[Tuple[int, str], float]
    #: achieved overall relative speed per age.
    overall_speed: Dict[int, float]
    #: residual stored bytes per (age, format label) for one day of footage.
    residual_bytes: Dict[Tuple[int, str], float]
    labels: Tuple[str, ...]

    @property
    def total_bytes(self) -> float:
        """Steady-state total footprint across the whole lifespan."""
        return sum(self.residual_bytes.values())

    def deleted_fraction_map(
        self, formats: Sequence[SFPlan]
    ) -> Dict[Tuple[int, StorageFormat], float]:
        """The plan keyed by StorageFormat, as the storage layer expects."""
        by_label = {sf.label: sf.fmt for sf in formats}
        return {
            (age, by_label[label]): fraction
            for (age, label), fraction in self.fractions.items()
            if label in by_label
        }


def power_law_target(age: int, k: float, pmin: float) -> float:
    """P(x) = (1 - Pmin) * x^-k + Pmin — the per-age overall-speed target.

    The target is a relative speed, so it only makes sense inside [0, 1]:
    ages start at day 1 (x^-k would *grow* for x < 1), the decay factor
    must be non-negative, and Pmin is itself an overall speed.  Invalid
    inputs raise ``ValueError`` instead of quietly producing targets the
    fair-scheduler loop can never reach; the result is clamped so float
    dust near the endpoints cannot leak out of [0, 1].
    """
    if age < 1:
        raise ValueError(f"age must be >= 1 day, got {age}")
    if not math.isfinite(k) or k < 0.0:
        raise ValueError(f"decay factor k must be finite and >= 0, got {k}")
    if not (0.0 <= pmin <= 1.0):  # also rejects NaN
        raise ValueError(f"pmin must be within [0, 1], got {pmin}")
    return min(1.0, max(0.0, (1.0 - pmin) * float(age) ** (-k) + pmin))


class ErosionPlanner:
    """Plans age-based erosion for one coalesced storage-format set."""

    def __init__(
        self,
        formats: Sequence[SFPlan],
        bytes_per_second: Dict[str, float],
        lifespan_days: int = 10,
    ):
        if not any(sf.golden for sf in formats):
            raise ErosionError("erosion planning requires a golden format")
        self.formats = list(formats)
        self.bytes_per_second = dict(bytes_per_second)
        self.lifespan_days = lifespan_days
        self.parent: Dict[int, Optional[int]] = self._build_tree()
        self._consumers: List[Tuple[Demand, int]] = [
            (demand, i)
            for i, sf in enumerate(self.formats)
            for demand in sf.demands
        ]
        self._speed_cache: Dict[Tuple, float] = {}

    # -- richer-than tree -------------------------------------------------------

    def _build_tree(self) -> Dict[int, Optional[int]]:
        """Parent of each format: the closest strictly richer format (ties
        and dead ends resolve to the golden root)."""
        golden_idx = next(i for i, sf in enumerate(self.formats) if sf.golden)
        parent: Dict[int, Optional[int]] = {golden_idx: None}
        for i, sf in enumerate(self.formats):
            if i == golden_idx:
                continue
            candidates = [
                (self._richness(self.formats[j].fidelity), j)
                for j, other in enumerate(self.formats)
                if j != i and other.fidelity.richer_than(sf.fidelity)
            ]
            if not candidates:
                parent[i] = golden_idx
            else:
                parent[i] = min(candidates)[1]
        return parent

    @staticmethod
    def _richness(fidelity) -> Tuple[int, int, int, int]:
        return (
            fidelity.resolution_idx + fidelity.sampling_idx
            + fidelity.quality_idx + fidelity.crop_idx,
            fidelity.resolution_idx,
            fidelity.sampling_idx,
            fidelity.quality_idx,
        )

    def chain(self, sf_index: int) -> List[int]:
        """Fallback chain from a format up to the golden root."""
        out = [sf_index]
        seen = {sf_index}
        while True:
            nxt = self.parent[out[-1]]
            if nxt is None:
                return out
            if nxt in seen:
                raise ErosionError("richer-than tree contains a cycle")
            out.append(nxt)
            seen.add(nxt)

    # -- speeds ------------------------------------------------------------------

    def effective_speed(self, demand: Demand, sf_index: int) -> float:
        """Consumer speed when served from ``sf_index``: the slower of its
        consumption speed and that format's retrieval speed."""
        key = (demand.consumer, demand.cf_fidelity, sf_index)
        cached = self._speed_cache.get(key)
        if cached is None:
            fmt = self.formats[sf_index].fmt
            cached = min(
                demand.required_speed,
                retrieval_speed(fmt, demand.cf_fidelity.sampling),
            )
            self._speed_cache[key] = cached
        return cached

    def relative_speed(self, demand: Demand, home: int,
                       fractions: Dict[int, float]) -> float:
        """Speed relative to the un-eroded case under per-format deletion
        fractions, following the fallback chain (generalizes the paper's
        alpha / ((1-p) alpha + p) to multi-level fallback)."""
        v0 = self.effective_speed(demand, home)
        if v0 <= 0:
            return 1.0
        expected_time = 0.0
        survive = 1.0  # probability the segment was deleted at all prior levels
        for level in self.chain(home):
            p_deleted = fractions.get(level, 0.0)
            if self.formats[level].golden:
                p_deleted = 0.0  # the golden format is never eroded
            serve_prob = survive * (1.0 - p_deleted)
            if serve_prob > 0.0:
                expected_time += serve_prob / self.effective_speed(demand, level)
            survive *= p_deleted
        if expected_time <= 0.0:
            return 1.0
        return min(1.0, 1.0 / (v0 * expected_time))

    def overall_speed(self, fractions: Dict[int, float]) -> float:
        """Max-min fairness: the minimum relative speed over all consumers."""
        if not self._consumers:
            return 1.0
        return min(
            self.relative_speed(demand, home, fractions)
            for demand, home in self._consumers
        )

    @property
    def pmin(self) -> float:
        """Overall speed with every non-golden format fully deleted."""
        fractions = {
            i: 1.0 for i, sf in enumerate(self.formats) if not sf.golden
        }
        return self.overall_speed(fractions)

    # -- planning one age --------------------------------------------------------------

    def _erode_age(self, fractions: Dict[int, float],
                   target: float) -> Dict[int, float]:
        """Extend cumulative fractions until overall speed <= target.

        Fair-scheduler loop (Section 4.4): find the slowest consumer Q,
        erode the format that harms Q least, and size the deletion so the
        overall speed lands on the target — computed by binary search,
        because relative speed is extremely steep in the deleted fraction
        when consumption outruns fallback retrieval by orders of magnitude.
        """
        fractions = dict(fractions)
        while self.overall_speed(fractions) > target + _EPS:
            # The consumer currently experiencing the worst decay.
            slowest = min(
                self._consumers,
                key=lambda c: self.relative_speed(c[0], c[1], fractions),
            )
            candidates = [
                i for i, sf in enumerate(self.formats)
                if not sf.golden and fractions.get(i, 0.0) < 1.0 - _EPS
            ]
            if not candidates:
                break  # only the golden format remains: floor reached

            # Erode the format that least harms the slowest consumer.
            def impact(i: int) -> float:
                probe = dict(fractions)
                probe[i] = min(1.0, probe.get(i, 0.0) + _STEP)
                return -(self.relative_speed(slowest[0], slowest[1], probe))

            victim = min(candidates, key=impact)

            full = dict(fractions)
            full[victim] = 1.0
            if self.overall_speed(full) > target + _EPS:
                # Even deleting this format entirely is not enough; take it
                # all and move on to the next victim.
                fractions = full
                continue
            # Binary search the smallest fraction reaching the target.
            lo, hi = fractions.get(victim, 0.0), 1.0
            for _ in range(40):
                mid = (lo + hi) / 2.0
                probe = dict(fractions)
                probe[victim] = mid
                if self.overall_speed(probe) > target + _EPS:
                    lo = mid
                else:
                    hi = mid
            fractions[victim] = hi
        return fractions

    # -- whole-lifespan planning -----------------------------------------------------------

    def plan_for_k(self, k: float) -> ErosionPlan:
        """Erosion plan following the power-law targets for a given k."""
        pmin = self.pmin
        fractions: Dict[int, float] = {}
        per_age_fracs: Dict[Tuple[int, str], float] = {}
        speeds: Dict[int, float] = {}
        residual: Dict[Tuple[int, str], float] = {}
        day_bytes = {
            sf.label: self.bytes_per_second.get(sf.label, 0.0) * DAY
            for sf in self.formats
        }
        for age in range(1, self.lifespan_days + 1):
            target = power_law_target(age, k, pmin)
            fractions = self._erode_age(fractions, target)
            speeds[age] = self.overall_speed(fractions)
            for i, sf in enumerate(self.formats):
                # Deleted fractions are probabilities; the binary search
                # can land a half-ulp outside the interval, and a clamped
                # plan is what the storage layer executes.
                frac = (0.0 if sf.golden
                        else min(1.0, max(0.0, fractions.get(i, 0.0))))
                per_age_fracs[(age, sf.label)] = frac
                residual[(age, sf.label)] = day_bytes[sf.label] * (1.0 - frac)
        return ErosionPlan(
            k=k,
            pmin=pmin,
            lifespan_days=self.lifespan_days,
            fractions=per_age_fracs,
            overall_speed=speeds,
            residual_bytes=residual,
            labels=tuple(sf.label for sf in self.formats),
        )

    def plan(self, storage_budget_bytes: Optional[float]) -> ErosionPlan:
        """Find the gentlest decay (smallest k) fitting the budget via
        binary search; k = 0 means no erosion at all."""
        if storage_budget_bytes is not None and not (
                math.isfinite(storage_budget_bytes)
                and storage_budget_bytes >= 0.0):
            # NaN would sail through every <= comparison below as False
            # and silently return the harshest plan probed; negative
            # budgets have no meaning at all.  Fail loudly instead.
            raise ValueError(
                f"storage budget must be a non-negative number of bytes "
                f"(or None for unlimited), got {storage_budget_bytes!r}"
            )
        no_decay = self.plan_for_k(0.0)
        if storage_budget_bytes is None or no_decay.total_bytes <= storage_budget_bytes:
            return no_decay

        k_max = 16.0
        floor_plan = self.plan_for_k(k_max)
        if floor_plan.total_bytes > storage_budget_bytes:
            raise ErosionError(
                f"storage budget {storage_budget_bytes:.3e} B is below the "
                f"erosion floor {floor_plan.total_bytes:.3e} B (day-1 footage "
                f"plus the golden format are never deleted)"
            )
        lo, hi = 0.0, k_max
        best = floor_plan
        for _ in range(24):
            mid = (lo + hi) / 2.0
            plan = self.plan_for_k(mid)
            if plan.total_bytes <= storage_budget_bytes:
                best = plan
                hi = mid
            else:
                lo = mid
        return best
