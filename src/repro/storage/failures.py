"""Failure injection for the sharded plane: campaigns, events, rebuilds.

A production video store loses spindles; the reproduction now models
that.  A :class:`FailureCampaign` is a pinned, fully deterministic
schedule of shard :class:`FailureEvent`\\ s on the *simulated* clock:

* ``fail`` — the shard crashes.  Every replica it held is destroyed;
  keys with surviving copies promote the fastest survivor to primary and
  become re-replication work, keys whose last copy lived there are
  recorded as **lost** (reads raise
  :class:`~repro.errors.ReplicaUnavailableError`).
* ``degrade`` — the shard stays readable but its reads cost ``factor``
  extra (a sick spindle: remapped sectors, background scrubbing).
* ``recover`` — the spindle returns to service *empty*: destroyed
  replicas stay destroyed (re-replication already rebuilt them
  elsewhere), but the shard is again eligible for placements.

The campaign's events ride the concurrent executor's timeline
(:meth:`~repro.query.scheduler.ConcurrentExecutor.schedule_failures`)
alongside arrivals and completions, so an open-loop serve measures its
SLOs *through* the failure window.  Lost redundancy is restored by
:func:`rebuild_jobs`: background re-replication jobs in executor
scheduling class 1 — read the surviving replica, write a fresh copy to
the least-loaded healthy shard — that contend honestly with foreground
queries for the per-shard I/O channels and commit their bookkeeping
(:meth:`~repro.storage.segment_store.SegmentStore.commit_replica`) at
the simulated instant the copy finished.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.sharding import ShardedDiskArray, ShardKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.scheduler import BackgroundJob
    from repro.storage.segment_store import SegmentStore

__all__ = [
    "FAILURE_ACTIONS",
    "FailureCampaign",
    "FailureEvent",
    "RebuildWork",
    "apply_event",
    "rebuild_jobs",
]

#: The three things that can happen to a shard, in trace-kind spelling.
FAILURE_ACTIONS = ("fail", "degrade", "recover")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled health transition of one shard."""

    t: float  # simulated instant the event fires
    action: str  # "fail" | "degrade" | "recover"
    shard: int
    factor: float = 4.0  # read-slowdown multiplier ("degrade" only)

    def __post_init__(self) -> None:
        if self.action not in FAILURE_ACTIONS:
            raise StorageError(
                f"unknown failure action {self.action!r}; "
                f"known: {FAILURE_ACTIONS}"
            )
        if self.t < 0:
            raise StorageError(f"event time must be >= 0: {self.t}")
        if self.shard < 0:
            raise StorageError(f"no such shard: {self.shard}")
        if self.action == "degrade" and self.factor < 1.0:
            raise StorageError(
                f"degrade factor must be >= 1: {self.factor}"
            )


@dataclass(frozen=True)
class FailureCampaign:
    """A deterministic schedule of failure events, sorted by time.

    Construction validates and time-sorts the events (stable, so
    same-instant events keep their given order).  Campaigns are pure
    data: applying one is the executor timeline's job, planning around
    one is the store facade's.
    """

    events: Tuple[FailureEvent, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.t))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def fail_events(self) -> Tuple[FailureEvent, ...]:
        return tuple(e for e in self.events if e.action == "fail")

    def max_concurrent_failures(self) -> int:
        """Peak number of simultaneously failed shards over the campaign.

        The ``f`` of the ``f < k`` no-data-loss guarantee: with
        ``replication=k`` and fewer than k shards down at any instant,
        every key keeps at least one live replica (provided replicas sit
        on distinct shards — which placement enforces).
        """
        down: set = set()
        peak = 0
        for event in self.events:
            if event.action == "fail":
                down.add(event.shard)
            elif event.action == "recover":
                down.discard(event.shard)
            peak = max(peak, len(down))
        return peak

    def validate_for(self, array: ShardedDiskArray) -> None:
        """Reject events that target shards the array does not have."""
        for event in self.events:
            if event.shard >= array.n_shards:
                raise StorageError(
                    f"campaign event targets shard {event.shard} but the "
                    f"array has only {array.n_shards}"
                )

    @classmethod
    def parse(cls, text: str) -> "FailureCampaign":
        """Parse a CLI spec: ``action@t:shard[:factor],...``.

        Example: ``fail@10:0,degrade@10:1:8,recover@60:0``.
        """
        events: List[FailureEvent] = []
        for part in filter(None, (p.strip() for p in text.split(","))):
            try:
                action, _, rest = part.partition("@")
                pieces = rest.split(":")
                t = float(pieces[0])
                shard = int(pieces[1])
                factor = float(pieces[2]) if len(pieces) > 2 else 4.0
            except (IndexError, ValueError):
                raise StorageError(
                    f"malformed failure event {part!r}; expected "
                    f"action@t:shard[:factor]"
                ) from None
            events.append(FailureEvent(t=t, action=action, shard=shard,
                                       factor=factor))
        if not events:
            raise StorageError(f"empty failure campaign spec: {text!r}")
        return cls(events=tuple(events))

    @classmethod
    def random(cls, n_shards: int, horizon: float, *, seed: int = 0,
               n_failures: int = 1, degrade_factor: float = 4.0,
               repair_seconds: Optional[float] = None) -> "FailureCampaign":
        """A pinned pseudo-random campaign: pure function of its inputs.

        Each failure picks a distinct shard and a fail time inside the
        middle of the horizon; a matching recover fires
        ``repair_seconds`` later (default: a quarter horizon).  One
        degrade event rides along on another shard when room allows.
        """
        if n_shards < 1:
            raise StorageError(f"need at least one shard: {n_shards}")
        if horizon <= 0:
            raise StorageError(f"horizon must be positive: {horizon}")
        if not 0 <= n_failures <= n_shards:
            raise StorageError(
                f"cannot fail {n_failures} of {n_shards} shards"
            )
        rng = random.Random(seed)
        repair = (horizon / 4.0 if repair_seconds is None
                  else repair_seconds)
        shards = rng.sample(range(n_shards), k=min(n_shards, n_failures + 1))
        events: List[FailureEvent] = []
        for shard in shards[:n_failures]:
            t = rng.uniform(horizon * 0.2, horizon * 0.6)
            events.append(FailureEvent(t=t, action="fail", shard=shard))
            events.append(FailureEvent(t=t + repair, action="recover",
                                       shard=shard))
        if len(shards) > n_failures:
            t = rng.uniform(horizon * 0.2, horizon * 0.6)
            events.append(FailureEvent(t=t, action="degrade",
                                       shard=shards[-1],
                                       factor=degrade_factor))
        return cls(events=tuple(events))


@dataclass(frozen=True)
class RebuildWork:
    """One lost replica to re-copy: read ``source``, write ``destination``."""

    key: ShardKey
    nbytes: float
    source: int
    destination: int


def apply_event(array: ShardedDiskArray,
                event: FailureEvent) -> List[Tuple[ShardKey, float, int]]:
    """Flip one event's health transition on the array.

    Idempotent per state: failing an already-failed shard (or recovering
    a healthy one) is a no-op, so the store facade's planning pass and
    the executor's timeline replay can both apply the same campaign.
    Returns the re-replication work a ``fail`` produced
    (``(key, bytes, source_shard)`` triples), empty for the other
    actions.
    """
    if event.shard >= array.n_shards:
        raise StorageError(
            f"event targets shard {event.shard} but the array has "
            f"only {array.n_shards}"
        )
    if event.action == "fail":
        return array.fail_shard(event.shard)
    if event.action == "degrade":
        if not array.is_failed(event.shard):
            array.degrade_shard(event.shard, event.factor)
        return []
    array.recover_shard(event.shard)
    return []


def plan_rebuilds(array: ShardedDiskArray,
                  work: Sequence[Tuple[ShardKey, float, int]],
                  ) -> List[RebuildWork]:
    """Choose a destination shard for each lost replica; pure, no I/O.

    Destinations are the least-loaded shard that is healthy and holds no
    copy of the key, with a running byte overlay so one build round
    spreads its copies instead of dog-piling the currently emptiest
    spindle.  Work items with no eligible destination (every healthy
    shard already holds a copy) are skipped — redundancy cannot be
    raised above the healthy-shard count.
    """
    overlay: Dict[int, float] = {}
    plans: List[RebuildWork] = []
    for key, nbytes, source in work:
        stream, fmt_text, index = key
        holders = set(array.replicas(stream, fmt_text, index))
        candidates = [
            i for i in range(array.n_shards)
            if not array.is_failed(i) and i not in holders
        ]
        if not candidates:
            continue
        destination = min(
            candidates,
            key=lambda i: (array.shard_bytes[i] + overlay.get(i, 0.0), i),
        )
        overlay[destination] = overlay.get(destination, 0.0) + nbytes
        plans.append(RebuildWork(key=key, nbytes=nbytes, source=source,
                                 destination=destination))
    return plans


def rebuild_jobs(store: "SegmentStore",
                 work: Sequence[Tuple[ShardKey, float, int]],
                 ) -> List["BackgroundJob"]:
    """Build the background re-replication jobs for one failure's losses.

    One job per lost replica: a charged read on the surviving source
    shard, then a charged write on the chosen destination shard whose
    ``on_done`` commits the new copy
    (:meth:`~repro.storage.segment_store.SegmentStore.commit_replica`)
    at the simulated instant it finished.  Jobs run in executor
    scheduling class 1, so foreground queries always win free capacity.
    """
    # Imported here: repro.storage must stay importable without pulling
    # the whole query plane (and scheduler imports storage types).
    from repro.query.scheduler import BackgroundJob, ResourceTask

    array = store.array
    if array is None:
        raise StorageError("rebuild jobs need a sharded store")
    jobs: List[BackgroundJob] = []
    for plan in plan_rebuilds(array, work):
        stream, fmt_text, index = plan.key
        src_disk = array.shard(plan.source)
        dst_disk = array.shard(plan.destination)
        read_seconds = (
            plan.nbytes / src_disk.read_bandwidth
            * array.degrade_factor(plan.source)
            + src_disk.request_overhead
        )
        write_seconds = (plan.nbytes / dst_disk.write_bandwidth
                         + dst_disk.request_overhead)
        commit = (lambda s=stream, f=fmt_text, i=index,
                  d=plan.destination: store.commit_replica(s, f, i, d))
        tasks = (
            ResourceTask(
                kind="read", resource="disk", units=1,
                duration=read_seconds, category="disk",
                operator="rebuild", shard=plan.source,
            ),
            ResourceTask(
                kind="replicate", resource="disk", units=1,
                duration=write_seconds, category="disk",
                operator="rebuild", shard=plan.destination,
                on_done=commit,
            ),
        )
        jobs.append(BackgroundJob(
            name=f"rebuild:{stream}/{fmt_text}/{index}",
            stream=stream,
            kind="rebuild",
            tasks=tasks,
        ))
    return jobs
