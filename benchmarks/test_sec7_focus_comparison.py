"""Section 7: qualitative comparison against Focus.

Query-delay ratio r = 1 + alpha/f with alpha = 1/48: r = 3 at 1% frame
selectivity, 1.2 at 10%, 1.04 at 50%; ingest hardware favours VStore 2-3x.
"""

import pytest

from repro.analysis.focus import FocusComparison


def test_sec7_query_delay_ratio(benchmark, record):
    model = FocusComparison()

    def sweep():
        return {f: model.query_delay_ratio(f)
                for f in (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)}

    ratios = benchmark(sweep)
    lines = [f"{'selectivity':>12} {'r = delay(VStore)/delay(Focus)':>32}"]
    for f, r in ratios.items():
        lines.append(f"{f:>12.2f} {r:>32.2f}")
    record("Section 7 — Focus comparison", "\n".join(lines))

    assert ratios[0.01] == pytest.approx(1 + (1 / 48) / 0.01)
    assert ratios[0.10] == pytest.approx(1.21, abs=0.01)
    assert ratios[0.50] == pytest.approx(1.04, abs=0.01)
    values = list(ratios.values())
    assert values == sorted(values, reverse=True)


def test_sec7_ingest_hardware(benchmark, record):
    model = benchmark(FocusComparison)
    record(
        "Section 7 — ingest hardware",
        f"VStore transcoding per stream: ~${model.vstore_ingest_dollars}\n"
        f"Focus ingest GPU per stream:  ~${model.focus_ingest_dollars}\n"
        f"ratio: {model.ingest_cost_ratio():.1f}x",
    )
    assert 2.0 <= model.ingest_cost_ratio() <= 3.0
