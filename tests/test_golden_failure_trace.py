"""Golden trace for a fail -> degraded-read -> rebuild campaign.

The replicated-shard plane adds three behaviors whose exact interleaving
matters: a failed shard's reads reroute to surviving replicas, degraded
shards charge their slowdown factor, and every destroyed replica becomes
a background re-replication job contending with foreground queries.  A
changed tie-break anywhere in that machinery would reorder the trace, so
this test pins one small campaign byte-for-byte the same way
``test_golden_traces.py`` pins the healthy scheduler.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/test_golden_failure_trace.py \
        --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.obs.trace import validate_events
from repro.operators.library import default_library
from repro.query.scheduler import OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.storage.failures import FailureCampaign

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "trace_failure_campaign.json"

#: Shard 0 dies at t=2 (each destroyed replica becomes a class-1 rebuild
#: job) while shard 1 limps at 6x; queries arriving after the failure
#: route around the dead shard onto degraded survivors.  Both shards
#: return at t=30, past the last arrival, so the trailing recover events
#: extend the pinned makespan.
CAMPAIGN = "fail@2:0,degrade@2:1:6,recover@30:0,recover@30:1"

#: Two arrivals before the failure, two after it (degraded window).
SPECS = (
    {"query": "A", "dataset": "jackson", "accuracy": 0.9,
     "t0": 0.0, "t1": 16.0, "arrival": 0.0, "tenant": "ops"},
    {"query": "B", "dataset": "dashcam", "accuracy": 0.9,
     "t0": 0.0, "t1": 16.0, "arrival": 1.0, "tenant": "ops",
     "deadline": 12.0},
    {"query": "A", "dataset": "jackson", "accuracy": 0.8,
     "t0": 0.0, "t1": 16.0, "arrival": 3.0, "tenant": "forensics"},
    {"query": "B", "dataset": "dashcam", "accuracy": 0.9,
     "t0": 0.0, "t1": 8.0, "arrival": 5.0, "tenant": "forensics"},
)


@pytest.fixture()
def failure_store(tmp_path_factory):
    """A *fresh* store per run: rebuild commits persist new replica
    placements, so a reused store would have nothing left to fail."""

    def build():
        lib = default_library(names=("Diff", "S-NN", "NN", "Motion",
                                     "License", "OCR"))
        store = VStore(workdir=str(tmp_path_factory.mktemp("goldenfail")),
                       library=lib, shards=4, replication=2)
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        return store

    return build


def _round(value: float) -> float:
    return round(value, 9)


def _run_campaign(build_store, core: str = "heap"):
    """One canonical campaign run; returns (payload, raw trace events)."""
    store = build_store()
    ex = store.executor(
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(1),
        operator_pool=OperatorContextPool(2),
        core=core,
        trace=True,
    )
    campaign = FailureCampaign.parse(CAMPAIGN)
    store._admit_with_failures(ex, [dict(s) for s in SPECS], campaign)
    outcomes = ex.run()
    store.close()
    stats = ex.stats()
    payload = {
        "campaign": CAMPAIGN,
        "makespan": _round(stats.makespan),
        "events": [
            {
                "event": e["event"],
                "t": _round(e["t"]),
                "query": e["query"],
                "kind": e["kind"],
                "operator": e["operator"],
                "resource": e["resource"],
                "duration": _round(e["duration"]),
            }
            for e in ex.trace_events
        ],
        "queries": [
            {
                "label": o.session.label,
                "latency": _round(o.latency),
                "service": _round(o.service_seconds),
                "finished_at": _round(o.session.finished_at),
            }
            for o in outcomes
        ],
    }
    return payload, list(ex.trace_events)


def _canonical_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=1,
                       ensure_ascii=True) + "\n").encode("utf-8")


def test_campaign_trace_matches_golden(failure_store, request):
    payload, _ = _run_campaign(failure_store)
    data = _canonical_bytes(payload)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_PATH.write_bytes(data)
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden trace {GOLDEN_PATH}; generate it with "
        f"pytest tests/test_golden_failure_trace.py --update-golden"
    )
    assert GOLDEN_PATH.read_bytes() == data, (
        f"the failure-campaign trace drifted from {GOLDEN_PATH}; if the "
        f"change is intentional, regenerate with --update-golden and "
        f"review the diff"
    )


def test_campaign_trace_is_schema_valid(failure_store):
    _, events = _run_campaign(failure_store)
    validate_events(events)


def test_campaign_trace_tells_the_whole_story(failure_store):
    """fail, degraded reads, rebuild traffic, and recovery all appear."""
    payload, _ = _run_campaign(failure_store)
    kinds = {e["kind"] for e in payload["events"]}
    assert {"fail", "degrade", "recover", "replicate"} <= kinds
    # Rebuild jobs ran as background sessions alongside the queries.
    labels = [q["label"] for q in payload["queries"]]
    assert any(":rebuild:" in label for label in labels)
    assert sum(":rebuild:" not in label for label in labels) == 4
    # The trailing recover events pin the makespan at the campaign end.
    assert payload["makespan"] == pytest.approx(30.0)


def test_campaign_heap_replays_reference(failure_store):
    heap, _ = _run_campaign(failure_store, "heap")
    ref, _ = _run_campaign(failure_store, "reference")
    assert _canonical_bytes(heap) == _canonical_bytes(ref)
