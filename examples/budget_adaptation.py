#!/usr/bin/env python3
"""Elastic adaptation to resource budgets (Table 4 and Figure 13).

Run:  python examples/budget_adaptation.py

Part 1 shrinks the ingestion budget (CPU cores per stream) and shows VStore
cheapening coding speed steps while storage grows gently — the paper's
Table 4.  Part 2 imposes storage budgets and shows the erosion planner
picking decay factors, with overall operator speed decaying by age — the
paper's Figure 13.
"""

from repro import IngestBudget
from repro.core.config import derive_configuration
from repro.operators.library import default_library
from repro.units import DAY, TB, fmt_bytes


def ingest_budget_sweep(library) -> None:
    print("=== Ingestion budget sweep (Table 4) ===")
    baseline = derive_configuration(library)
    cores_needed = baseline.plan.ingest_cores
    print(f"unbudgeted ingest cost: {cores_needed:.2f} cores/stream\n")
    header = f"{'budget':>10} {'cores used':>11} {'storage/day':>12}  formats"
    print(header)
    for factor in (None, 0.8, 0.6, 0.45):
        budget = IngestBudget(None if factor is None
                              else max(0.3, cores_needed * factor))
        config = derive_configuration(library, ingest_budget=budget)
        label = "unlimited" if factor is None else f"{budget.cores:.2f}"
        codings = ", ".join(sf.fmt.coding.label
                            for sf in config.plan.formats)
        print(f"{label:>10} {config.plan.ingest_cores:>11.2f} "
              f"{fmt_bytes(config.plan.storage_bytes_per_second * DAY):>12}"
              f"  [{codings}]")
    print()


def storage_budget_sweep(library) -> None:
    print("=== Storage budget sweep (Figure 13) ===")
    free = derive_configuration(library, lifespan_days=10)
    unbounded = free.erosion.total_bytes
    print(f"10-day footprint without erosion: {fmt_bytes(unbounded)}\n")
    floor_cfg = derive_configuration(library, lifespan_days=10)
    for fraction in (1.1, 0.95, 0.9):
        budget = unbounded * fraction
        config = derive_configuration(library, lifespan_days=10,
                                      storage_budget_bytes=budget)
        erosion = config.erosion
        speeds = " ".join(f"{erosion.overall_speed[a]:.2f}"
                          for a in range(1, 11))
        print(f"budget {fmt_bytes(budget):>10}: k={erosion.k:.2f}  "
              f"total={fmt_bytes(erosion.total_bytes)}")
        print(f"    overall speed by age: {speeds}")
    print()


def main() -> None:
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    ingest_budget_sweep(library)
    storage_budget_sweep(library)


if __name__ == "__main__":
    main()
