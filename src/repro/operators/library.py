"""Operator library and consumers.

VStore assumes a pre-defined library of operators, each runnable at a
pre-defined set of accuracy levels (Section 2.2).  A *consumer* is one
``<operator, accuracy>`` tuple; the whole set of consumers drives the
backward derivation of configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import QueryError
from repro.operators.base import Operator
from repro.operators.color import ColorOperator
from repro.operators.contour import ContourOperator
from repro.operators.diff import DiffOperator
from repro.operators.license import LicenseOperator
from repro.operators.motion import MotionOperator
from repro.operators.nn import NNOperator
from repro.operators.ocr import OCROperator
from repro.operators.opflow import OpflowOperator
from repro.operators.snn import SNNOperator

#: Accuracy levels the admin declares for every operator (Section 6.1).
DEFAULT_ACCURACIES: Tuple[float, ...] = (0.95, 0.90, 0.80, 0.70)

#: Order in which Table 2 lists operators (used by Figure 12's sweep).
TABLE2_ORDER: Tuple[str, ...] = (
    "Diff", "S-NN", "NN", "Motion", "License", "OCR", "Opflow", "Color", "Contour",
)


@dataclass(frozen=True)
class Consumer:
    """One <operator, accuracy> tuple — a video consumer (Section 2.2)."""

    operator: str
    accuracy: float

    @property
    def label(self) -> str:
        return f"<{self.operator}, {self.accuracy:.2f}>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


class OperatorLibrary:
    """A registry of operators and their declared accuracy levels."""

    def __init__(self, accuracies: Sequence[float] = DEFAULT_ACCURACIES):
        self._ops: Dict[str, Operator] = {}
        self.accuracies: Tuple[float, ...] = tuple(accuracies)

    def register(self, op: Operator) -> None:
        """Add an operator; replacing an existing name is an error."""
        if op.name in self._ops:
            raise QueryError(f"operator already registered: {op.name!r}")
        self._ops[op.name] = op

    def get(self, name: str) -> Operator:
        try:
            return self._ops[name]
        except KeyError:
            known = ", ".join(sorted(self._ops))
            raise QueryError(
                f"unknown operator {name!r}; library holds: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._ops.values())

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def names(self) -> List[str]:
        return list(self._ops)

    def consumers(self, names: Sequence[str] = ()) -> List[Consumer]:
        """All <operator, accuracy> consumers for the given operators
        (default: every registered operator) at every declared accuracy."""
        selected = names or self.names
        return [
            Consumer(operator=name, accuracy=acc)
            for name in selected
            for acc in self.accuracies
        ]


def default_library(
    accuracies: Sequence[float] = DEFAULT_ACCURACIES,
    names: Sequence[str] = TABLE2_ORDER,
) -> OperatorLibrary:
    """The Table-2 library (optionally restricted to a subset of operators)."""
    factories = {
        "Diff": DiffOperator,
        "S-NN": SNNOperator,
        "NN": NNOperator,
        "Motion": MotionOperator,
        "License": LicenseOperator,
        "OCR": OCROperator,
        "Opflow": OpflowOperator,
        "Color": ColorOperator,
        "Contour": ContourOperator,
    }
    lib = OperatorLibrary(accuracies)
    for name in names:
        if name not in factories:
            raise QueryError(f"unknown operator name {name!r}")
        lib.register(factories[name]())
    return lib
