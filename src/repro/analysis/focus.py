"""Qualitative comparison against Focus (Section 7).

Focus runs the cheap NN at ingestion and only the full NN at query time;
VStore runs both at query time.  With frame selectivity f (the fraction of
frames the cheap NN passes) and speed ratio alpha between the full and
cheap NN, the query-delay ratio is

    r = 1 + alpha / f

and the ingestion-hardware comparison favours VStore's transcoders over
Focus's ingest GPUs (Section 7's $-per-stream argument).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Speed ratio between full NN and cheap NN in Focus's setup.
DEFAULT_ALPHA = 1.0 / 48.0


@dataclass(frozen=True)
class FocusComparison:
    """The Section 7 cost model."""

    alpha: float = DEFAULT_ALPHA
    #: Dollars of ingest hardware per stream (Section 7's estimates).
    vstore_ingest_dollars: float = 25.0  # transcoder farm per stream
    focus_ingest_dollars: float = 60.0  # ingest-GPU share per stream

    def query_delay_ratio(self, selectivity: float) -> float:
        """r = 1 + alpha/f: VStore's query delay relative to Focus."""
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1]: {selectivity}")
        return 1.0 + self.alpha / selectivity

    def ingest_cost_ratio(self) -> float:
        """Focus's ingest hardware cost relative to VStore's."""
        return self.focus_ingest_dollars / self.vstore_ingest_dollars

    def sweep(self, selectivities=(0.01, 0.10, 0.50)):
        """The paper's example points: r = 3, 1.2, 1.04."""
        return {f: self.query_delay_ratio(f) for f in selectivities}
