"""The six benchmark datasets (Section 6.1), as synthetic content models.

The paper uses jackson, miami, tucson (surveillance, queried with Query A)
and dashcam, park, airport (queried with Query B).  Each entry below mirrors
the qualitative description in the paper: dash-camera footage has intense
camera motion (which makes coding expensive — the 2.6 TB/day outlier of
Fig. 11b); surveillance streams range from heavy to light traffic.

All streams are ingested at 720p, 30 fps (the paper's ingestion format).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import KnobError
from repro.video.content import ContentModel, ContentParams


@dataclass(frozen=True)
class Dataset:
    """One named video stream and its content statistics."""

    name: str
    kind: str  # "surveillance" or "dashcam"
    description: str
    params: ContentParams

    def content(self) -> ContentModel:
        """A deterministic content model for this stream."""
        return ContentModel(self.name, self.params)


def _d(name: str, kind: str, description: str, **kw) -> Dataset:
    return Dataset(name, kind, description, ContentParams(**kw))


DATASETS: Dict[str, Dataset] = {
    d.name: d
    for d in (
        _d(
            "jackson",
            "surveillance",
            "Jackson Town Square surveillance camera; steady medium traffic.",
            arrival_rate=0.30,
            dwell_mean=5.0,
            dwell_min=0.8,
            size_mean=0.085,
            size_sigma=0.45,
            speed_mean=0.08,
            plate_fraction=0.55,
            person_fraction=0.25,
            camera_motion=0.0,
            activity_floor=0.03,
        ),
        _d(
            "miami",
            "surveillance",
            "Miami Beach crosswalk; heavy pedestrian and vehicle traffic.",
            arrival_rate=0.50,
            dwell_mean=4.0,
            dwell_min=0.6,
            size_mean=0.075,
            size_sigma=0.5,
            speed_mean=0.06,
            plate_fraction=0.45,
            person_fraction=0.55,
            camera_motion=0.0,
            activity_floor=0.05,
        ),
        _d(
            "tucson",
            "surveillance",
            "Tucson 4th Avenue; light-to-medium street traffic.",
            arrival_rate=0.20,
            dwell_mean=5.0,
            dwell_min=0.7,
            size_mean=0.09,
            size_sigma=0.4,
            speed_mean=0.09,
            plate_fraction=0.5,
            person_fraction=0.3,
            camera_motion=0.0,
            activity_floor=0.03,
        ),
        _d(
            "dashcam",
            "dashcam",
            "Dash camera driving through a parking lot; intense camera motion.",
            arrival_rate=0.50,
            dwell_mean=3.5,
            dwell_min=0.4,
            size_mean=0.16,
            size_sigma=0.5,
            speed_mean=0.16,
            plate_fraction=0.65,
            person_fraction=0.15,
            camera_motion=0.9,
            activity_floor=0.08,
        ),
        _d(
            "park",
            "surveillance",
            "Stationary camera over a parking lot; sparse slow traffic.",
            arrival_rate=0.12,
            dwell_mean=8.0,
            dwell_min=1.0,
            size_mean=0.11,
            size_sigma=0.4,
            speed_mean=0.04,
            plate_fraction=0.6,
            person_fraction=0.2,
            camera_motion=0.0,
            activity_floor=0.02,
        ),
        _d(
            "airport",
            "surveillance",
            "JAC airport parking-lot camera; light traffic, distant objects.",
            arrival_rate=0.15,
            dwell_mean=6.0,
            dwell_min=0.9,
            size_mean=0.07,
            size_sigma=0.45,
            speed_mean=0.05,
            plate_fraction=0.5,
            person_fraction=0.2,
            camera_motion=0.0,
            activity_floor=0.025,
        ),
    )
}

#: Datasets benchmarked with Query A (Diff + S-NN + NN) in the paper.
QUERY_A_DATASETS: Tuple[str, ...] = ("jackson", "miami", "tucson")
#: Datasets benchmarked with Query B (Motion + License + OCR).
QUERY_B_DATASETS: Tuple[str, ...] = ("dashcam", "park", "airport")


def get_dataset(name: str) -> Dataset:
    """Look up a dataset by name, raising a helpful error when unknown."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KnobError(f"unknown dataset {name!r}; known datasets: {known}") from None
