"""The VStore facade: configure / ingest / query / execute / age."""

import pytest

from repro.core.store import VStore
from repro.errors import ConfigurationError, QueryError
from repro.operators.library import default_library
from repro.units import DAY


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    workdir = str(tmp_path_factory.mktemp("vstore"))
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=workdir, library=lib) as s:
        s.configure()
        yield s


def test_configure_is_cached(store):
    a = store.configure()
    b = store.configure()
    assert a is b
    assert store.configure(force=True) is not a


def test_unconfigured_store_rejects_use(tmp_path):
    s = VStore()
    with pytest.raises(ConfigurationError):
        _ = s.configuration


def test_analytic_query(store):
    report = store.query("A", dataset="jackson", accuracy=0.9,
                         duration=3600.0)
    assert report.speed > 1.0
    assert report.scheme == "VStore"


def test_ingest_and_execute(store):
    store.ingest("jackson", n_segments=6)
    result = store.execute("A", dataset="jackson", accuracy=0.8,
                           t0=0.0, t1=48.0)
    assert result.video_seconds == 48.0
    assert result.compute_seconds > 0
    assert result.speed > 1.0
    # The cascade narrows: later stages touch no more segments.
    touched = [result.segments_per_stage[op] for op in ("Diff", "S-NN", "NN")]
    assert touched == sorted(touched, reverse=True)
    assert touched[0] == 6


def test_execution_beats_golden_only_scheme(store):
    """End to end through real storage: the derived SF set outruns
    consuming from the golden format (Figure 11a's mechanism)."""
    from repro.query.alternatives import one_to_n_scheme
    from repro.query.cascade import QUERY_A

    store.ingest("jackson", n_segments=4)
    engine = store.engine("jackson")
    vstore = engine.execute(QUERY_A, 0.8, store.segments, 0.0, 32.0)
    capped = engine.execute(QUERY_A, 0.8, store.segments, 0.0, 32.0,
                            scheme=one_to_n_scheme(store.configuration))
    assert vstore.speed >= capped.speed


def test_ingestion_report(store):
    report = store.ingestion_report("jackson")
    assert report.cores_required > 0
    assert report.bytes_per_day > 0


def test_age_executes_erosion(tmp_path):
    lib = default_library(names=("Motion", "License", "OCR"))
    with VStore(workdir=str(tmp_path / "w"), library=lib,
                lifespan_days=2) as s:
        config = s.configure()
        s.ingest("dashcam", n_segments=10)
        # Far in the future: everything is past the 2-day lifespan.
        deleted = s.age("dashcam", now_seconds=10 * DAY)
        assert deleted == 10 * len(config.storage_formats)


def test_execute_requires_workdir():
    s = VStore()
    s.configure()
    with pytest.raises(QueryError):
        s.execute("A", dataset="jackson", accuracy=0.9, t0=0.0, t1=8.0)


def test_empty_execute_range_rejected(store):
    with pytest.raises(QueryError):
        store.execute("A", dataset="jackson", accuracy=0.9, t0=8.0, t1=8.0)


def test_close_is_idempotent(tmp_path):
    s = VStore(workdir=str(tmp_path / "w"))
    s.close()
    s.close()  # second close must be a no-op, not an error
    assert s.closed
    with VStore(workdir=str(tmp_path / "w2")) as nested:
        nested.close()  # __exit__ after an explicit close is fine too
    assert nested.closed


def test_closed_store_rejects_use(tmp_path):
    from repro.errors import StorageError

    lib = default_library(names=("Diff", "S-NN", "NN"))
    s = VStore(workdir=str(tmp_path / "w"), library=lib)
    s.configure()
    s.ingest("jackson", n_segments=2)
    s.close()
    with pytest.raises(StorageError, match="closed"):
        s.engine("jackson")
    with pytest.raises(StorageError, match="closed"):
        s.execute("A", dataset="jackson", accuracy=0.9, t0=0.0, t1=8.0)
    with pytest.raises(StorageError, match="closed"):
        s.ingest("jackson", n_segments=1)
    with pytest.raises(StorageError, match="closed"):
        s.executor()
    with pytest.raises(StorageError, match="closed"):
        s.age("jackson", now_seconds=0.0)


def test_close_without_workdir_still_guards(tmp_path):
    from repro.errors import StorageError

    s = VStore()
    s.configure()
    s.close()
    s.close()
    with pytest.raises(StorageError, match="closed"):
        s.query("A", dataset="jackson", accuracy=0.9, duration=60.0)
