"""The always-on metrics registry.

Instruments first (log-bucket quantiles must be honest about their
±one-bucket resolution), then the cross-layer feeders: an ordinary
``execute_many`` must leave the store's registry describing the run —
and ``REPRO_OBS_METRICS=0`` must detach it without breaking anything.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.store import VStore
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Histogram,
    MetricsRegistry,
    metrics_enabled,
)
from repro.operators.library import default_library

#: One log bucket spans a factor of 10**(1/BUCKETS_PER_DECADE); a
#: quantile can be off by at most that factor.
BUCKET_FACTOR = 10.0 ** (1.0 / BUCKETS_PER_DECADE)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


def test_counter_rejects_negative_increment():
    c = Counter("n")
    c.inc(2.0)
    with pytest.raises(ValueError):
        c.inc(-1.0)
    assert c.value == 2.0


def test_histogram_quantiles_within_bucket_resolution():
    h = Histogram("lat")
    values = [0.01 * i for i in range(1, 101)]  # 0.01 .. 1.00
    for v in values:
        h.observe(v)
    assert h.count == 100
    assert h.min == pytest.approx(0.01)
    assert h.max == pytest.approx(1.00)
    # Bucket upper bounds overshoot by at most one bucket factor.
    for q, exact in ((0.50, 0.50), (0.95, 0.95), (0.99, 0.99)):
        got = h.quantile(q)
        assert exact <= got <= exact * BUCKET_FACTOR * 1.0001


def test_histogram_underflow_bucket_holds_zeroes():
    h = Histogram("waits")
    for _ in range(10):
        h.observe(0.0)
    h.observe(5.0)
    assert h.p50 == 0.0  # the zero majority pins the median at 0
    assert h.quantile(1.0) == pytest.approx(5.0)


def test_histogram_quantile_capped_at_observed_max():
    h = Histogram("one")
    h.observe(0.37)
    # A single sample: every quantile is that sample, not its bucket edge.
    assert h.p50 == pytest.approx(0.37)
    assert h.p99 == pytest.approx(0.37)


def test_histogram_quantile_zero_returns_min():
    """Regression: rank 0 matched the first occupied bucket immediately,
    so quantile(0.0) reported that bucket's *upper* bound instead of the
    smallest observation."""
    h = Histogram("lat")
    h.observe(0.011)  # sits just above its bucket's lower bound
    h.observe(0.9)
    assert h.quantile(0.0) == 0.011
    assert h.quantile(1.0) == pytest.approx(0.9)


def test_histogram_quantiles_clamped_to_min_and_max():
    h = Histogram("lat")
    h.observe(0.5)
    h.observe(0.50001)
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        got = h.quantile(q)
        assert h.min <= got <= h.max


def test_histogram_quantile_min_clamp_with_underflow_bucket():
    """Negative observations land in the underflow bucket (reported 0.0)
    but the q=0 quantile is the honest minimum, and no quantile escapes
    the observed range."""
    h = Histogram("delta")
    h.observe(-2.0)
    h.observe(-1.0)
    h.observe(3.0)
    assert h.quantile(0.0) == -2.0
    for q in (0.25, 0.5, 0.66):
        assert -2.0 <= h.quantile(q) <= 3.0
    assert h.quantile(1.0) == pytest.approx(3.0)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    ),
    q=st.floats(0.0, 1.0),
)
def test_histogram_quantile_clamp_property(values, q):
    """For any observation set and any quantile, the estimate never
    escapes [min, max]; q=0 is exactly the min and q=1 exactly the max."""
    h = Histogram("prop")
    for v in values:
        h.observe(v)
    assert h.min <= h.quantile(q) <= h.max
    assert h.quantile(0.0) == min(values)
    assert h.quantile(1.0) == max(values)


def test_histogram_bucket_boundary_indexing_is_stable():
    """Regression: ``ceil(log(v) / LOG_BASE)`` can flip a value sitting
    exactly on a bucket boundary into the adjacent bucket from float
    error in ``log``.  The nudge-and-verify index must satisfy the
    canonical bound function for every boundary value."""
    import math

    h = Histogram("edges")
    for k in range(-24, 25):
        v = h._bucket_upper(k)  # exactly on the boundary of bucket k
        idx = h._bucket_index(v)
        assert idx == k, f"boundary value {v!r} (k={k}) landed in {idx}"
        # And the invariant the exporter's bit-equality rests on:
        assert h._bucket_upper(idx - 1) < v <= h._bucket_upper(idx)


def test_histogram_bucket_index_matches_bounds_for_random_values():
    import random

    rng = random.Random(1234)
    h = Histogram("rand")
    for _ in range(500):
        v = 10.0 ** rng.uniform(-6, 6)
        idx = h._bucket_index(v)
        assert h._bucket_upper(idx - 1) < v <= h._bucket_upper(idx)


def test_registry_snapshot_is_deterministic_and_sorted():
    r = MetricsRegistry()
    r.gauge("z").set(1.0)
    r.gauge("a").set(2.0)
    r.counter("m").inc()
    r.histogram("h").observe(1.0)
    snap = r.snapshot()
    assert list(snap["gauges"]) == ["a", "z"]
    assert snap == r.snapshot()
    rows = r.rows()
    # Uniform key-set per row — ready for the columnar tier.
    assert len({tuple(sorted(row)) for row in rows}) == 1


def test_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_METRICS", raising=False)
    assert metrics_enabled()
    for off in ("0", "off", "no", "false", "OFF"):
        monkeypatch.setenv("REPRO_OBS_METRICS", off)
        assert not metrics_enabled()
    monkeypatch.setenv("REPRO_OBS_METRICS", "1")
    assert metrics_enabled()


# ---------------------------------------------------------------------------
# Cross-layer feeders, through the store facade
# ---------------------------------------------------------------------------


@pytest.fixture()
def small_store(tmp_path):
    lib = default_library(names=("Motion", "License", "OCR"))
    with VStore(workdir=str(tmp_path / "store"), library=lib) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        yield store


SPECS = [{"query": "B", "dataset": "jackson", "accuracy": 0.9,
          "t0": 0.0, "t1": 16.0} for _ in range(3)]


def test_execute_many_feeds_the_registry(small_store):
    small_store.execute_many([dict(s) for s in SPECS])
    snap = small_store.metrics.snapshot()
    assert snap["counters"]["executor.runs"] == 1
    assert snap["counters"]["executor.queries"] == 3
    assert snap["counters"]["executor.events"] > 0
    assert snap["gauges"]["executor.makespan_seconds"] > 0
    assert snap["histograms"]["query.latency_seconds"]["count"] == 3
    # The PR-8 honest-wall bugfix: plan/admit wall is recorded too.
    assert snap["histograms"]["executor.admit_wall_seconds"]["count"] == 1
    assert snap["histograms"]["executor.admit_wall_seconds"]["mean"] > 0
    assert snap["gauges"]["drift.samples"] == 3


def test_stats_expose_honest_total_wall(small_store):
    ex = small_store.executor()
    small_store._admit_specs(ex, [dict(s) for s in SPECS])
    ex.run()
    stats = ex.stats()
    assert stats.admit_wall_seconds > 0
    assert stats.total_wall_seconds == pytest.approx(
        stats.wall_seconds + stats.admit_wall_seconds
    )
    # events/s divides by the *total* wall — planning no longer hides.
    assert stats.events_per_second == pytest.approx(
        stats.events / stats.total_wall_seconds
    )


def test_env_gate_detaches_executors(small_store, monkeypatch):
    monkeypatch.setenv("REPRO_OBS_METRICS", "0")
    small_store.execute_many([dict(s) for s in SPECS])
    snap = small_store.metrics.snapshot()
    assert snap["counters"] == {}  # nothing was fed
    # The trace record is independent of the metrics gate.
    assert small_store.last_run is not None
    assert small_store.last_run.events


def test_registry_accumulates_across_runs(small_store):
    small_store.execute_many([dict(s) for s in SPECS])
    small_store.execute_many([dict(s) for s in SPECS])
    snap = small_store.metrics.snapshot()
    assert snap["counters"]["executor.runs"] == 2
    assert snap["counters"]["executor.queries"] == 6
    assert snap["histograms"]["query.latency_seconds"]["count"] == 6


def test_cache_and_disk_feeders(tmp_path):
    from repro.cache.plane import CacheConfig
    from repro.units import MB

    lib = default_library(names=("Motion", "License", "OCR"))
    cache = CacheConfig(frame_capacity_bytes=64 * MB,
                        result_capacity_bytes=16 * MB)
    with VStore(workdir=str(tmp_path / "store"), library=lib,
                cache_config=cache, shards=2) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.execute_many([dict(s) for s in SPECS])
        snap = store.metrics.snapshot()
    assert snap["gauges"]["disk.shards"] == 2
    assert "disk.shard1.read_seconds" in snap["gauges"]
    assert "cache.frames.hits" in snap["gauges"]
    assert "cache.single_flight_hits" in snap["gauges"]
