"""Query cascades and the analytic engine (Figure 11a)."""

import pytest

from repro.errors import QueryError
from repro.query.alternatives import (
    n_to_n_scheme,
    one_to_n_scheme,
    one_to_one_scheme,
    vstore_scheme,
)
from repro.query.cascade import (
    QUERY_A,
    QUERY_B,
    QueryCascade,
    cascade_for,
    stages_with_coverage,
)
from repro.query.engine import QueryEngine
from repro.profiler.coding_profiler import CodingProfiler


class TestCascades:
    def test_benchmark_queries_match_figure2(self):
        assert QUERY_A.operators == ("Diff", "S-NN", "NN")
        assert QUERY_B.operators == ("Motion", "License", "OCR")

    def test_cascade_lookup(self):
        assert cascade_for("A") is QUERY_A
        assert cascade_for("B") is QUERY_B
        with pytest.raises(QueryError):
            cascade_for("C")

    def test_empty_cascade_rejected(self):
        with pytest.raises(QueryError):
            QueryCascade("X", ())

    def test_coverage_is_cumulative_product(self):
        assert stages_with_coverage([0.5, 0.2, 0.9]) == [1.0, 0.5, 0.1]

    def test_coverage_clamps(self):
        assert stages_with_coverage([1.5, -0.1]) == [1.0, 1.0]


@pytest.fixture(scope="module")
def engine(configuration, query_library):
    return QueryEngine(configuration, query_library, "jackson")


@pytest.fixture(scope="module")
def engine_b(configuration, query_library):
    return QueryEngine(configuration, query_library, "dashcam")


class TestEstimation:
    def test_report_structure(self, engine):
        report = engine.estimate(QUERY_A, 0.9, 3600.0)
        assert len(report.stages) == 3
        assert report.stages[0].coverage == 1.0
        assert report.speed > 0
        assert report.total_seconds > 0

    def test_later_stages_cover_less(self, engine):
        report = engine.estimate(QUERY_A, 0.9, 3600.0)
        coverages = [s.coverage for s in report.stages]
        assert coverages == sorted(coverages, reverse=True)

    def test_lower_accuracy_is_faster(self, engine):
        """Figure 11a: accuracy/cost trade-off — lowering the target
        accelerates the query substantially.  A small local dip is allowed:
        a *more* accurate early filter can pass fewer false positives
        downstream, slightly offsetting its own higher cost."""
        speeds = [engine.estimate(QUERY_A, acc, 3600.0).speed
                  for acc in (0.95, 0.9, 0.8, 0.7)]
        for slower, faster in zip(speeds, speeds[1:]):
            assert faster >= slower * 0.85
        assert speeds[-1] > 3 * speeds[0]

    def test_vstore_beats_one_to_n(self, engine):
        """Figure 11a: 1->N caps every consumer at the golden decode speed;
        VStore's SF set avoids the retrieval bottleneck."""
        for acc in (0.9, 0.8):
            vs = engine.estimate(QUERY_A, acc, 3600.0)
            capped = engine.estimate(QUERY_A, acc, 3600.0,
                                     one_to_n_scheme(engine.config))
            assert vs.speed >= capped.speed

    def test_one_to_n_gap_grows_at_low_accuracy(self, engine):
        """The bottleneck matters more when consumers are fast (low
        accuracy): the paper reports 3-16x."""
        gap = {}
        for acc in (0.95, 0.7):
            vs = engine.estimate(QUERY_A, acc, 3600.0).speed
            ton = engine.estimate(QUERY_A, acc, 3600.0,
                                  one_to_n_scheme(engine.config)).speed
            gap[acc] = vs / ton
        assert gap[0.7] >= gap[0.95]
        assert gap[0.7] > 1.5

    def test_one_to_one_fixed_operating_point(self, engine):
        """1->1 consumes full fidelity: accuracy pinned at 1.0, one speed."""
        scheme = one_to_one_scheme(engine.config)
        a = engine.estimate(QUERY_A, 0.95, 3600.0, scheme)
        b = engine.estimate(QUERY_A, 0.7, 3600.0, scheme)
        assert a.speed == pytest.approx(b.speed)
        assert all(s.accuracy == 1.0 for s in a.stages)

    def test_vstore_beats_one_to_one(self, engine):
        """VStore accelerates queries by orders of magnitude over a store
        oblivious to consumers (two orders in the paper)."""
        vs = engine.estimate(QUERY_A, 0.7, 3600.0).speed
        fixed = engine.estimate(QUERY_A, 0.7, 3600.0,
                                one_to_one_scheme(engine.config)).speed
        assert vs > 10 * fixed

    def test_n_to_n_speed_matches_vstore(self, engine):
        """Figure 11a omits N->N because its speed equals VStore's; it only
        differs in storage/ingest cost."""
        scheme = n_to_n_scheme(engine.config, CodingProfiler(activity=0.35))
        for acc in (0.9, 0.7):
            vs = engine.estimate(QUERY_A, acc, 3600.0).speed
            nn = engine.estimate(QUERY_A, acc, 3600.0, scheme).speed
            assert nn == pytest.approx(vs, rel=0.35)

    def test_effective_speed_is_min(self, engine):
        report = engine.estimate(QUERY_A, 0.8, 3600.0)
        for s in report.stages:
            assert s.effective_speed == min(s.consumption_speed,
                                            s.retrieval_speed)

    def test_query_b_on_dashcam(self, engine_b):
        report = engine_b.estimate(QUERY_B, 0.9, 3600.0)
        assert report.speed > 0
        assert report.dataset == "dashcam"
