"""Signal operators: binary per-frame labels from a scalar scene signal.

Diff, Motion and Opflow do not localize objects; they threshold a scalar
measure of scene change.  The measured signal at fidelity f is the true
signal with contributions attenuated for objects the fidelity can no longer
resolve, and the label is probabilistic around the threshold with a noise
scale that grows as image quality drops:

    P(label=1 | frame) = sigmoid((signal_f - threshold) / noise(f))

At the ingest fidelity the noise scale is tiny and the measured signal is
the true signal, so labels equal ground truth and F1 is 1.0.
"""

from __future__ import annotations

import numpy as np

from repro.operators.accuracy import Confusion
from repro.operators.base import (
    Operator,
    QUALITY_DETAIL,
    logistic,
    propagation_map,
)
from repro.video.content import ClipTruth
from repro.video.fidelity import Fidelity, RESOLUTIONS


class SignalOperator(Operator):
    """Base class for Diff/Motion/Opflow-style frame labelers."""

    #: Label threshold on the scalar signal.
    threshold: float = 0.06
    #: Noise scale at best quality (keeps ingest-fidelity labels crisp).
    noise_floor: float = 5.0e-4
    #: Additional noise at the poorest quality.
    quality_noise: float = 0.02
    #: Sensitivity of the noise to lost detail (exponent).
    quality_alpha: float = 1.0
    #: Noise per unit of resolution shrink: a 60x60 frame quantizes the
    #: measured signal far more coarsely than the 720p original.
    res_noise: float = 1.0e-3
    #: Working point (log2 px of object height) below which an object stops
    #: contributing to the measured signal.
    detect_theta: float = 2.0
    detect_width: float = 0.6
    #: Weight of camera-induced activity in the signal.
    camera_weight: float = 1.0
    #: Decay rate (per second of hold gap) of a held label's confidence:
    #: the scene keeps evolving after the sample, so a stale label drifts
    #: toward a coin flip.  This is where sparse sampling costs accuracy.
    hold_decay: float = 0.3

    # -- signal model -------------------------------------------------------------

    def object_contribution(self, clip: ClipTruth) -> np.ndarray:
        """Per-track signal contribution when fully resolved (nt,)."""
        if not clip.tracks:
            return np.zeros(0)
        return np.array(
            [t.size * min(1.0, t.speed / 0.05) for t in clip.tracks]
        )

    def resolve_weight(self, clip: ClipTruth, fidelity: Fidelity) -> np.ndarray:
        """How well each track is resolved at ``fidelity`` (nt,), in [0, 1],
        normalized to 1 at the ingest fidelity."""
        if not clip.tracks:
            return np.zeros(0)

        def weight(res_name: str, quality: str) -> np.ndarray:
            res_h = RESOLUTIONS[res_name][1]
            detail = QUALITY_DETAIL[quality] ** (self.quality_alpha * 0.5)
            sizes = np.array([t.size for t in clip.tracks])
            eff = np.maximum(sizes * res_h * detail, 1e-6)
            return logistic((np.log2(eff) - self.detect_theta) / self.detect_width)

        full = weight("720p", "best")
        now = weight(fidelity.resolution, fidelity.quality)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(full > 0, np.minimum(1.0, now / full), 0.0)

    def signal(self, clip: ClipTruth, fidelity: Fidelity) -> np.ndarray:
        """Measured per-frame signal at ``fidelity`` (n,)."""
        base = self.camera_weight * _camera_activity(clip)
        if not clip.tracks:
            return base
        contribution = self.object_contribution(clip)
        weights = self.resolve_weight(clip, fidelity)
        # Only objects that are both inside the cropped view and in the
        # moving phase of their duty cycle change pixels frame to frame.
        active = clip.in_crop(fidelity.crop) & clip.moving
        per_frame = (contribution * weights)[:, None] * active
        return base + per_frame.sum(axis=0)

    def true_signal(self, clip: ClipTruth) -> np.ndarray:
        """The signal at the ingest fidelity (full crop, full detail)."""
        return self.signal(clip, self.ingest_fidelity)

    def noise_scale(self, fidelity: Fidelity) -> float:
        lost = 1.0 - QUALITY_DETAIL[fidelity.quality]
        res_h = RESOLUTIONS[fidelity.resolution][1]
        return (
            self.noise_floor
            + self.quality_noise * lost**self.quality_alpha
            + self.res_noise * (720.0 / res_h - 1.0)
        )

    def label_probability(self, clip: ClipTruth, fidelity: Fidelity) -> np.ndarray:
        """P(positive label) per frame at ``fidelity`` (n,)."""
        sig = self.signal(clip, fidelity)
        return logistic((sig - self.threshold) / self.noise_scale(fidelity))

    # -- scoring --------------------------------------------------------------------

    def _held_probability(self, clip: ClipTruth,
                          fidelity: Fidelity) -> np.ndarray:
        """Per-frame positive-label probability after label hold: the
        covering sample's label, decayed toward 0.5 with the hold gap."""
        p = self.label_probability(clip, fidelity)
        consumed = clip.consumed_index(fidelity)
        covering = propagation_map(clip.n_frames, consumed)
        gaps = (np.arange(clip.n_frames) - covering) / float(clip.fps)
        confidence = np.exp(-gaps * self.hold_decay)
        return 0.5 + (p[covering] - 0.5) * confidence

    def expected_confusion(self, clip: ClipTruth, fidelity: Fidelity) -> Confusion:
        truth = self.true_signal(clip) > self.threshold
        p_held = self._held_probability(clip, fidelity)
        tp = float(p_held[truth].sum())
        fn = float((1.0 - p_held[truth]).sum())
        fp = float(p_held[~truth].sum())
        return Confusion(tp, fp, fn)

    def expected_positive_fraction(self, clip: ClipTruth,
                                   fidelity: Fidelity) -> float:
        """Fraction of frames labeled positive (cascade selectivity)."""
        return float(np.mean(self._held_probability(clip, fidelity)))

    # -- stochastic execution ----------------------------------------------------------

    def run(self, clip: ClipTruth, fidelity: Fidelity,
            rng: np.random.Generator) -> np.ndarray:
        """Sample concrete binary labels for the consumed frames."""
        consumed = clip.consumed_index(fidelity)
        p = self.label_probability(clip, fidelity)[consumed]
        return rng.random(len(consumed)) < p


def _camera_activity(clip: ClipTruth) -> np.ndarray:
    """Camera-induced component of the clip's per-frame activity."""
    if not clip.tracks:
        return clip.activity.copy()
    boost = (
        np.array([t.size**2 * t.speed * 25.0 for t in clip.tracks])[:, None]
        * clip.moving
    ).sum(axis=0)
    return np.maximum(0.0, clip.activity - boost)
