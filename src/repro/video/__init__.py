"""Video data model: knobs, formats, synthetic content, datasets.

This subpackage defines the vocabulary the rest of the system speaks:

* :mod:`repro.video.fidelity` — the four fidelity knobs of Table 1 and the
  richer-than partial order over fidelity options;
* :mod:`repro.video.coding` — the three coding knobs (speed step, keyframe
  interval, coding bypass);
* :mod:`repro.video.format` — storage formats ``SF<f, c>`` and consumption
  formats ``CF<f>``;
* :mod:`repro.video.content` — the synthetic scene/ground-truth model that
  substitutes for the paper's real video datasets;
* :mod:`repro.video.datasets` — the six benchmark streams (jackson, miami,
  tucson, dashcam, park, airport);
* :mod:`repro.video.segment` — 8-second segments, the storage unit;
* :mod:`repro.video.render` — optional pixel rendering of synthetic frames.
"""

from repro.video.coding import (
    Coding,
    KEYFRAME_INTERVALS,
    RAW,
    SPEED_STEPS,
    coding_space,
)
from repro.video.content import ContentModel, FrameTruth, Track
from repro.video.datasets import DATASETS, Dataset, get_dataset
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTIONS,
    SAMPLING_RATES,
    fidelity_space,
    knobwise_max,
)
from repro.video.format import ConsumptionFormat, StorageFormat
from repro.video.segment import Segment, segments_for_range

__all__ = [
    "Coding",
    "ConsumptionFormat",
    "ContentModel",
    "CROP_FACTORS",
    "Dataset",
    "DATASETS",
    "Fidelity",
    "fidelity_space",
    "FrameTruth",
    "get_dataset",
    "KEYFRAME_INTERVALS",
    "knobwise_max",
    "QUALITIES",
    "RAW",
    "RESOLUTIONS",
    "SAMPLING_RATES",
    "Segment",
    "segments_for_range",
    "SPEED_STEPS",
    "StorageFormat",
    "Track",
    "coding_space",
]
