"""Section 6.4 (storage-format configuration overhead):

* heuristic-based selection finds the same storage formats as exhaustive
  enumeration, orders of magnitude faster;
* memoization covers most formats examined during coalescing (92% in the
  paper);
* distance-based selection runs with less profiling but produces a more
  expensive SF set (2.2x storage in the paper).
"""

import time

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler


def _decisions(library, accuracies):
    planner = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    return planner.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in accuracies]
    )


def test_heuristic_equals_exhaustive(benchmark, record, full_library):
    decisions = _decisions(full_library, (0.95, 0.8))

    def run_heuristic():
        return StorageFormatPlanner(
            CodingProfiler(activity=0.6)).heuristic_coalesce(decisions)

    heuristic = benchmark.pedantic(run_heuristic, rounds=1, iterations=1)

    t0 = time.perf_counter()
    exhaustive = StorageFormatPlanner(
        CodingProfiler(activity=0.6)).exhaustive(decisions)
    exhaustive_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_heuristic()
    heuristic_wall = time.perf_counter() - t0

    record(
        "Section 6.4 — heuristic vs exhaustive",
        f"heuristic:  {sorted(sf.label for sf in heuristic.formats)}\n"
        f"exhaustive: {sorted(sf.label for sf in exhaustive.formats)}\n"
        f"wall time: heuristic {heuristic_wall * 1e3:.0f} ms, "
        f"exhaustive {exhaustive_wall * 1e3:.0f} ms",
    )
    assert (sorted(sf.label for sf in heuristic.formats)
            == sorted(sf.label for sf in exhaustive.formats))


def test_memoization_dominates(benchmark, record, full_library):
    decisions = _decisions(full_library, (0.95, 0.9, 0.8, 0.7))

    def run():
        profiler = CodingProfiler(activity=0.6)
        StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
        return profiler

    profiler = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = profiler.stats
    record(
        "Section 6.4 — memoization",
        f"profiling runs: {stats.runs}\n"
        f"memoized reuse: {stats.memo_hits} profiler-memo + "
        f"{stats.adequacy_hits} adequacy-cache ({stats.reuse_rate:.1%})\n"
        f"of the 15,600 possible storage formats, "
        f"{stats.runs} were profiled "
        f"({stats.runs / 15600:.1%})",
    )
    # The paper: 92% of examined formats were already memoized, and only
    # ~3% of the whole SF space is ever profiled.  The incremental planner
    # examines formats fewer times overall, and reuse lands across two
    # caches (profiler memo and planner adequacy verdicts).
    assert stats.reuse_rate > 0.8
    assert stats.runs < 0.1 * 15600


def test_distance_based_tradeoff(benchmark, record, full_library):
    decisions = _decisions(full_library, (0.95, 0.9, 0.8, 0.7))

    heuristic_profiler = CodingProfiler(activity=0.6)
    heuristic = StorageFormatPlanner(
        heuristic_profiler).heuristic_coalesce(decisions)

    def run_distance():
        profiler = CodingProfiler(activity=0.6)
        plan = StorageFormatPlanner(profiler).distance_coalesce(
            decisions, target_count=len(heuristic.formats))
        return plan, profiler

    distance, distance_profiler = benchmark.pedantic(
        run_distance, rounds=1, iterations=1)

    record(
        "Section 6.4 — distance-based selection",
        f"heuristic storage: {heuristic.storage_bytes_per_second:.0f} B/s "
        f"({heuristic_profiler.stats.runs} profiling runs)\n"
        f"distance storage:  {distance.storage_bytes_per_second:.0f} B/s "
        f"({distance_profiler.stats.runs} profiling runs)\n"
        f"storage ratio: "
        f"{distance.storage_bytes_per_second / heuristic.storage_bytes_per_second:.2f}x",
    )
    # Cheaper to run...
    assert distance_profiler.stats.runs < heuristic_profiler.stats.runs
    # ...but never better storage (2.2x worse in the paper).
    assert (distance.storage_bytes_per_second
            >= heuristic.storage_bytes_per_second * (1 - 1e-9))
