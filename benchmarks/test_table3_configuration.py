"""Table 3: the automatically derived configuration of video formats —
all consumption formats (6 operators x 4 accuracies) and the coalesced
storage-format set with the golden format.
"""

from repro.analysis.tables import format_configuration_table
from repro.core.config import derive_configuration
from repro.profiler.coding_profiler import CodingProfiler
from repro.units import fmt_speed
from repro.retrieval.speed import retrieval_speed


def test_table3_derivation(benchmark, record, library):
    config = benchmark.pedantic(
        lambda: derive_configuration(library), rounds=1, iterations=1
    )

    record("Table 3 — derived configuration",
           format_configuration_table(config))

    profiler = CodingProfiler(activity=0.45)
    lines = [f"{'storage format':>40} {'KB/s':>8} {'retrieval':>10} "
             f"{'consumers':>9}"]
    for sf in config.plan.formats:
        p = profiler.profile(sf.fmt)
        lines.append(
            f"{sf.label + (' (golden)' if sf.golden else ''):>40} "
            f"{p.bytes_per_second / 1024:>8.0f} "
            f"{fmt_speed(p.base_retrieval_speed):>10} "
            f"{len(sf.demands):>9}"
        )
    record("Table 3b — storage formats", "\n".join(lines))

    # Structural checks mirroring the paper's table.
    assert len(config.consumers) == 24
    assert 10 <= config.unique_cf_count <= 24  # paper: 21 unique CFs
    assert 2 <= len(config.plan.formats) <= 10  # paper: 4 SFs
    assert config.plan.golden.golden
    # Requirements R1/R2 documented in the table hold by construction:
    for consumer in config.consumers:
        decision = config.decision_for(consumer)
        sf = config.storage_plan_for(consumer)
        assert sf.fidelity.richer_equal(decision.fidelity)
        # Retrieval never undercuts consumption unless even raw frames
        # cannot keep up with the consumer.
        speed = retrieval_speed(sf.fmt, decision.fidelity.sampling)
        if decision.consumption_speed > speed:
            from repro.video.format import StorageFormat
            from repro.video.coding import RAW
            own_raw = retrieval_speed(
                StorageFormat(decision.fidelity, RAW),
                decision.fidelity.sampling,
            )
            assert own_raw < decision.consumption_speed


def test_table3_knob_scale(benchmark, record, configuration):
    benchmark(lambda: configuration.knob_count)
    lines = [
        f"consumers:        {len(configuration.consumers)}",
        f"unique CFs:       {configuration.unique_cf_count}",
        f"storage formats:  {len(configuration.plan.formats)}",
        f"knobs configured: {configuration.knob_count}",
    ]
    record("Table 3 — scale", "\n".join(lines))
    assert configuration.knob_count > 50  # the paper's 109-knob scale
