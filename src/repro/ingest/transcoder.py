"""Transcoder: one stream's fan-out into its storage formats.

The paper creates one FFmpeg instance per ingested stream (Section 5);
this class plays that role, wrapping an :class:`~repro.codec.Encoder` and
producing one encoded segment per storage format per 8-second slice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.clock import SimClock
from repro.codec.encoder import EncodedSegment, Encoder
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.errors import BudgetError
from repro.ingest.budget import IngestBudget, cores_required
from repro.video.format import StorageFormat
from repro.video.segment import Segment


class Transcoder:
    """Transcodes one stream's segments into a set of storage formats."""

    def __init__(
        self,
        formats: Sequence[StorageFormat],
        codec: CodecModel = DEFAULT_CODEC,
        clock: Optional[SimClock] = None,
        budget: IngestBudget = IngestBudget(),
    ):
        self.formats = list(formats)
        self.codec = codec
        self.clock = clock or SimClock()
        self.encoder = Encoder(codec, self.clock)
        if not budget.allows(self.formats, codec):
            raise BudgetError(
                f"storage formats need {cores_required(self.formats, codec):.2f} "
                f"cores, over the {budget.cores}-core ingestion budget"
            )
        self.budget = budget

    @property
    def cores_required(self) -> float:
        """Cores needed to keep up with the live stream."""
        return cores_required(self.formats, self.codec)

    @property
    def cpu_utilization_percent(self) -> float:
        """Transcoding CPU usage as the paper's Figure 11c reports it."""
        return self.cores_required * 100.0

    def transcode(
        self, segment: Segment, activity: float, materialize: bool = False
    ) -> List[EncodedSegment]:
        """Produce one stored version of ``segment`` per storage format."""
        return [
            self.encoder.encode(segment, fmt, activity, materialize)
            for fmt in self.formats
        ]
