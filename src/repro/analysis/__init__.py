"""Analysis helpers: the Focus comparison model and table formatting."""

from repro.analysis.cache import (
    WarmColdComparison,
    format_cache_table,
    format_warm_cold_table,
)
from repro.analysis.concurrency import (
    ConcurrencyReport,
    QueryLatencyRow,
    concurrency_report,
    format_concurrency_table,
    jain_index,
)
from repro.analysis.drift import (
    DriftRegretReport,
    drift_regret_report,
    format_drift_table,
    retrieval_seconds,
)
from repro.analysis.focus import FocusComparison
from repro.analysis.sharding import (
    ShardRow,
    ShardingReport,
    format_sharding_table,
    sharding_report,
)
from repro.analysis.sweeps import (
    budget_sweep_series,
    erosion_series,
    keyframe_series,
    operator_scaling_series,
    query_speed_series,
    speed_step_series,
)
from repro.analysis.tables import (
    format_configuration_table,
    format_erosion_table,
    format_profiling_summary_table,
    format_query_speed_table,
)

__all__ = [
    "ConcurrencyReport",
    "DriftRegretReport",
    "drift_regret_report",
    "format_drift_table",
    "retrieval_seconds",
    "WarmColdComparison",
    "format_cache_table",
    "format_warm_cold_table",
    "FocusComparison",
    "QueryLatencyRow",
    "ShardRow",
    "ShardingReport",
    "concurrency_report",
    "format_concurrency_table",
    "format_sharding_table",
    "sharding_report",
    "jain_index",
    "budget_sweep_series",
    "erosion_series",
    "keyframe_series",
    "operator_scaling_series",
    "query_speed_series",
    "speed_step_series",
    "format_configuration_table",
    "format_erosion_table",
    "format_profiling_summary_table",
    "format_query_speed_table",
]
