"""Motion: background-subtraction motion detector (OpenALPR front filter).

Motion maintains a background model and flags frames containing moving
foreground.  Background subtraction is robust to compression noise (the
model absorbs it) and works at tiny resolutions — the paper's derived
configuration gives Motion ``bad``-quality 144p/180p inputs even at 0.9
accuracy.  Its main fidelity sensitivities are the crop factor (objects
outside the cropped view are lost) and very low resolutions where small
objects no longer cover any pixels.
"""

from __future__ import annotations

import numpy as np

from repro.operators.signal_op import SignalOperator
from repro.video.content import ClipTruth


class MotionOperator(SignalOperator):
    """Motion detector using background subtraction [OpenALPR]."""

    name = "Motion"
    platform = "cpu"

    # Cost: background model update + morphology, linear in pixels.
    cost_base = 1.2e-5
    cost_per_mp = 7.5e-4
    cost_gamma = 1.0

    # Signal: foreground area of *moving* objects; camera shake contributes
    # weakly because the background model partially absorbs it.
    threshold = 0.06
    noise_floor = 5.0e-4
    quality_noise = 0.008  # background model absorbs compression noise
    quality_alpha = 1.0
    detect_theta = 2.1
    detect_width = 0.55
    camera_weight = 0.2

    def object_contribution(self, clip: ClipTruth) -> np.ndarray:
        """Foreground area, gated on the object actually moving."""
        if not clip.tracks:
            return np.zeros(0)
        return np.array(
            [t.size * min(1.0, t.speed / 0.05) for t in clip.tracks]
        )
