"""Sharded-storage analysis: per-shard occupancy, utilization, imbalance.

The sharded disk array (:mod:`repro.storage.sharding`) tracks what every
shard stores and how many simulated seconds it spent serving reads, writes
and migrations; the concurrent executor additionally reports per-shard
channel-pool busy time.  This module folds both into the report a store
operator reads — how even the placement is, how busy each spindle got, and
how much parallel-retrieval speedup the sharding actually delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.query.scheduler import ExecutorStats
from repro.storage.segment_store import SegmentStore
from repro.units import fmt_bytes


@dataclass(frozen=True)
class ShardRow:
    """One shard's occupancy and simulated service time."""

    shard: int
    stored_bytes: float
    stored_keys: int
    busy_read_seconds: float
    busy_write_seconds: float
    busy_migrate_seconds: float
    #: Executor channel-pool busy seconds ("disk:i" pool), when a run's
    #: stats were supplied; None otherwise.
    pool_busy_seconds: Optional[float] = None
    pool_utilization: Optional[float] = None

    @property
    def busy_seconds(self) -> float:
        return (self.busy_read_seconds + self.busy_write_seconds
                + self.busy_migrate_seconds)


@dataclass(frozen=True)
class ShardingReport:
    """Aggregate view of a sharded store (optionally: of one run on it)."""

    placement: str
    n_shards: int
    rows: Tuple[ShardRow, ...]
    makespan: Optional[float] = None  # the run's simulated wall time

    @property
    def total_bytes(self) -> float:
        return sum(r.stored_bytes for r in self.rows)

    @property
    def byte_imbalance(self) -> float:
        """Max-minus-min stored bytes across shards (0 = perfectly even)."""
        loads = [r.stored_bytes for r in self.rows]
        return max(loads) - min(loads) if loads else 0.0

    @property
    def imbalance_ratio(self) -> float:
        """Max shard load over the mean load (1.0 = perfectly even)."""
        total = self.total_bytes
        if total <= 0 or not self.rows:
            return 1.0
        return max(r.stored_bytes for r in self.rows) / (total / len(self.rows))

    @property
    def retrieval_speedup(self) -> Optional[float]:
        """Achieved parallel-retrieval speedup over a one-shard array.

        The run's disk-pool busy seconds summed across shards, over the
        busiest single shard — the factor by which sharding compressed
        the retrieval-bound part of the run.  None without run stats or
        when no disk retrieval ran.
        """
        busy = [r.pool_busy_seconds for r in self.rows
                if r.pool_busy_seconds is not None]
        if not busy or max(busy) <= 0:
            return None
        return sum(busy) / max(busy)


def sharding_report(
    store: SegmentStore, stats: Optional[ExecutorStats] = None
) -> ShardingReport:
    """Build the per-shard report for one (possibly unsharded) store."""
    array = store.array
    rows: List[ShardRow] = []
    if array is None:
        rows.append(ShardRow(shard=0, stored_bytes=float(store.total_bytes()),
                             stored_keys=sum(1 for _ in store.kv.keys()),
                             busy_read_seconds=0.0, busy_write_seconds=0.0,
                             busy_migrate_seconds=0.0))
        return ShardingReport(placement="none", n_shards=1, rows=tuple(rows),
                              makespan=stats.makespan if stats else None)
    shard_bytes = array.shard_bytes
    shard_keys = array.shard_keys
    for i in range(array.n_shards):
        pool_busy = pool_util = None
        if stats is not None:
            pool = "disk" if array.n_shards == 1 else f"disk:{i}"
            if pool in stats.busy_seconds:
                pool_busy = stats.busy_seconds[pool]
                pool_util = stats.utilization(pool)
        rows.append(ShardRow(
            shard=i,
            stored_bytes=shard_bytes[i],
            stored_keys=shard_keys[i],
            busy_read_seconds=array.busy_read_seconds[i],
            busy_write_seconds=array.busy_write_seconds[i],
            busy_migrate_seconds=array.busy_migrate_seconds[i],
            pool_busy_seconds=pool_busy,
            pool_utilization=pool_util,
        ))
    return ShardingReport(
        placement=array.placement.name,
        n_shards=array.n_shards,
        rows=tuple(rows),
        makespan=stats.makespan if stats else None,
    )


def format_sharding_table(report: ShardingReport) -> str:
    """Render the per-shard report the way the paper renders its tables."""
    lines: List[str] = []
    lines.append(
        f"Sharded storage: {report.n_shards} shards, "
        f"placement={report.placement}, {fmt_bytes(report.total_bytes)} "
        f"stored, imbalance {report.imbalance_ratio:.2f}x "
        f"(spread {fmt_bytes(report.byte_imbalance)})"
    )
    header = (f"{'shard':>5} {'stored':>10} {'keys':>6} {'read':>9} "
              f"{'write':>9} {'migrate':>9} {'pool busy':>10} {'util':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in report.rows:
        busy = "--" if r.pool_busy_seconds is None else f"{r.pool_busy_seconds:.3f}s"
        util = "--" if r.pool_utilization is None else f"{r.pool_utilization:.0%}"
        lines.append(
            f"{r.shard:>5} {fmt_bytes(r.stored_bytes):>10} {r.stored_keys:>6} "
            f"{r.busy_read_seconds:>8.3f}s {r.busy_write_seconds:>8.3f}s "
            f"{r.busy_migrate_seconds:>8.3f}s {busy:>10} {util:>6}"
        )
    speedup = report.retrieval_speedup
    if speedup is not None:
        lines.append(f"parallel retrieval speedup: {speedup:.2f}x "
                     f"over a single shard")
    return "\n".join(lines)
