"""Multi-stream integration: one configuration, several cameras."""

import pytest

from repro.core.store import VStore
from repro.operators.library import default_library


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    lib = default_library(names=("Motion", "License", "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp("fleet")),
                library=lib) as s:
        s.configure()
        yield s


def test_unified_configuration_serves_all_streams(store):
    """The paper derives one unified SF set for all operators and videos;
    every stream ingests into the same formats."""
    store.ingest("dashcam", n_segments=3)
    store.ingest("park", n_segments=3)
    formats = store.configuration.storage_formats
    for dataset in ("dashcam", "park"):
        for fmt in formats:
            assert store.segments.indices(dataset, fmt) == [0, 1, 2]


def test_streams_accounted_separately(store):
    store.ingest("airport", n_segments=2)
    assert store.segments.footprint("airport") > 0
    assert store.segments.footprint("park") > 0
    total = sum(
        store.segments.footprint(d) for d in ("dashcam", "park", "airport")
    )
    assert total == store.segments.total_bytes()


def test_queries_run_per_stream(store):
    a = store.execute("B", dataset="dashcam", accuracy=0.8, t0=0.0, t1=24.0)
    b = store.execute("B", dataset="park", accuracy=0.8, t0=0.0, t1=24.0)
    assert a.video_seconds == b.video_seconds == 24.0
    # Content differs, so outcomes differ.
    assert (a.positives_per_stage != b.positives_per_stage
            or a.compute_seconds != b.compute_seconds)


def test_dashcam_segments_bigger_than_park(store):
    """Motion inflates encoded segment sizes (the Fig. 11b outlier), stream
    by stream inside one store."""
    encoded = [f for f in store.configuration.storage_formats if not f.is_raw]
    assert encoded
    fmt = max(encoded, key=lambda f: f.fidelity.pixels)
    dash = store.segments.meta("dashcam", fmt, 0).size_bytes
    park = store.segments.meta("park", fmt, 0).size_bytes
    assert dash > park
