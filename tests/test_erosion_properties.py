"""Property-based tests for the erosion planner (Section 4.4).

Hypothesis drives the decay factor and the storage budget through their
whole domains; the planner must uphold three invariants everywhere:

* **budget respected** — ``plan(budget)`` never returns a plan whose
  steady-state footprint exceeds the budget (when the budget is feasible);
* **monotone in k** — a harsher decay factor never *undeletes*: every
  per-(age, format) cumulative fraction, the achieved overall speed, and
  the total footprint move monotonically with k;
* **bytes conserved** — residual plus deleted bytes always reconstruct
  the no-decay footprint, for any k (deletion moves bytes, never loses
  accounting).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner, power_law_target
from repro.errors import ErosionError
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.units import DAY


@pytest.fixture(scope="module")
def planner(library):
    cp = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    decisions = cp.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in (0.95, 0.9, 0.8, 0.7)]
    )
    profiler = CodingProfiler(activity=0.6)
    plan = StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    return ErosionPlanner(plan.formats, rates, lifespan_days=10)


# Planning is a couple of binary searches per age; keep the example count
# friendly to the tier-1 wall clock.
_SETTINGS = settings(max_examples=20, deadline=None)


@_SETTINGS
@given(fraction=st.floats(min_value=0.01, max_value=0.99))
def test_feasible_budget_is_respected(planner, fraction):
    unbounded = planner.plan(None).total_bytes
    floor = planner.plan_for_k(16.0).total_bytes
    budget = floor + fraction * (unbounded - floor)
    plan = planner.plan(budget)
    assert plan.total_bytes <= budget * (1 + 1e-12)
    for (age, _), frac in plan.fractions.items():
        assert 0.0 <= frac <= 1.0
        assert 1 <= age <= planner.lifespan_days


@_SETTINGS
@given(k1=st.floats(min_value=0.0, max_value=16.0),
       k2=st.floats(min_value=0.0, max_value=16.0))
def test_plans_monotone_in_k(planner, k1, k2):
    if k1 > k2:
        k1, k2 = k2, k1
    gentle, harsh = planner.plan_for_k(k1), planner.plan_for_k(k2)
    assert harsh.total_bytes <= gentle.total_bytes + 1e-6
    for key, frac in gentle.fractions.items():
        assert harsh.fractions[key] >= frac - 1e-6
    for age in range(1, planner.lifespan_days + 1):
        assert harsh.overall_speed[age] <= gentle.overall_speed[age] + 1e-6


@_SETTINGS
@given(k=st.floats(min_value=0.0, max_value=16.0))
def test_total_bytes_conserved(planner, k):
    plan = planner.plan_for_k(k)
    day_bytes = {label: planner.bytes_per_second[label] * DAY
                 for label in plan.labels}
    full = sum(day_bytes.values()) * planner.lifespan_days
    deleted = sum(day_bytes[label] * frac
                  for (_, label), frac in plan.fractions.items())
    assert plan.total_bytes + deleted == pytest.approx(full, rel=1e-9)


@_SETTINGS
@given(k=st.floats(min_value=0.0, max_value=16.0),
       pmin=st.floats(min_value=0.0, max_value=1.0),
       age=st.integers(min_value=1, max_value=3650))
def test_power_law_target_stays_in_unit_interval(k, pmin, age):
    value = power_law_target(age, k, pmin)
    assert 0.0 <= value <= 1.0
    # Monotone non-increasing in age, bounded below by pmin.
    assert value >= pmin - 1e-12
    assert power_law_target(age + 1, k, pmin) <= value + 1e-12


@given(age=st.integers(max_value=0))
def test_power_law_rejects_prehistoric_ages(age):
    with pytest.raises(ValueError):
        power_law_target(age, 1.0, 0.1)


@pytest.mark.parametrize("k", [-0.5, float("nan"), float("inf")])
def test_power_law_rejects_invalid_k(k):
    with pytest.raises(ValueError):
        power_law_target(1, k, 0.1)


@pytest.mark.parametrize("pmin", [-0.1, 1.1, float("nan")])
def test_power_law_rejects_invalid_pmin(pmin):
    with pytest.raises(ValueError):
        power_law_target(1, 1.0, pmin)


@pytest.mark.parametrize("budget", [-1.0, float("nan"), -math.inf])
def test_plan_rejects_invalid_budget(planner, budget):
    with pytest.raises(ValueError):
        planner.plan(budget)


def test_plan_infeasible_budget_still_raises_erosion_error(planner):
    with pytest.raises(ErosionError):
        planner.plan(0.0)
