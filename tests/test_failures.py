"""Replicated shards under failure: campaigns, routing, rebuild, SLOs.

The PR-4 sharding tests pinned placement and rebalance; these pin the
resilience layer on top of it: k-way replica placement, shard
fail/degrade/recover semantics, typed error paths, the executor's
failure timeline, background re-replication, and the availability
numbers ``VStore.serve(failures=...)`` reports.
"""

import pytest

from repro.clock import SimClock
from repro.core.store import VStore
from repro.errors import (
    QueryError,
    ReplicaUnavailableError,
    ShardFailedError,
    StorageError,
)
from repro.operators.library import default_library
from repro.query.workload import ArrivalSpec, QueryMixEntry, TenantSpec
from repro.storage.failures import (
    FailureCampaign,
    FailureEvent,
    apply_event,
    plan_rebuilds,
    rebuild_jobs,
)
from repro.storage.sharding import ShardedDiskArray


def _array(shards=4, replication=2, **kw):
    kw.setdefault("placement", "round-robin")
    return ShardedDiskArray(shards, replication=replication,
                            clock=SimClock(), **kw)


def _fill(array, n=8, nbytes=1000.0):
    for i in range(n):
        array.place("cam", "fmt", i, nbytes)
    return array


# ---------------------------------------------------------------------------
# Campaign data model
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_event_validation(self):
        with pytest.raises(StorageError):
            FailureEvent(t=1.0, action="explode", shard=0)
        with pytest.raises(StorageError):
            FailureEvent(t=-1.0, action="fail", shard=0)
        with pytest.raises(StorageError):
            FailureEvent(t=1.0, action="fail", shard=-1)
        with pytest.raises(StorageError):
            FailureEvent(t=1.0, action="degrade", shard=0, factor=0.5)

    def test_campaign_sorts_events(self):
        c = FailureCampaign(events=(
            FailureEvent(t=30.0, action="recover", shard=0),
            FailureEvent(t=10.0, action="fail", shard=0),
        ))
        assert [e.t for e in c] == [10.0, 30.0]

    def test_parse_round_trip(self):
        c = FailureCampaign.parse("fail@10:0, degrade@5:1:8 ,recover@60:0")
        assert [(e.action, e.t, e.shard) for e in c] == [
            ("degrade", 5.0, 1), ("fail", 10.0, 0), ("recover", 60.0, 0)
        ]
        assert c.events[0].factor == 8.0
        assert c.fail_events == (FailureEvent(t=10.0, action="fail", shard=0),)

    def test_parse_rejects_garbage(self):
        for bad in ("", "fail@", "fail@x:0", "fail@1", "boom@1:0"):
            with pytest.raises(StorageError):
                FailureCampaign.parse(bad)

    def test_max_concurrent_failures(self):
        c = FailureCampaign.parse(
            "fail@1:0,fail@2:1,recover@3:0,fail@4:2,recover@5:1,recover@6:2"
        )
        assert c.max_concurrent_failures() == 2

    def test_random_is_deterministic_and_valid(self):
        a = FailureCampaign.random(4, 100.0, seed=3)
        b = FailureCampaign.random(4, 100.0, seed=3)
        assert a == b
        a.validate_for(_array())
        assert a.max_concurrent_failures() <= 1

    def test_validate_for_rejects_unknown_shard(self):
        with pytest.raises(StorageError):
            FailureCampaign.parse("fail@1:9").validate_for(_array())


# ---------------------------------------------------------------------------
# Replica placement
# ---------------------------------------------------------------------------


class TestReplicaPlacement:
    def test_replicas_land_on_distinct_shards(self):
        array = _fill(_array(shards=4, replication=3))
        for key, replicas in array.replica_assignments().items():
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == array.locate(*key)

    def test_replication_factor_bounds(self):
        with pytest.raises(StorageError):
            ShardedDiskArray(2, replication=3)
        with pytest.raises(StorageError):
            ShardedDiskArray(2, replication=0)

    def test_bytes_charged_on_every_replica(self):
        array = _fill(_array(shards=4, replication=2), n=8, nbytes=100.0)
        assert sum(array.shard_bytes) == pytest.approx(2 * 8 * 100.0)
        assert sum(array.shard_keys) == 16

    def test_unreplicated_path_untouched(self):
        array = _fill(_array(shards=4, replication=1))
        assert array._replicas == {}  # the k=1 path never touches the map
        assert all(len(r) == 1 for r in array.replica_assignments().values())
        assert array.replicas("cam", "fmt", 0) == (array.locate("cam", "fmt", 0),)

    def test_overwrite_refreshes_all_replicas(self):
        array = _array(shards=4, replication=2)
        array.place("cam", "fmt", 0, 100.0)
        array.place("cam", "fmt", 0, 250.0)
        assert sum(array.shard_bytes) == pytest.approx(2 * 250.0)

    def test_forget_drops_all_replicas(self):
        array = _fill(_array(shards=4, replication=2), n=4, nbytes=10.0)
        for i in range(4):
            array.forget("cam", "fmt", i)
        assert sum(array.shard_bytes) == pytest.approx(0.0)
        assert sum(array.shard_keys) == 0
        assert array.replica_assignments() == {}


# ---------------------------------------------------------------------------
# Failure semantics on the array
# ---------------------------------------------------------------------------


class TestFailureSemantics:
    def test_fail_promotes_survivor_and_returns_rebuild_work(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        victim = array.locate("cam", "fmt", 0)
        work = array.fail_shard(victim)
        assert array.failed_shards == (victim,)
        assert work, "keys on the failed shard become rebuild work"
        for key, nbytes, source in work:
            assert source != victim
            assert array.locate(*key) != victim
            assert nbytes == 10.0
        assert array.lost_keys() == {}

    def test_fail_is_idempotent(self):
        array = _fill(_array())
        victim = array.locate("cam", "fmt", 0)
        first = array.fail_shard(victim)
        assert first
        assert array.fail_shard(victim) == []
        assert array.failures_injected == 1

    def test_fail_conserves_bytes_as_loss_or_survivors(self):
        array = _fill(_array(shards=4, replication=2), n=8, nbytes=10.0)
        before = sum(array.shard_bytes)
        victim = 0
        lost_copies = array.shard_bytes[victim]
        array.fail_shard(victim)
        assert sum(array.shard_bytes) + lost_copies == pytest.approx(before)
        assert array.lost_bytes == 0.0

    def test_double_fault_at_k2_loses_data(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        replicas = array.replicas("cam", "fmt", 0)
        for shard in replicas:
            array.fail_shard(shard)
        assert ("cam", "fmt", 0) in array.lost_keys()
        with pytest.raises(ReplicaUnavailableError):
            array.effective_read_shard("cam", "fmt", 0)

    def test_recover_returns_empty_shard(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        array.fail_shard(0)
        array.recover_shard(0)
        assert array.shard_state(0) == "up"
        assert array.shard_bytes[0] == pytest.approx(0.0)
        # New placements may use it again.
        array.place("cam2", "fmt", 0, 10.0)

    def test_degrade_then_recover(self):
        array = _array()
        array.degrade_shard(1, 6.0)
        assert array.shard_state(1) == "degraded"
        assert array.degrade_factor(1) == 6.0
        bw, ovh = array.read_params_at(1)
        assert bw == pytest.approx(array.shard(1).read_bandwidth / 6.0)
        array.recover_shard(1)
        assert array.degrade_factor(1) == 1.0

    def test_degraded_read_charges_extra_time(self):
        array = _array()
        healthy = array.read_at(1, 1e9)
        array.degrade_shard(1, 4.0)
        degraded = array.read_at(1, 1e9)
        assert degraded == pytest.approx(healthy * 4.0)

    def test_reads_route_around_failed_primary(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        primary, secondary = array.replicas("cam", "fmt", 0)
        array.fail_shard(primary)
        assert array.effective_read_shard("cam", "fmt", 0) == secondary

    def test_reads_avoid_degraded_primary(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        primary, secondary = array.replicas("cam", "fmt", 0)
        array.degrade_shard(primary, 10.0)
        assert array.effective_read_shard("cam", "fmt", 0) == secondary
        # ... unless the detour is even slower.
        array.degrade_shard(secondary, 100.0)
        assert array.effective_read_shard("cam", "fmt", 0) == primary

    def test_placement_routes_around_failed_shard(self):
        array = _array(shards=2, replication=1)
        array.fail_shard(0)
        assert array.place("cam", "fmt", 0, 10.0) == 1

    def test_reassign_and_migrate_refuse_failed_shards(self):
        array = _fill(_array(shards=4, replication=1), nbytes=10.0)
        array.fail_shard(3)
        key = ("cam", "fmt", 0)
        src = array.locate(*key)
        with pytest.raises(ShardFailedError):
            array.reassign(*key, dst=3)
        with pytest.raises(ShardFailedError):
            array.migrate(src, 3, 10.0)

    def test_reassign_refuses_replica_collision(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        primary, secondary = array.replicas("cam", "fmt", 0)
        with pytest.raises(StorageError):
            array.reassign("cam", "fmt", 0, dst=secondary)


# ---------------------------------------------------------------------------
# Typed error paths (satellite: ShardFailedError / ReplicaUnavailableError)
# ---------------------------------------------------------------------------


class TestTypedErrors:
    def test_io_on_failed_shard_raises_shard_failed(self):
        array = _array()
        array.fail_shard(2)
        with pytest.raises(ShardFailedError):
            array.read_at(2, 100.0)
        with pytest.raises(ShardFailedError):
            array.write_at(2, 100.0)

    def test_every_replica_failed_raises_shard_failed(self):
        # reset_health resurrects the *flags* but not dropped bookkeeping,
        # so build the situation directly: a replicated key whose entire
        # replica set is flagged failed before fail_shard pruned it.
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        replicas = array.replicas("cam", "fmt", 0)
        array._failed.update(replicas)  # flags only, bookkeeping intact
        with pytest.raises(ShardFailedError):
            array.effective_read_shard("cam", "fmt", 0)

    def test_lost_key_raises_replica_unavailable(self):
        array = _fill(_array(shards=2, replication=1), nbytes=10.0)
        victim = array.locate("cam", "fmt", 0)
        array.fail_shard(victim)
        with pytest.raises(ReplicaUnavailableError):
            array.effective_read_shard("cam", "fmt", 0)

    def test_both_are_storage_errors(self):
        assert issubclass(ShardFailedError, StorageError)
        assert issubclass(ReplicaUnavailableError, StorageError)

    def test_degrade_of_failed_shard_refused(self):
        array = _array()
        array.fail_shard(0)
        with pytest.raises(ShardFailedError):
            array.degrade_shard(0, 2.0)


# ---------------------------------------------------------------------------
# apply_event / rebuild planning
# ---------------------------------------------------------------------------


class TestApplyAndPlan:
    def test_apply_event_dispatch(self):
        array = _fill(_array(shards=4, replication=2), nbytes=10.0)
        work = apply_event(array, FailureEvent(t=1.0, action="fail", shard=0))
        assert all(src != 0 for _, _, src in work)
        apply_event(array, FailureEvent(t=2.0, action="degrade", shard=1,
                                        factor=3.0))
        assert array.degrade_factor(1) == 3.0
        apply_event(array, FailureEvent(t=3.0, action="recover", shard=0))
        assert array.shard_state(0) == "up"
        with pytest.raises(StorageError):
            apply_event(array, FailureEvent(t=4.0, action="fail", shard=9))

    def test_degrade_of_failed_shard_is_skipped(self):
        array = _array()
        array.fail_shard(0)
        apply_event(array, FailureEvent(t=1.0, action="degrade", shard=0))
        assert array.shard_state(0) == "failed"

    def test_plan_rebuilds_picks_distinct_healthy_destinations(self):
        array = _fill(_array(shards=4, replication=2), n=8, nbytes=10.0)
        work = array.fail_shard(0)
        plans = plan_rebuilds(array, work)
        assert len(plans) == len(work)
        for plan in plans:
            assert not array.is_failed(plan.destination)
            assert plan.destination not in array.replicas(*plan.key)
            assert plan.source in array.replicas(*plan.key)

    def test_plan_rebuilds_skips_when_no_destination(self):
        array = _fill(_array(shards=2, replication=2), n=2, nbytes=10.0)
        work = array.fail_shard(0)
        # Only shard 1 survives and it already holds the other copy.
        assert plan_rebuilds(array, work) == []


# ---------------------------------------------------------------------------
# Executor timeline
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    s = VStore(workdir=str(tmp_path_factory.mktemp("failures")),
               library=lib, shards=4, replication=2)
    s.configure()
    s.ingest("jackson", n_segments=4)
    yield s
    s.close()


TENANTS = [
    TenantSpec(name="t", arrivals=ArrivalSpec(rate=0.5),
               mix=(QueryMixEntry(query="B", dataset="jackson"),),
               slo_seconds=10.0),
]

CAMPAIGN = "fail@5:0,degrade@5:1:6,recover@40:0,recover@40:1"


class TestExecutorTimeline:
    def test_schedule_failures_rejects_past_events(self, store):
        ex = store.executor(cache=None, metrics=None)
        ex.clock.charge(5.0, "idle")
        with pytest.raises(QueryError):
            ex.schedule_failures([FailureEvent(t=1.0, action="fail", shard=0)])

    def test_schedule_failures_rejects_started_executor(self, store):
        from repro.query.cascade import cascade_for

        ex = store.executor(cache=None, metrics=None)
        ex.admit(cascade_for("B"), "jackson", 0.9, 0.0, 16.0)
        ex.run()
        with pytest.raises(QueryError):
            ex.schedule_failures([FailureEvent(t=ex.clock.now + 1.0,
                                               action="fail", shard=0)])

    def test_trailing_events_extend_makespan(self, store):
        from repro.query.cascade import cascade_for

        ex = store.executor(cache=None, metrics=None)
        t = ex.clock.now + 50.0
        ex.schedule_failures([FailureEvent(t=t, action="recover", shard=0)])
        ex.admit(cascade_for("B"), "jackson", 0.9, 0.0, 16.0)
        ex.run()
        assert ex.clock.now == pytest.approx(t)

    def test_failure_events_appear_in_trace_both_cores(self, store):
        def run(core):
            ex = store.executor(cache=None, metrics=None, core=core,
                                trace=True)
            from repro.query.cascade import cascade_for
            ex.admit(cascade_for("B"), "jackson", 0.9, 0.0, 16.0)
            ex.schedule_failures([
                FailureEvent(t=ex.clock.now + 1.0, action="degrade", shard=1),
                FailureEvent(t=ex.clock.now + 2.0, action="recover", shard=1),
            ])
            ex.run()
            return [e for e in ex.trace_events if e["query"] == "failures"]

        heap, ref = run("heap"), run("reference")
        assert heap == ref
        assert [e["kind"] for e in heap] == ["degrade", "degrade",
                                             "recover", "recover"]
        assert {e["event"] for e in heap} == {"start", "finish"}

    def test_failure_events_disqualify_fastpath(self, store):
        from repro.query.cascade import cascade_for

        ex = store.executor(cache=None, metrics=None)
        ex.admit(cascade_for("B"), "jackson", 0.9, 0.0, 16.0)
        ex.schedule_failures([FailureEvent(t=ex.clock.now + 1.0,
                                           action="recover", shard=0)])
        ex.run()
        assert ex.stats().core == "heap"

    def test_admit_job_arrival_validated(self, store):
        from repro.query.scheduler import BackgroundJob, ResourceTask

        ex = store.executor(cache=None, metrics=None)
        job = BackgroundJob(name="j", stream="s", kind="rebuild", tasks=(
            ResourceTask(kind="read", resource="disk", units=1, duration=1.0,
                         category="disk", operator="rebuild"),
        ))
        with pytest.raises(QueryError):
            ex.admit_job(job, arrival=ex.clock.now - 5.0)


# ---------------------------------------------------------------------------
# End-to-end: serve under a campaign
# ---------------------------------------------------------------------------


class TestServeWithFailures:
    @pytest.fixture(autouse=True)
    def _fresh(self, store):
        # Destructive campaigns drop replica bookkeeping; a reopen
        # rebuilds the placement map (replica sets included) from the
        # persisted metadata, isolating each test's damage.
        store.reopen()

    def test_no_data_loss_below_replication_factor(self, store):
        report = store.serve(TENANTS, horizon=30.0, seed=5,
                             failures=CAMPAIGN)
        try:
            avail = report.availability
            assert avail is not None
            assert avail.max_concurrent_failures < avail.replication
            assert not avail.data_lost
            assert avail.lost_keys == 0
            assert avail.replicas_rebuilt == avail.rebuild_jobs > 0
            assert avail.rebuilt_bytes > 0
            assert avail.rebuild_done_at is not None
            assert avail.rebuild_seconds >= 0.0
            assert report.slo.overall.n_queries > 0
        finally:
            store.disk_array.reset_health()

    def test_rebuild_restores_full_redundancy(self, store):
        report = store.serve(TENANTS, horizon=30.0, seed=6,
                             failures="fail@5:2,recover@25:2")
        try:
            assert not report.availability.data_lost
            # Every key is back to k distinct live replicas.
            array = store.disk_array
            for key, replicas in array.replica_assignments().items():
                live = [r for r in replicas if not array.is_failed(r)]
                assert len(set(live)) >= array.replication
        finally:
            store.disk_array.reset_health()

    def test_serve_campaign_replays_bit_equal(self, store):
        def run():
            r = store.serve(TENANTS, horizon=25.0, seed=7,
                            failures="degrade@4:1:8,recover@20:1")
            store.disk_array.reset_health()
            return [(o.session.qid, o.session.finished_at, o.latency)
                    for o in r.outcomes]

        assert run() == run()

    def test_serve_cores_agree_under_campaign(self, store):
        def run(core):
            r = store.serve(TENANTS, horizon=25.0, seed=8, core=core,
                            failures="degrade@4:0:8,recover@20:0")
            store.disk_array.reset_health()
            return [(o.session.qid, o.session.finished_at, o.latency)
                    for o in r.outcomes]

        assert run("heap") == run("reference")

    def test_availability_none_without_campaign(self, store):
        report = store.serve(TENANTS, horizon=10.0, seed=9)
        assert report.availability is None

    def test_inject_failures_returns_rebuild_jobs(self, store):
        jobs = store.inject_failures("fail@0:3")
        try:
            assert jobs
            assert all(j.kind == "rebuild" for j in jobs)
            assert all(len(j.tasks) == 2 for j in jobs)
            reads, writes = zip(*[(j.tasks[0], j.tasks[1]) for j in jobs])
            assert all(t.kind == "read" for t in reads)
            assert all(t.kind == "replicate" for t in writes)
        finally:
            store.disk_array.recover_shard(3)


# ---------------------------------------------------------------------------
# Availability analysis
# ---------------------------------------------------------------------------


class TestAvailabilityAnalysis:
    def test_impairment_windows(self):
        from repro.analysis.availability import impairment_windows

        c = FailureCampaign.parse("degrade@2:1,fail@4:1,recover@8:1,fail@9:0")
        windows = impairment_windows(c, end=12.0)
        assert (2.0, 4.0, 1, "degrade") in windows
        assert (4.0, 8.0, 1, "fail") in windows
        assert (9.0, 12.0, 0, "fail") in windows

    def test_degraded_slowdown_defaults_to_one(self):
        from repro.analysis.availability import AvailabilityReport

        r = AvailabilityReport(
            replication=2, n_events=0, n_failures=0,
            max_concurrent_failures=0, lost_keys=0, lost_bytes=0.0,
            replicas_rebuilt=0, rebuilt_bytes=0.0, rebuild_jobs=0,
            rebuild_done_at=None, rebuild_seconds=None,
            degraded_queries=0, healthy_queries=5,
            degraded_mean_latency=0.0, healthy_mean_latency=1.0,
        )
        assert r.degraded_slowdown == 1.0
        assert not r.data_lost

    def test_format_availability_table(self, store):
        from repro.analysis.availability import format_availability_table

        store.reopen()
        report = store.serve(TENANTS, horizon=20.0, seed=11,
                             failures="fail@3:1,recover@15:1")
        store.disk_array.reset_health()
        text = format_availability_table(report.availability)
        assert "data lost          no" in text
        assert "replication k      2" in text
        assert "rebuild window" in text
