"""Planner performance: the vectorized profiling plane vs the scalar path.

For 5/10/15-consumer workloads, runs heuristic, distance and (where the
CF count is affordable) exhaustive planning twice — once on the legacy
per-call scalar surfaces (``use_table=False``) and once on the shared
:class:`~repro.codec.tables.ProfileTable` — and compares wall time,
codec-surface evaluation counts and profiler invocations.  Plans must be
identical in both modes; the vectorized plane must cut per-call surface
evaluations by at least 5x on the 10-consumer workload.

The numbers land in ``benchmarks/RESULTS.md`` so future PRs have a perf
trajectory to regress against.
"""

import time

import pytest

from repro.analysis.tables import format_profiling_summary_table
from repro.codec.model import SURFACE_CALLS
from repro.codec.tables import clear_profile_table_cache
from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler

#: (operator, profiling dataset) in workload order; consumers are taken
#: in accuracy-major order below, so prefixes mix fast and slow operators.
_OPERATORS = (
    ("Motion", "dashcam"), ("License", "dashcam"), ("OCR", "dashcam"),
    ("Diff", "jackson"), ("NN", "jackson"), ("S-NN", "jackson"),
)
_ACCURACIES = (0.95, 0.9, 0.8, 0.7)
SIZES = (5, 10, 15)


@pytest.fixture(scope="module")
def all_decisions(full_library):
    planners = {
        ds: ConsumptionPlanner(OperatorProfiler(full_library, ds))
        for ds in ("dashcam", "jackson")
    }
    decisions = []
    for acc in _ACCURACIES:
        for op, ds in _OPERATORS:
            decisions.append(planners[ds].derive(Consumer(op, acc)))
    return decisions


def _measure(method, decisions, use_table, cold=True, **kwargs):
    if cold:
        clear_profile_table_cache()
    scalar0, grid0 = SURFACE_CALLS.scalar, SURFACE_CALLS.grid
    t0 = time.perf_counter()
    profiler = CodingProfiler(activity=0.6, use_table=use_table)
    plan = getattr(StorageFormatPlanner(profiler), method)(
        decisions, **kwargs
    )
    wall = time.perf_counter() - t0
    evals = (SURFACE_CALLS.scalar - scalar0) + (SURFACE_CALLS.grid - grid0)
    return plan, wall, evals, profiler.stats


def test_planner_perf(benchmark, record, full_library, all_decisions):
    lines = [
        f"{'consumers':>9} {'planner':>10} {'mode':>7} {'wall ms':>8} "
        f"{'surface evals':>13} {'prof runs':>9} {'memo hits':>10}"
    ]
    speedups = {}
    memo_rows = []
    for size in SIZES:
        decisions = all_decisions[:size]
        unique_cfs = len({d.fidelity for d in decisions})
        methods = [("heuristic", "heuristic_coalesce", {}),
                   ("distance", "distance_coalesce", {"target_count": 4})]
        if unique_cfs <= 8:  # Bell(8) = 4140 partitions: affordable
            methods.append(("exhaustive", "exhaustive", {}))
        for name, method, kwargs in methods:
            plan_s, wall_s, evals_s, stats_s = _measure(
                method, decisions, use_table=False, **kwargs
            )
            plan_v, wall_v, evals_v, stats_v = _measure(
                method, decisions, use_table=True, **kwargs
            )
            # Steady state: the shared table is already built (every
            # profiler in a process reuses it), so planning is pure lookups.
            plan_w, wall_w, evals_w, stats_w = _measure(
                method, decisions, use_table=True, cold=False, **kwargs
            )
            assert (sorted(sf.label for sf in plan_w.formats)
                    == sorted(sf.label for sf in plan_v.formats))
            # Parity: the vectorized plane must not change the plan.
            assert (sorted(sf.label for sf in plan_s.formats)
                    == sorted(sf.label for sf in plan_v.formats))
            assert (plan_s.storage_bytes_per_second
                    == plan_v.storage_bytes_per_second)
            assert plan_s.ingest_cores == plan_v.ingest_cores
            for mode, wall, evals, stats in (
                ("scalar", wall_s, evals_s, stats_s),
                ("cold", wall_v, evals_v, stats_v),
                ("warm", wall_w, evals_w, stats_w),
            ):
                lines.append(
                    f"{size:>9} {name:>10} {mode:>7} {wall * 1e3:>8.1f} "
                    f"{evals:>13} {stats.runs:>9} {stats.memo_hits:>10}"
                )
            speedups[(size, name)] = (
                evals_s / max(1, evals_v),
                wall_s / max(wall_v, 1e-9),
                wall_s / max(wall_w, 1e-9),
            )
            memo_rows.append({
                "label": f"{size}c {name}",
                "runs": stats_v.runs,
                "memo_hits": stats_v.memo_hits + stats_v.adequacy_hits,
            })

    lines.append("")
    for (size, name), (eval_ratio, cold_ratio, warm_ratio) in \
            speedups.items():
        lines.append(
            f"{size:>3} consumers {name:>10}: surface-eval reduction "
            f"{eval_ratio:>7.1f}x, wall speedup {cold_ratio:>5.2f}x cold / "
            f"{warm_ratio:>5.2f}x warm"
        )
    record("Planner performance — vectorized profiling plane",
           "\n".join(lines))
    record("Planner performance — profiler memoization",
           format_profiling_summary_table(memo_rows))
    benchmark.pedantic(
        lambda: _measure("heuristic_coalesce", all_decisions[:10], True),
        rounds=1, iterations=1,
    )

    # Acceptance: >=5x fewer codec-surface evaluations on the 10-consumer
    # heuristic workload (in practice the reduction is orders of magnitude:
    # the table costs a handful of grid passes, then planning is lookups).
    assert speedups[(10, "heuristic")][0] >= 5.0
    assert speedups[(10, "distance")][0] >= 5.0
