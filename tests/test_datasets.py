"""The six benchmark datasets (Section 6.1)."""

import pytest

from repro.errors import KnobError
from repro.video.datasets import (
    DATASETS,
    QUERY_A_DATASETS,
    QUERY_B_DATASETS,
    get_dataset,
)


def test_all_six_present():
    assert set(DATASETS) == {
        "jackson", "miami", "tucson", "dashcam", "park", "airport"
    }


def test_query_assignment_matches_paper():
    assert QUERY_A_DATASETS == ("jackson", "miami", "tucson")
    assert QUERY_B_DATASETS == ("dashcam", "park", "airport")


def test_only_dashcam_has_camera_motion():
    for name, ds in DATASETS.items():
        if name == "dashcam":
            assert ds.params.camera_motion > 0.5
            assert ds.kind == "dashcam"
        else:
            assert ds.params.camera_motion == 0.0
            assert ds.kind == "surveillance"


def test_content_model_uses_dataset_name():
    model = get_dataset("miami").content()
    assert model.name == "miami"


def test_unknown_dataset_raises_with_hint():
    with pytest.raises(KnobError, match="jackson"):
        get_dataset("nosuch")


def test_params_are_positive():
    for ds in DATASETS.values():
        p = ds.params
        assert p.arrival_rate > 0
        assert p.dwell_mean >= p.dwell_min > 0
        assert 0 < p.size_mean < 0.5
        assert 0 <= p.plate_fraction <= 1
        assert 0 <= p.person_fraction <= 1
