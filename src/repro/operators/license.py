"""License: license-plate region detector (OpenALPR).

License scans frames for plate-shaped regions, passing candidates to OCR.
The detected feature is the plate, roughly a quarter of the vehicle's
height, so the operator needs substantially richer resolution than a
vehicle detector — the paper's configuration gives it 540p inputs.  Its
CPU implementation also makes it the costliest non-NN operator per pixel
(it dominates profiling time in Figure 14).
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator


class LicenseOperator(DetectorOperator):
    """License-plate region detector [OpenALPR]."""

    name = "License"
    platform = "cpu"

    # Cost: CPU cascade over the full frame, linear in pixels.
    cost_base = 5.5e-4
    cost_per_mp = 9.2e-3
    cost_gamma = 1.0

    target_kinds = ("car",)
    requires_plate = True
    feature_scale = 0.25  # the plate is ~1/4 of the vehicle height
    theta = 2.4
    width = 0.38
    quality_alpha = 1.5  # plate edges blur fast with compression
    fp_base = 0.03
