"""Materialized codec response surfaces: the vectorized profiling plane.

The storage-format planner evaluates the same codec surfaces thousands of
times per coalescing run — size, encode cost and retrieval speed over the
(fidelity x coding) knob grid.  A :class:`ProfileTable` evaluates each
surface once, in one NumPy pass per quantity, and turns every subsequent
planner query into an O(1) table lookup:

* ``profile_values``   — (bytes/s, ingest cost, base retrieval speed);
* ``retrieval_speed``  — per consumer sampling rate, chunk skipping included;
* ``storage_rank``     — the per-fidelity cheapest-storage-first coding
  order, a precomputed argsort instead of a sort per
  ``cheapest_adequate_coding`` call.

Tables are cached per ``(CodecModel, DiskModel parameters, activity)`` so
every profiler, sweep point and benchmark in a process shares one build.
All table cells are bit-identical to the scalar code paths in
:mod:`repro.codec.model` and :mod:`repro.retrieval.speed` — the planner's
plans must not change by a single ULP when the table is switched on.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

import numpy as np

from repro.codec.chunks import decoded_frame_fraction
from repro.codec.model import CodecModel
from repro.storage.disk import DiskModel
from repro.video.coding import Coding, coding_space
from repro.video.fidelity import SAMPLING_RATES, Fidelity, fidelity_space
from repro.video.format import StorageFormat


class ProfileTable:
    """Codec/disk response surfaces over the full knob grid, as arrays."""

    def __init__(self, codec: CodecModel, disk: DiskModel, activity: float):
        self.codec = codec
        self.disk = disk
        self.activity = activity

        self._fidelities = tuple(fidelity_space())
        self._codings = tuple(coding_space(include_raw=False))
        self._fidelity_index = {f: i for i, f in enumerate(self._fidelities)}
        self._coding_index = {c: i for i, c in enumerate(self._codings)}
        self._sampling_index = {s: i for i, s in enumerate(SAMPLING_RATES)}

        fids, cods = self._fidelities, self._codings
        fps = np.array([f.fps for f in fids])
        sidx = np.array([f.sampling_idx for f in fids])
        kf_values = list(dict.fromkeys(c.keyframe_interval for c in cods))
        kfidx = np.array([kf_values.index(c.keyframe_interval) for c in cods])

        # -- size and encode cost -------------------------------------------
        self._size = codec.encoded_bytes_per_second_grid(fids, cods, activity)
        if activity == 0.35:
            size_default = self._size
        else:
            size_default = codec.encoded_bytes_per_second_grid(fids, cods)
        self._raw_size = codec.raw_bytes_per_second_vector(fids)
        self._encode = codec.encode_seconds_grid(fids, cods)
        self._raw_encode = codec.raw_encode_seconds_vector(fids)

        # -- retrieval speed, encoded formats -------------------------------
        # decoded_frame_fraction per (stored sampling, consumer sampling,
        # keyframe interval); NaN marks consumer-faster-than-store combos,
        # which the scalar path rejects.
        n_s, n_kf = len(SAMPLING_RATES), len(kf_values)
        frac = np.full((n_s, n_s, n_kf), np.nan)
        for i_st, s_stored in enumerate(SAMPLING_RATES):
            for i_co, s_cons in enumerate(SAMPLING_RATES):
                if s_cons > s_stored:
                    continue
                stride = max(1, int(s_stored / s_cons))
                for i_kf, kf in enumerate(kf_values):
                    frac[i_st, i_co, i_kf] = decoded_frame_fraction(stride, kf)

        dec_frame = codec.decode_frame_seconds_grid(fids, cods)
        disk_speed = disk.read_bandwidth / size_default
        self._retr_enc = np.empty(
            (len(fids), len(cods), len(SAMPLING_RATES))
        )
        for i_co in range(len(SAMPLING_RATES)):
            frac_grid = frac[sidx[:, None], i_co, kfidx[None, :]]
            cost = (fps[:, None] * frac_grid) * dec_frame
            self._retr_enc[:, :, i_co] = np.minimum(1.0 / cost, disk_speed)

        # -- retrieval speed, raw formats -----------------------------------
        frame_bytes = np.array([codec.raw_frame_bytes(f) for f in fids])
        overhead = disk.request_overhead
        scan = fps * frame_bytes / disk.read_bandwidth + overhead / 8.0
        self._retr_raw = np.empty((len(fids), len(SAMPLING_RATES)))
        for i_co, s_cons in enumerate(SAMPLING_RATES):
            consumed = np.minimum(fps, 30.0 * float(s_cons))
            sparse = consumed * frame_bytes / disk.read_bandwidth \
                + consumed * overhead
            self._retr_raw[:, i_co] = 1.0 / np.minimum(scan, sparse)

        # Base retrieval (consumer taking every stored frame) is the column
        # matching each fidelity's own sampling rate.
        self._base_enc = np.take_along_axis(
            self._retr_enc, sidx[:, None, None], axis=2
        )[:, :, 0]
        self._base_raw = self._retr_raw[np.arange(len(fids)), sidx]

        # -- storage rank ----------------------------------------------------
        # Stable argsort matches list.sort over coding_space order, so the
        # cheapest-adequate walk visits candidates in the exact legacy order.
        self._rank = np.argsort(self._size, axis=1, kind="stable")
        self._rank_cache: Dict[int, Tuple[Coding, ...]] = {}

    # -- lookups -------------------------------------------------------------

    def profile_values(self, fmt: StorageFormat) -> Tuple[float, float, float]:
        """(bytes per video second, ingest cost, base retrieval speed)."""
        fi = self._fidelity_index[fmt.fidelity]
        if fmt.is_raw:
            return (
                float(self._raw_size[fi]),
                float(self._raw_encode[fi]),
                float(self._base_raw[fi]),
            )
        ci = self._coding_index[fmt.coding]
        return (
            float(self._size[fi, ci]),
            float(self._encode[fi, ci]),
            float(self._base_enc[fi, ci]),
        )

    def retrieval_speed(
        self, fmt: StorageFormat, consumer_sampling: Optional[Fraction] = None
    ) -> Optional[float]:
        """Table lookup of the retrieval speed; ``None`` when the query is
        outside the tabulated grid (caller falls back to the scalar path)."""
        fi = self._fidelity_index[fmt.fidelity]
        if consumer_sampling is None:
            if fmt.is_raw:
                return float(self._base_raw[fi])
            return float(self._base_enc[fi, self._coding_index[fmt.coding]])
        si = self._sampling_index.get(consumer_sampling)
        if si is None:
            return None
        if fmt.is_raw:
            return float(self._retr_raw[fi, si])
        speed = self._retr_enc[fi, self._coding_index[fmt.coding], si]
        if np.isnan(speed):  # consumer samples faster than the store holds
            return None
        return float(speed)

    def storage_rank(self, fidelity: Fidelity) -> Tuple[Coding, ...]:
        """Encoded coding options ordered by on-disk size, cheapest first."""
        fi = self._fidelity_index[fidelity]
        cached = self._rank_cache.get(fi)
        if cached is None:
            cached = tuple(self._codings[k] for k in self._rank[fi])
            self._rank_cache[fi] = cached
        return cached


#: Table cache keyed by codec model, disk parameters and content activity.
_TABLE_CACHE: Dict[tuple, ProfileTable] = {}


def get_profile_table(
    codec: CodecModel, disk: DiskModel, activity: float
) -> ProfileTable:
    """The shared :class:`ProfileTable` for this codec/disk/activity."""
    key = (
        codec,
        disk.read_bandwidth,
        disk.write_bandwidth,
        disk.request_overhead,
        float(activity),
    )
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = ProfileTable(codec, disk, activity)
        _TABLE_CACHE[key] = table
    return table


def clear_profile_table_cache() -> None:
    """Drop all cached tables (benchmarks measure cold builds with this)."""
    _TABLE_CACHE.clear()
