"""Ablation: chunk-skip decoding on vs off.

The keyframe-interval knob only pays off because the decoder skips whole
chunks under sparse consumer sampling (Section 2.3).  This ablation
quantifies the retrieval speedup the mechanism contributes across the
derived storage formats.
"""

from fractions import Fraction

from repro.codec.model import DEFAULT_CODEC
from repro.video.coding import Coding, KEYFRAME_INTERVALS
from repro.video.fidelity import richest_fidelity


def test_chunk_skip_contribution(benchmark, record):
    stored = richest_fidelity()
    sparse = Fraction(1, 30)

    def measure():
        rows = []
        for kf in KEYFRAME_INTERVALS:
            coding = Coding("slowest", kf)
            with_skip = DEFAULT_CODEC.decode_speed(stored, coding, sparse)
            # Without chunk skipping every stored frame is decoded: the
            # dense-consumer speed.
            without = DEFAULT_CODEC.decode_speed(stored, coding, Fraction(1))
            rows.append((kf, with_skip, without, with_skip / without))
        return rows

    rows = benchmark(measure)
    lines = [f"{'kf':>5} {'skip on':>9} {'skip off':>9} {'speedup':>8}"]
    for kf, on, off, ratio in rows:
        lines.append(f"{kf:>5} {on:>8.0f}x {off:>8.1f}x {ratio:>7.1f}x")
    record("Ablation — chunk-skip decoding", "\n".join(lines))

    # Chunk skipping is the whole ballgame for sparse consumers: an order
    # of magnitude at small GOPs, still substantial at the default 250.
    assert rows[0][3] > 10
    for _, on, off, _ in rows:
        assert on >= off


def test_chunk_skip_enables_encoded_formats(benchmark, record):
    """Without chunk skipping, the storage formats derived for sparse
    consumers would fail R2 and be forced to raw — the synergy between
    fidelity and coding knobs the paper calls vital (Section 2.4)."""
    from repro.core.coalesce import Demand, cheapest_adequate_coding
    from repro.operators.library import Consumer
    from repro.profiler.coding_profiler import CodingProfiler
    from repro.video.fidelity import Fidelity

    profiler = CodingProfiler(activity=0.45)
    cf = Fidelity.parse("best-540p-1/30-100%")
    demand = Demand(Consumer("OCR", 0.8), cf, 180.0)

    coding = benchmark.pedantic(
        lambda: cheapest_adequate_coding(profiler, cf, [demand]),
        rounds=1, iterations=1,
    )
    record(
        "Ablation — coding chosen for a sparse 180x consumer",
        f"CF {cf.label}, demand 180x -> coding {coding.label}",
    )
    # With chunk skipping an encoded option suffices for this consumer;
    # the dense-decode speed of the same option would not reach 180x.
    if not coding.raw:
        dense = DEFAULT_CODEC.decode_speed(cf, coding, Fraction(1, 30))
        assert dense >= 180.0
