"""Per-operator characteristics the paper's observations rely on."""

from fractions import Fraction

import pytest

from repro.operators.color import ColorOperator
from repro.operators.detector import DetectorOperator
from repro.video.content import Track
from repro.video.fidelity import Fidelity, richest_fidelity


def _fid(label):
    return Fidelity.parse(label)


def _track(**kw):
    defaults = dict(
        tid=1, kind="car", t0=0.0, t1=10.0, x0=0.5, y0=0.5, vx=0.02, vy=0.0,
        size=0.1, speed=0.02, color="red", plate="ABC1234", contrast=0.9,
    )
    defaults.update(kw)
    return Track(**defaults)


class TestDetectionModel:
    def test_bigger_objects_detected_better(self, library):
        nn = library.get("NN")
        small = _track(size=0.02)
        big = _track(size=0.3)
        p = nn.detection_prob([small, big], _fid("good-200p-1-100%"))
        assert p[1] > p[0]

    def test_quality_resolution_interaction(self, library):
        """Section 2.4: as quality worsens, accuracy becomes *more*
        sensitive to resolution changes."""
        lic = library.get("License")
        tr = _track(size=0.12)

        def p(quality, res):
            return float(lic.detection_prob([tr], _fid(f"{quality}-{res}-1-100%"))[0])

        drop_good = p("good", "720p") - p("good", "360p")
        drop_bad = p("bad", "720p") - p("bad", "360p")
        assert drop_bad > drop_good

    def test_license_requires_plate(self, library):
        lic = library.get("License")
        unplated = _track(plate=None)
        p = lic.detection_prob([unplated], richest_fidelity())
        assert p[0] == 0.0

    def test_snn_targets_cars_only(self, library):
        snn = library.get("S-NN")
        person = _track(kind="person", plate=None)
        assert snn.detection_prob([person], richest_fidelity())[0] == 0.0

    def test_nn_detects_people_too(self, library):
        nn = library.get("NN")
        person = _track(kind="person", plate=None, size=0.2)
        assert nn.detection_prob([person], richest_fidelity())[0] > 0.5

    def test_nn_more_robust_than_snn_at_low_fidelity(self, library):
        """The full NN tolerates poor inputs better than the shallow
        specialized net (why the cascade works)."""
        tr = _track(size=0.08)
        poor = _fid("bad-180p-1-100%")
        p_nn = library.get("NN").detection_prob([tr], poor)[0]
        p_snn = library.get("S-NN").detection_prob([tr], poor)[0]
        assert p_nn > p_snn

    def test_ocr_needs_more_pixels_than_license(self, library):
        tr = _track(size=0.1)
        mid = _fid("best-360p-1-100%")
        p_license = library.get("License").detection_prob([tr], mid)[0]
        p_ocr = library.get("OCR").detection_prob([tr], mid)[0]
        assert p_license > p_ocr

    def test_fp_rate_zero_at_best_quality(self, library):
        for name in ("NN", "S-NN", "License", "OCR", "Color", "Contour"):
            op = library.get(name)
            assert op.fp_rate(_fid("best-60p-1/30-50%")) == 0.0
            assert op.fp_rate(_fid("worst-720p-1-100%")) > 0.0


class TestColor:
    def test_matches_only_target_color(self):
        op = ColorOperator("blue")
        blue = _track(color="blue")
        red = _track(color="red")
        probs = op.detection_prob([blue, red], richest_fidelity())
        assert probs[0] > 0.5
        assert probs[1] == 0.0

    def test_rejects_unknown_color(self):
        with pytest.raises(ValueError):
            ColorOperator("chartreuse")


class TestSignalOperators:
    def test_diff_degrades_with_sparse_sampling(self, library, jackson_clip):
        diff = library.get("Diff")
        dense = diff.accuracy(jackson_clip, _fid("best-200p-1-100%"))
        sparse = diff.accuracy(jackson_clip, _fid("best-200p-1/30-100%"))
        assert dense > sparse + 0.05

    def test_motion_tolerates_bad_quality(self, library, dashcam_clip):
        motion = library.get("Motion")
        acc = motion.accuracy(dashcam_clip, _fid("bad-180p-1/30-100%"))
        assert acc > 0.85

    def test_diff_brittle_to_quality(self, library, jackson_clip):
        """Compression artifacts look like change: Diff needs rich quality
        (why Table 3 keeps `best` for Diff)."""
        diff = library.get("Diff")
        best = diff.accuracy(jackson_clip, _fid("best-200p-2/3-100%"))
        worst = diff.accuracy(jackson_clip, _fid("worst-200p-2/3-100%"))
        assert best > worst + 0.1

    def test_opflow_most_sampling_sensitive(self, library, jackson_clip):
        opflow = library.get("Opflow")
        nn = library.get("NN")
        rich = _fid("best-540p-1-100%")
        sparse = _fid("best-540p-1/30-100%")
        drop_flow = (opflow.accuracy(jackson_clip, rich)
                     - opflow.accuracy(jackson_clip, sparse))
        drop_nn = (nn.accuracy(jackson_clip, rich)
                   - nn.accuracy(jackson_clip, sparse))
        assert drop_flow > drop_nn

    def test_motion_cheaper_than_license(self, library):
        fid = _fid("good-540p-1-100%")
        assert (library.get("Motion").cost_per_frame(fid)
                < library.get("License").cost_per_frame(fid) / 5)


class TestDetectorScoring:
    def test_empty_clip_confusion(self, library, jackson_content):
        clip = jackson_content.clip(1e6, 0.5)  # far future, likely empty
        nn: DetectorOperator = library.get("NN")
        if not clip.tracks:
            conf = nn.expected_confusion(clip, richest_fidelity())
            assert conf.tp == 0.0 and conf.fn == 0.0

    def test_crop_costs_recall_not_precision(self, library, jackson_clip):
        nn = library.get("NN")
        full = nn.expected_confusion(jackson_clip, _fid("best-720p-1-100%"))
        cropped = nn.expected_confusion(jackson_clip, _fid("best-720p-1-50%"))
        assert cropped.fn > full.fn
        assert cropped.fp <= full.fp + 1e-9
