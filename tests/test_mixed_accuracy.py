"""Per-operator accuracy selection in queries (Section 6.1: users specify
accuracy levels for the constituting operators)."""

import pytest

from repro.errors import QueryError
from repro.query.cascade import QUERY_B
from repro.query.engine import QueryEngine


@pytest.fixture(scope="module")
def engine(configuration, query_library):
    return QueryEngine(configuration, query_library, "dashcam")


def test_mixed_matches_uniform_when_equal(engine):
    uniform = engine.estimate(QUERY_B, 0.9, 3600.0)
    mixed = engine.estimate_mixed(
        QUERY_B, {"Motion": 0.9, "License": 0.9, "OCR": 0.9}, 3600.0
    )
    assert mixed.speed == pytest.approx(uniform.speed)


def test_cheap_early_expensive_late(engine):
    """A common interactive pattern: crank the early filter down, keep the
    final stage accurate — faster than uniformly accurate."""
    uniform = engine.estimate(QUERY_B, 0.95, 3600.0)
    mixed = engine.estimate_mixed(
        QUERY_B, {"Motion": 0.7, "License": 0.8, "OCR": 0.95}, 3600.0
    )
    assert mixed.speed >= uniform.speed
    assert mixed.stages[-1].accuracy == 0.95
    assert mixed.stages[0].accuracy == 0.7


def test_report_accuracy_is_minimum(engine):
    mixed = engine.estimate_mixed(
        QUERY_B, {"Motion": 0.7, "License": 0.9, "OCR": 0.95}, 3600.0
    )
    assert mixed.accuracy == 0.7


def test_missing_operator_accuracy_raises(engine):
    with pytest.raises(QueryError, match="OCR"):
        engine.estimate_mixed(QUERY_B, {"Motion": 0.9, "License": 0.9},
                              3600.0)


def test_unconfigured_accuracy_level_raises(engine):
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        # 0.85 is not one of the declared accuracy levels.
        engine.estimate_mixed(
            QUERY_B, {"Motion": 0.85, "License": 0.9, "OCR": 0.9}, 3600.0
        )
