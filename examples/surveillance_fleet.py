#!/usr/bin/env python3
"""Operating a six-camera fleet: per-stream storage and ingest costs.

Run:  python examples/surveillance_fleet.py

Derives one unified configuration (as the paper does) and reports, for each
of the six benchmark streams, the analytic storage growth and transcoding
CPU — the quantities behind Figures 11b and 11c — under VStore and under
the N->N alternative that skips coalescing.
"""

from repro.clock import SimClock
from repro.core.config import derive_configuration
from repro.ingest.pipeline import IngestionPipeline
from repro.query.alternatives import n_to_n_scheme
from repro.operators.library import default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.units import DAY, fmt_bytes
from repro.video.datasets import DATASETS


def main() -> None:
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    config = derive_configuration(library)
    vstore_formats = config.storage_formats
    n_to_n_formats = n_to_n_scheme(
        config, CodingProfiler(activity=0.35)
    ).storage_formats
    print(f"VStore stores {len(vstore_formats)} formats; "
          f"N->N would store {len(n_to_n_formats)}.\n")

    header = (f"{'stream':>9} | {'VStore GB/day':>13} {'cores':>6} | "
              f"{'N->N GB/day':>11} {'cores':>6}")
    print(header)
    print("-" * len(header))
    for name in DATASETS:
        ours = IngestionPipeline(name, vstore_formats,
                                 clock=SimClock()).report()
        theirs = IngestionPipeline(name, n_to_n_formats,
                                   clock=SimClock()).report()
        print(f"{name:>9} | {ours.bytes_per_day / 2**30:>13.1f} "
              f"{ours.cores_required:>6.2f} | "
              f"{theirs.bytes_per_day / 2**30:>11.1f} "
              f"{theirs.cores_required:>6.2f}")
    print("\n(dashcam is the motion-heavy outlier, as in Figure 11b)")


if __name__ == "__main__":
    main()
