#!/usr/bin/env python3
"""License-plate recognition over stored footage (the paper's Query B).

Run:  python examples/license_plate_query.py

Ingests a few minutes of the dashcam stream into an on-disk VStore (every
derived storage format, 8-second segments in the key-value backend), then
executes Motion -> License -> OCR end to end: segments stream from disk
through the decoder to the operators, and the cascade narrows stage by
stage.  Finally contrasts execution at two target accuracies.
"""

import tempfile

from repro import VStore
from repro.operators.library import default_library
from repro.units import fmt_bytes


def main() -> None:
    library = default_library(names=("Motion", "License", "OCR"))
    with tempfile.TemporaryDirectory(prefix="vstore-") as workdir:
        with VStore(workdir=workdir, library=library) as store:
            config = store.configure()
            print("Storage formats derived for Query B consumers:")
            for sf in config.plan.formats:
                tag = " (golden)" if sf.golden else ""
                print(f"  {sf.label}{tag}")
            print()

            minutes = 2
            n_segments = minutes * 60 // 8
            print(f"Ingesting {minutes} minutes of 'dashcam' "
                  f"({n_segments} segments x {len(config.storage_formats)} "
                  f"formats)...")
            store.ingest("dashcam", n_segments=n_segments)
            print(f"  on-disk footprint: "
                  f"{fmt_bytes(store.segments.total_bytes())}")
            print()

            for accuracy in (0.9, 0.7):
                result = store.execute("B", dataset="dashcam",
                                       accuracy=accuracy,
                                       t0=0.0, t1=n_segments * 8.0)
                print(f"Query B at accuracy {accuracy}:")
                print(f"  speed: {result.speed:.1f}x realtime "
                      f"({result.compute_seconds:.2f}s simulated compute for "
                      f"{result.video_seconds:.0f}s of video)")
                for op in ("Motion", "License", "OCR"):
                    print(f"  {op:>8}: scanned "
                          f"{result.segments_per_stage[op]:3d} segments, "
                          f"{result.positives_per_stage[op]:4d} positives")
                print()


if __name__ == "__main__":
    main()
