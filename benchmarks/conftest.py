"""Benchmark fixtures: shared configuration plus a results collector.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timing, each test renders its rows through the
``record`` fixture; at the end of the session everything is written to
``benchmarks/RESULTS.md`` so the paper-vs-measured comparison of
EXPERIMENTS.md can be refreshed from one run.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.core.config import derive_configuration
from repro.operators.library import default_library

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "RESULTS.md")


@pytest.fixture(scope="session")
def library():
    return default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                  "OCR"))


@pytest.fixture(scope="session")
def full_library():
    return default_library()


@pytest.fixture(scope="session")
def configuration(library):
    return derive_configuration(library)


class _Recorder:
    def __init__(self):
        self.sections: Dict[str, List[str]] = {}

    def __call__(self, section: str, text: str) -> None:
        self.sections.setdefault(section, []).append(text)

    def render(self) -> str:
        parts = ["# Benchmark results (regenerated)\n"]
        for section in sorted(self.sections):
            parts.append(f"\n## {section}\n")
            parts.extend(f"```\n{text}\n```\n"
                         for text in self.sections[section])
        return "".join(parts)


@pytest.fixture(scope="session")
def _recorder():
    recorder = _Recorder()
    yield recorder
    if recorder.sections:
        with open(RESULTS_PATH, "w") as f:
            f.write(recorder.render())


@pytest.fixture()
def record(_recorder):
    return _recorder
