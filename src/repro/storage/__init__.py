"""Storage substrate: key-value backend, disk model, segment store, aging.

The paper stores 8-second segments as MB-size values in LMDB.  This
subpackage provides:

* :mod:`repro.storage.kvstore` — an embedded, durable key-value store
  (append-only log + in-memory index + compaction) standing in for LMDB;
* :mod:`repro.storage.disk` — a disk bandwidth/seek model charged against
  the simulated clock;
* :mod:`repro.storage.segment_store` — the video-segment index built on the
  KV store, tracking per-format footprints;
* :mod:`repro.storage.lifespan` — age tracking and erosion execution.
"""

from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.storage.kvstore import KVStore
from repro.storage.lifespan import AgeTracker, apply_erosion_step
from repro.storage.segment_store import SegmentStore, StoredSegment

__all__ = [
    "AgeTracker",
    "apply_erosion_step",
    "DEFAULT_DISK",
    "DiskModel",
    "KVStore",
    "SegmentStore",
    "StoredSegment",
]
