"""Cache-plane analysis: hit rates, savings, tier migration, warm-vs-cold.

The cache plane keeps raw counters; this module turns a
:class:`~repro.cache.plane.CacheStats` snapshot into the table a store
operator reads — per-tier hit rates, bytes and simulated seconds the cache
kept off the disk/decoder/operators, eviction pressure, and the state of
the hot-segment promotion loop — plus a warm-vs-cold comparison of two
concurrent runs (the headline number of the cache benchmark: how much of
the multi-tenant contention penalty a warm cache removes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.concurrency import ConcurrencyReport
from repro.cache.plane import CacheStats, TierCounters
from repro.units import fmt_bytes


@dataclass(frozen=True)
class WarmColdComparison:
    """The same workload against the same store, cold cache vs warm."""

    cold: ConcurrencyReport
    warm: ConcurrencyReport

    @property
    def slowdown_reduction(self) -> float:
        """Fraction of the mean contention slowdown the warm cache removed."""
        cold_excess = self.cold.mean_slowdown - 1.0
        warm_excess = self.warm.mean_slowdown - 1.0
        if cold_excess <= 0:
            return 0.0
        return max(0.0, 1.0 - warm_excess / cold_excess)

    @property
    def makespan_speedup(self) -> float:
        if self.warm.makespan <= 0:
            return float("inf")
        return self.cold.makespan / self.warm.makespan


def _tier_row(name: str, tier: TierCounters) -> str:
    return (
        f"{name:<10} {tier.hits:>8} {tier.misses:>8} {tier.hit_rate:>8.1%} "
        f"{tier.evictions:>7} {tier.rejections:>7} "
        f"{fmt_bytes(tier.occupancy_bytes):>10} / {fmt_bytes(tier.capacity_bytes):<10} "
        f"{fmt_bytes(tier.bytes_saved):>10} {tier.seconds_saved:>9.3f}s"
    )


def format_cache_table(stats: CacheStats) -> str:
    """Render a cache-plane snapshot the way the paper renders its tables."""
    lines: List[str] = []
    # Savings are resource work-seconds (a 4-context stage saved on all 4
    # counts 4x), not wall time — contention removed can exceed makespan.
    lines.append(
        f"Retrieval cache (policy={stats.policy}): "
        f"{stats.seconds_saved:.3f} resource-seconds of simulated work "
        f"avoided, {fmt_bytes(stats.bytes_saved)} kept off disk/decoder"
    )
    header = (f"{'tier':<10} {'hits':>8} {'misses':>8} {'hit rate':>8} "
              f"{'evict':>7} {'reject':>7} {'occupancy':>23} "
              f"{'bytes saved':>10} {'sec saved':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    lines.append(_tier_row("frames", stats.frames))
    lines.append(_tier_row("results", stats.results))
    lines.append(
        f"single-flight: {stats.single_flight_hits} in-flight retrievals "
        f"deduplicated, {stats.single_flight_seconds_saved:.3f}s saved; "
        f"result memo: {stats.memo_hits} hits / {stats.memo_misses} misses "
        f"(real compute)"
    )
    if stats.tiering is not None:
        t = stats.tiering
        lines.append(
            f"tiering: {t.promoted_segments} segments on the fast tier "
            f"({fmt_bytes(t.fast_occupancy_bytes)} / "
            f"{fmt_bytes(t.fast_capacity_bytes)}), "
            f"{t.promotions} promotions, {t.demotions} demotions, "
            f"{fmt_bytes(t.migrated_bytes)} migrated in "
            f"{t.migration_seconds:.3f}s"
        )
    return "\n".join(lines)


def format_warm_cold_table(comparison: WarmColdComparison) -> str:
    """Cold-vs-warm contention summary of one repeated workload."""
    cold, warm = comparison.cold, comparison.warm
    lines = [
        f"{'run':<6} {'queries':>8} {'makespan':>10} {'mean slowdn':>12} "
        f"{'max slowdn':>11} {'fairness':>9}",
    ]
    for name, report in (("cold", cold), ("warm", warm)):
        lines.append(
            f"{name:<6} {report.n_queries:>8} {report.makespan:>9.3f}s "
            f"{report.mean_slowdown:>11.2f}x {report.max_slowdown:>10.2f}x "
            f"{report.fairness:>9.3f}"
        )
    lines.append(
        f"warm cache removes {comparison.slowdown_reduction:.0%} of the "
        f"contention slowdown ({comparison.makespan_speedup:.1f}x makespan "
        f"speedup)"
    )
    return "\n".join(lines)
