"""Operator library and consumers."""

import pytest

from repro.errors import QueryError
from repro.operators.library import (
    Consumer,
    DEFAULT_ACCURACIES,
    OperatorLibrary,
    TABLE2_ORDER,
    default_library,
)
from repro.operators.nn import NNOperator


def test_default_library_has_all_table2_operators():
    lib = default_library()
    assert set(lib.names) == set(TABLE2_ORDER)
    assert len(lib) == 9


def test_default_accuracies_match_paper():
    assert DEFAULT_ACCURACIES == (0.95, 0.90, 0.80, 0.70)


def test_consumers_cross_product():
    lib = default_library(names=("Diff", "NN"))
    consumers = lib.consumers()
    assert len(consumers) == 2 * 4
    assert Consumer("NN", 0.8) in consumers


def test_consumers_subset():
    lib = default_library()
    subset = lib.consumers(["License"])
    assert {c.operator for c in subset} == {"License"}


def test_duplicate_registration_rejected():
    lib = OperatorLibrary()
    lib.register(NNOperator())
    with pytest.raises(QueryError):
        lib.register(NNOperator())


def test_unknown_operator_raises_with_names():
    lib = default_library(names=("Diff",))
    with pytest.raises(QueryError, match="Diff"):
        lib.get("NN")


def test_unknown_factory_name():
    with pytest.raises(QueryError):
        default_library(names=("Quantum",))


def test_consumer_label():
    assert Consumer("OCR", 0.9).label == "<OCR, 0.90>"


def test_iteration_yields_operators():
    lib = default_library(names=("Diff", "NN"))
    assert {op.name for op in lib} == {"Diff", "NN"}
    assert "Diff" in lib and "OCR" not in lib
