"""Codec response surfaces: the shapes of Figure 3 and Section 2.4."""

from fractions import Fraction

import pytest

from repro.codec.model import (
    BITS_PER_PIXEL,
    CodecModel,
    DEFAULT_CODEC,
    ENCODE_TIME_FACTOR,
    SIZE_FACTOR,
)
from repro.errors import CodecError
from repro.video.coding import Coding, KEYFRAME_INTERVALS, RAW, SPEED_STEPS
from repro.video.fidelity import Fidelity


def _fid(label):
    return Fidelity.parse(label)


GOLDEN = _fid("best-720p-1-100%")


def test_speed_step_encode_range_is_40x():
    # Figure 3a: up to 40x difference in encoding speed across steps.
    ratio = ENCODE_TIME_FACTOR["slowest"] / ENCODE_TIME_FACTOR["fastest"]
    assert ratio == pytest.approx(40.0)
    speeds = [DEFAULT_CODEC.encode_speed(GOLDEN, Coding(s, 250))
              for s in SPEED_STEPS]
    assert speeds == sorted(speeds)
    assert speeds[-1] / speeds[0] == pytest.approx(40.0)


def test_speed_step_size_range_is_2_5x():
    # Figure 3a: up to 2.5x difference in video size across steps.
    sizes = [DEFAULT_CODEC.encoded_bytes_per_second(GOLDEN, Coding(s, 250))
             for s in SPEED_STEPS]
    assert sizes == sorted(sizes)
    assert sizes[-1] / sizes[0] == pytest.approx(SIZE_FACTOR["fastest"])


def test_quality_steps_change_size_about_5x():
    # Section 2.4: one image-quality step changes storage by ~5x.
    ratios = []
    qualities = ["best", "good", "bad", "worst"]
    for rich, poor in zip(qualities, qualities[1:]):
        ratios.append(BITS_PER_PIXEL[rich] / BITS_PER_PIXEL[poor])
    assert all(3.5 <= r <= 6.0 for r in ratios)


def test_keyframe_interval_size_tradeoff():
    # Figure 3b: smaller keyframe intervals cost storage.
    sizes = [
        DEFAULT_CODEC.encoded_bytes_per_second(GOLDEN, Coding("slowest", m))
        for m in KEYFRAME_INTERVALS
    ]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] / sizes[-1] > 2.0  # kf=5 vs kf=250


def test_keyframe_interval_decode_speedup_under_sparse_sampling():
    # Figure 3b: up to ~6x faster decode with small GOPs when the consumer
    # samples 1/250 of frames; dense consumers see no benefit.
    stored = GOLDEN
    sparse = Fraction(1, 30)
    speeds = [
        DEFAULT_CODEC.decode_speed(stored, Coding("slowest", m), sparse)
        for m in KEYFRAME_INTERVALS
    ]
    assert speeds == sorted(speeds, reverse=True)
    assert speeds[0] / speeds[-1] > 4.0
    dense = [
        DEFAULT_CODEC.decode_speed(stored, Coding("slowest", m), Fraction(1))
        for m in KEYFRAME_INTERVALS
    ]
    assert max(dense) / min(dense) == pytest.approx(1.0)


def test_golden_format_calibration():
    # Table 3b ballpark: the golden format stores ~1.4 MB per video second
    # and decodes at a few tens of x realtime.
    size = DEFAULT_CODEC.encoded_bytes_per_second(GOLDEN, Coding("slowest", 250),
                                                  activity=0.35)
    assert 0.8e6 < size < 2.5e6
    speed = DEFAULT_CODEC.decode_speed(GOLDEN, Coding("slowest", 250))
    assert 10 < speed < 60


def test_decode_faster_than_encode():
    for step in SPEED_STEPS:
        c = Coding(step, 250)
        assert (DEFAULT_CODEC.decode_speed(GOLDEN, c)
                > DEFAULT_CODEC.encode_speed(GOLDEN, c))


def test_raw_sizes():
    f = _fid("best-200p-1-100%")
    assert DEFAULT_CODEC.raw_frame_bytes(f) == 200 * 200 * 1.5
    assert DEFAULT_CODEC.raw_bytes_per_second(f) == 200 * 200 * 1.5 * 30


def test_raw_has_negligible_encode_cost():
    raw_cost = DEFAULT_CODEC.encode_seconds_per_video_second(GOLDEN, RAW)
    enc_cost = DEFAULT_CODEC.encode_seconds_per_video_second(
        GOLDEN, Coding("fastest", 250)
    )
    assert raw_cost < enc_cost / 10


def test_raw_cannot_be_decoded():
    with pytest.raises(CodecError):
        DEFAULT_CODEC.decode_seconds_per_video_second(GOLDEN, RAW)
    with pytest.raises(CodecError):
        DEFAULT_CODEC.decode_frame_seconds(GOLDEN, RAW)


def test_activity_inflates_size():
    quiet = DEFAULT_CODEC.encoded_bytes_per_second(GOLDEN, Coding("med", 250), 0.05)
    busy = DEFAULT_CODEC.encoded_bytes_per_second(GOLDEN, Coding("med", 250), 1.2)
    assert busy > 2 * quiet


def test_consumer_stride():
    stored = _fid("best-720p-1/6-100%")
    assert DEFAULT_CODEC.consumer_stride(stored, Fraction(1, 6)) == 1
    assert DEFAULT_CODEC.consumer_stride(stored, Fraction(1, 30)) == 5
    with pytest.raises(CodecError):
        DEFAULT_CODEC.consumer_stride(stored, Fraction(1, 2))


def test_fewer_pixels_encode_faster():
    small = _fid("best-200p-1-100%")
    c = Coding("med", 250)
    assert (DEFAULT_CODEC.encode_speed(small, c)
            > DEFAULT_CODEC.encode_speed(GOLDEN, c))


def test_lower_fps_encodes_cheaper():
    sparse = _fid("best-720p-1/6-100%")
    c = Coding("med", 250)
    assert (
        DEFAULT_CODEC.encode_seconds_per_video_second(sparse, c)
        < DEFAULT_CODEC.encode_seconds_per_video_second(GOLDEN, c)
    )


def test_custom_model_constants():
    model = CodecModel(encode_ms_per_mp=24.0)
    assert (model.encode_seconds_per_video_second(GOLDEN, Coding("med", 250))
            > DEFAULT_CODEC.encode_seconds_per_video_second(
                GOLDEN, Coding("med", 250)))
