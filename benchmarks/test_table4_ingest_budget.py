"""Table 4: adapting to a shrinking ingestion budget.

As the cores available for transcoding one stream drop, VStore tunes
coding toward faster (cheaper-to-encode) options and coalesces further,
staying under budget at the price of a modest storage increase.

The sweep threads one shared profiler set (and profile table) through all
budget points; later points replan from memoized profiles alone.
"""

from repro.analysis.sweeps import budget_sweep_series
from repro.core.config import derive_configuration
from repro.ingest.budget import IngestBudget, cores_required
from repro.units import DAY


def test_table4_budget_sweep(benchmark, record, library):
    series = benchmark.pedantic(
        lambda: budget_sweep_series(library), rounds=1, iterations=1
    )

    rows = list(zip(
        series["budget"], series["ingest_cores"],
        series["storage_bytes_per_second"], series["codings"],
        series["memo_hit_rate"],
    ))
    lines = [f"{'budget':>9} {'cores':>7} {'MB/s':>7} {'GB/day':>8} "
             f"{'memo':>6}  codings"]
    for cores, used, rate, codings, memo in rows:
        label = "none" if cores is None else f"{cores:.2f}"
        lines.append(
            f"{label:>9} {used:>7.2f} {rate / 2**20:>7.3f} "
            f"{rate * DAY / 2**30:>8.1f} {memo:>6.1%}  [{', '.join(codings)}]"
        )
    record("Table 4 — ingestion budget", "\n".join(lines))

    unbudgeted = rows[0]
    for cores, used, rate, codings, memo in rows[1:]:
        assert used <= cores + 1e-9  # the budget is respected
        # Storage may grow, but gently (the paper reports +17% at 1 core).
        assert rate <= unbudgeted[2] * 1.6
        # Budgeted points replan almost entirely from the shared memo.
        assert memo > 0.9
    # Tighter budgets never need more cores than looser ones.
    used_cores = [r[1] for r in rows]
    assert used_cores == sorted(used_cores, reverse=True)


def test_table4_coding_gets_cheaper(benchmark, record, library):
    """Under pressure the speed steps move toward 'fast' variants for at
    least one encoded format (the red entries of Table 4)."""
    baseline = derive_configuration(library)

    def constrained():
        return derive_configuration(
            library,
            ingest_budget=IngestBudget(
                max(0.35, baseline.plan.ingest_cores * 0.4)
            ),
        )

    config = benchmark.pedantic(constrained, rounds=1, iterations=1)

    def step_indices(cfg):
        return [sf.fmt.coding.speed_idx
                for sf in cfg.plan.formats if not sf.fmt.is_raw]

    base_steps = step_indices(baseline)
    tight_steps = step_indices(config)
    record(
        "Table 4 — speed steps",
        f"unbudgeted: {base_steps} (0=slowest)\n"
        f"tight:      {tight_steps}",
    )
    # Either some encoded format stepped to faster coding, or encoded
    # formats disappeared entirely in favour of raw (the extreme bypass).
    assert (not tight_steps) or max(tight_steps, default=0) > min(
        base_steps, default=0
    ) or len(tight_steps) < len(base_steps)
    assert cores_required(config.storage_formats) <= max(
        0.35, baseline.plan.ingest_cores * 0.4) + 1e-9
