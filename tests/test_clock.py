"""Simulated clock accounting."""

import pytest

from repro.clock import SimClock, Stopwatch


def test_charge_advances_clock():
    clock = SimClock()
    clock.charge(1.5, "decode")
    clock.charge(0.5, "decode")
    clock.charge(2.0, "consume")
    assert clock.now == pytest.approx(4.0)
    assert clock.spent("decode") == pytest.approx(2.0)
    assert clock.spent("consume") == pytest.approx(2.0)
    assert clock.spent("never") == 0.0


def test_negative_charge_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.charge(-1.0)


def test_default_category():
    clock = SimClock()
    clock.charge(1.0)
    assert clock.spent("other") == 1.0


def test_advance_to_charges_the_difference():
    clock = SimClock()
    clock.charge(1.0, "decode")
    clock.advance_to(3.5, "wait")
    assert clock.now == pytest.approx(3.5)
    assert clock.spent("wait") == pytest.approx(2.5)


def test_advance_to_same_instant_is_a_noop():
    clock = SimClock()
    clock.charge(2.0, "decode")
    clock.advance_to(2.0, "wait")  # same instant: a no-op
    assert clock.now == pytest.approx(2.0)
    assert clock.spent("wait") == 0.0


def test_advance_to_within_float_epsilon_is_a_noop():
    """Absolute event times are sums of float durations: two paths to the
    same instant may disagree by ulps, and that regression is tolerated."""
    clock = SimClock()
    clock.charge(2.0, "decode")
    clock.advance_to(2.0 - 1e-12, "wait")
    assert clock.now == pytest.approx(2.0)
    assert clock.spent("wait") == 0.0


def test_advance_to_the_past_raises():
    """Regression: backwards jumps of any magnitude used to be silently
    ignored, masking event-ordering bugs upstream."""
    clock = SimClock()
    clock.charge(2.0, "decode")
    with pytest.raises(ValueError):
        clock.advance_to(1.0, "wait")
    with pytest.raises(ValueError):
        clock.advance_to(2.0 - 1e-6, "wait")
    assert clock.now == pytest.approx(2.0)  # the failed jump changed nothing


def test_reset():
    clock = SimClock()
    clock.charge(3.0, "x")
    clock.reset()
    assert clock.now == 0.0
    assert clock.spent("x") == 0.0


def test_stopwatch_measures_interval():
    clock = SimClock()
    clock.charge(1.0)
    watch = Stopwatch(clock)
    clock.charge(2.5, "work")
    assert watch.elapsed() == pytest.approx(2.5)
