"""Ingestion budget: CPU cores available to transcode one stream.

The required core count for a storage-format set is the sum of one-core
encode costs per video second — a format that encodes at 0.5x realtime on
one core needs two cores to keep up with a live stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.video.format import StorageFormat


def cores_required(
    formats: Iterable[StorageFormat], codec: CodecModel = DEFAULT_CODEC
) -> float:
    """CPU cores needed to transcode one live stream into ``formats``."""
    return sum(
        codec.encode_seconds_per_video_second(f.fidelity, f.coding)
        for f in formats
    )


#: Float tolerance for budget comparisons: a format set within this many
#: cores of the cap counts as exactly on budget.  ``allows`` and
#: ``headroom`` share it, so a set is allowed iff its headroom is >= 0.
CORE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class IngestBudget:
    """A cap on transcoding cores per ingested stream (None = unlimited)."""

    cores: Optional[float] = None

    def allows(self, formats: Iterable[StorageFormat],
               codec: CodecModel = DEFAULT_CODEC) -> bool:
        """Whether the format set can be sustained within the budget."""
        return self.headroom(formats, codec) >= 0.0

    def headroom(self, formats: Iterable[StorageFormat],
                 codec: CodecModel = DEFAULT_CODEC) -> float:
        """Remaining cores (negative when over budget; inf when unlimited).

        Overruns within :data:`CORE_TOLERANCE` clamp to 0.0 so an allowed
        format set never reports negative headroom.
        """
        if self.cores is None:
            return float("inf")
        room = self.cores - cores_required(formats, codec)
        if -CORE_TOLERANCE <= room < 0.0:
            return 0.0
        return room
