"""Analysis helpers: the Focus comparison model and table formatting."""

from repro.analysis.focus import FocusComparison
from repro.analysis.sweeps import (
    erosion_series,
    keyframe_series,
    query_speed_series,
    speed_step_series,
)
from repro.analysis.tables import (
    format_configuration_table,
    format_erosion_table,
    format_query_speed_table,
)

__all__ = [
    "FocusComparison",
    "erosion_series",
    "keyframe_series",
    "query_speed_series",
    "speed_step_series",
    "format_configuration_table",
    "format_erosion_table",
    "format_query_speed_table",
]
