"""Unit tests for the query-mix drift detector (the evolution trigger)."""

from types import SimpleNamespace

import pytest

from repro.core.drift import DriftDetector
from repro.operators.library import Consumer


def _outcome(operator: str, accuracy: float = 0.9, stream: str = "cam",
             seconds: float = 1.0, klass: int = 0):
    """A minimal stand-in for a QueryOutcome: one single-stage plan whose
    task durations sum to ``seconds``."""
    task = SimpleNamespace(duration=seconds)
    stage = SimpleNamespace(operator=operator, tasks=[task])
    session = SimpleNamespace(
        klass=klass, accuracy=accuracy, stream=stream,
        plan=SimpleNamespace(stages=[stage]),
    )
    return SimpleNamespace(session=session)


def test_empty_detector_is_quiet():
    d = DriftDetector()
    assert d.samples == 0
    assert d.drift_score() == 0.0
    assert not d.drifted


def test_unrebased_window_scores_full_drift():
    d = DriftDetector(min_samples=2)
    d.observe(_outcome("Diff"))
    d.observe(_outcome("Diff"))
    # Never rebased: everything the window wants is unanticipated.
    assert d.drift_score() == 1.0
    assert d.drifted


def test_pending_rebase_pins_from_first_window():
    d = DriftDetector(min_samples=3)
    d.rebase()  # empty window: baseline pins itself later
    d.observe(_outcome("Diff"))
    d.observe(_outcome("NN"))
    assert d.drift_score() == 0.0  # still pending
    assert not d.drifted
    d.observe(_outcome("Diff"))
    # min_samples reached: the observed mix became the baseline.
    assert d.drift_score() == 0.0
    assert not d.drifted


def test_stationary_mix_never_drifts():
    d = DriftDetector(min_samples=4)
    d.rebase()
    for _ in range(20):
        d.observe(_outcome("Motion"))
        d.observe(_outcome("OCR"))
        assert d.drift_score() == pytest.approx(0.0)
    assert not d.drifted


def test_disjoint_mix_drifts():
    d = DriftDetector(window=8, min_samples=4)
    d.rebase()
    for _ in range(8):
        d.observe(_outcome("Motion"))
    assert not d.drifted
    for _ in range(8):
        d.observe(_outcome("Diff"))
    # The window now holds only Diff demand; the baseline only Motion.
    assert d.drift_score() == pytest.approx(1.0)
    assert d.drifted


def test_partial_shift_scores_between():
    d = DriftDetector(window=8, min_samples=2)
    d.rebase()
    for _ in range(8):
        d.observe(_outcome("Motion"))
    for _ in range(4):
        d.observe(_outcome("Diff"))
    # Half of the window's mass moved to an unanticipated consumer.
    assert d.drift_score() == pytest.approx(0.5)


def test_background_outcomes_are_skipped():
    d = DriftDetector(min_samples=1)
    d.rebase()
    d.observe(_outcome("reencode", klass=1, seconds=100.0))
    assert d.samples == 0
    assert d.demand_by_consumer() == {}


def test_window_trims_to_length():
    d = DriftDetector(window=4)
    for i in range(10):
        d.observe(_outcome("Diff", stream=f"cam{i}"))
    assert d.samples == 4
    assert set(d.demand_by_stream()) == {f"cam{i}" for i in range(6, 10)}


def test_demanded_consumers_heaviest_first():
    d = DriftDetector()
    d.observe(_outcome("Diff", seconds=1.0))
    d.observe(_outcome("NN", seconds=5.0))
    d.observe(_outcome("Motion", seconds=2.0))
    assert d.demanded_consumers() == [
        Consumer("NN", 0.9), Consumer("Motion", 0.9), Consumer("Diff", 0.9),
    ]


def test_accuracy_is_part_of_the_consumer():
    d = DriftDetector(window=8, min_samples=2)
    d.rebase()
    for _ in range(4):
        d.observe(_outcome("NN", accuracy=0.9))
    for _ in range(4):
        d.observe(_outcome("NN", accuracy=0.7))
    # Same operator at a new accuracy point is demand drift too.
    assert d.drift_score() == pytest.approx(0.5)


def test_rebase_on_live_window_pins_immediately():
    d = DriftDetector(min_samples=2)
    d.observe(_outcome("Diff"))
    d.observe(_outcome("Diff"))
    d.rebase()
    assert d.drift_score() == 0.0
    d.observe(_outcome("Diff"))
    assert d.drift_score() == pytest.approx(0.0)


def test_min_samples_gates_drifted_flag():
    d = DriftDetector(min_samples=4)
    d.rebase()
    d.observe(_outcome("Diff"))
    # Score 0 while pending, and too few samples to flag regardless.
    assert not d.drifted
    d2 = DriftDetector(min_samples=4)
    for _ in range(3):
        d2.observe(_outcome("Diff"))
    assert d2.drift_score() == 1.0  # unrebased
    assert not d2.drifted  # but below min_samples
