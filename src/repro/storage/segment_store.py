"""Segment store: the video index built on the key-value backend.

Keys are ``{stream}/{format-label}/{segment-index}``.  Each value is a small
JSON metadata record optionally followed by the segment payload.  The store
tracks per-(stream, format) footprints so storage-cost experiments can read
them off without scanning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import quote, unquote

from repro.codec.encoder import EncodedSegment
from repro.errors import StorageError
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.storage.kvstore import KVStore
from repro.storage.sharding import RebalanceReport, ShardedDiskArray, plan_rebalance
from repro.video.coding import Coding
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

_SEPARATOR = b"\x00"


@dataclass(frozen=True)
class StoredSegment:
    """Metadata of one stored segment, as returned by lookups."""

    stream: str
    index: int
    fmt: StorageFormat
    size_bytes: int
    n_frames: int
    activity: float
    seconds: float
    has_payload: bool
    shard: int = 0  # disk shard holding the segment (0 on unsharded stores)

    @property
    def segment(self) -> Segment:
        return Segment(self.stream, self.index, self.seconds)


# Keys are "/"-structured, the two format labels are " "-joined, and label
# text is arbitrary (sampling fractions contain "/"; future knob values may
# contain spaces or "|"), so label characters that collide with the key
# structure are percent-escaped with the stdlib codec, which roundtrips
# any label exactly.


def _escape_label(text: str) -> str:
    return quote(text, safe="")


def _unescape_label(text: str) -> str:
    return unquote(text)


def _fmt_key(fmt: StorageFormat) -> str:
    return (f"{_escape_label(fmt.fidelity.label)} "
            f"{_escape_label(fmt.coding.label)}")


def _parse_fmt(text: str) -> StorageFormat:
    if "|" in text:
        # Legacy stores encoded "/" as a literal "|" (the current encoding
        # never emits one — it escapes to %7C), so such keys can only come
        # from a store written before percent-escaping.  They are parsed
        # here and rewritten once at store open (_migrate_legacy_keys).
        text = text.replace("|", "%2F")
    fidelity_text, sep, coding_text = text.rpartition(" ")
    if not sep:
        raise StorageError(f"malformed format key: {text!r}")
    return StorageFormat(
        fidelity=Fidelity.parse(_unescape_label(fidelity_text)),
        coding=Coding.parse(_unescape_label(coding_text)),
    )


class SegmentStore:
    """Stores and retrieves per-format video segments.

    When a cache plane is attached (``self.cache``), every write and
    delete invalidates the affected segment's cached artifacts — decoded
    frames, memoized operator results, tier placement — so re-ingest and
    erosion can never leave stale cache state behind.
    """

    def __init__(self, kv: KVStore,
                 disk: Union[DiskModel, ShardedDiskArray] = DEFAULT_DISK):
        self.kv = kv
        self.disk = disk
        #: The sharded storage plane, when one backs this store.  A plain
        #: DiskModel keeps the pre-sharding single-spindle behavior.
        self.array: Optional[ShardedDiskArray] = (
            disk if isinstance(disk, ShardedDiskArray) else None
        )
        self.cache = None  # Optional[repro.cache.plane.CachePlane]
        self._footprint: Dict[Tuple[str, str], int] = {}
        self._count: Dict[Tuple[str, str], int] = {}
        self._migrate_legacy_keys()
        self._load_footprints()

    def _invalidate_cache(self, stream: str, index: int) -> None:
        if self.cache is not None:
            self.cache.invalidate(stream, index)

    def _migrate_legacy_keys(self) -> None:
        """Rewrite keys from stores written before percent-escaping.

        The old encoding stored "/" in format labels as a literal "|";
        the current one never emits "|", so any key containing it in the
        format part is unambiguously legacy.  Rewriting once at open keeps
        every lookup (meta/get/contains/indices/delete/...) working on old
        stores without per-access compatibility paths.
        """
        legacy = [key for key in list(self.kv.keys())
                  if "|" in self._split_key(key)[1]]
        for key in legacy:
            stream, fmt_text, index = self._split_key(key)
            new_key = self._key(stream, _parse_fmt(fmt_text), index)
            self.kv.put(new_key, self.kv.get(key))
            self.kv.delete(key)

    def _load_footprints(self) -> None:
        for key in self.kv.keys():
            stream, fmt_text, index = self._split_key(key)
            meta = self._read_meta(key)
            bucket = (stream, fmt_text)
            self._footprint[bucket] = (
                self._footprint.get(bucket, 0) + meta["size_bytes"]
            )
            self._count[bucket] = self._count.get(bucket, 0) + 1
            if self.array is not None:
                # Restore the persisted placement (pre-sharding stores
                # carry no shard field: everything lived on shard 0).
                self.array.adopt(stream, fmt_text, index,
                                 meta.get("shard", 0), meta["size_bytes"])

    @staticmethod
    def _key_text(stream: str, fmt_text: str, index: int) -> str:
        """Assemble a key from an already-escaped format text."""
        return f"{stream}/{fmt_text}/{index:012d}"

    @staticmethod
    def _key(stream: str, fmt: StorageFormat, index: int) -> str:
        return SegmentStore._key_text(stream, _fmt_key(fmt), index)

    @staticmethod
    def _split_key(key: str) -> Tuple[str, str, int]:
        stream, fmt_text, index_text = key.rsplit("/", 2)
        return stream, fmt_text, int(index_text)

    def _read_meta(self, key: str) -> dict:
        blob = self.kv.get(key)
        head, _, _ = blob.partition(_SEPARATOR)
        return json.loads(head.decode("utf-8"))

    # -- writes -----------------------------------------------------------------

    def put(self, encoded: EncodedSegment) -> None:
        """Store an encoded segment (metadata + optional payload).

        On a sharded store the placement policy assigns (or re-finds) the
        segment's shard; the write is charged to that shard and the shard
        id is persisted in the metadata record so placement survives
        reopen.
        """
        stream, index = encoded.segment.stream, encoded.segment.index
        shard = 0
        if self.array is not None:
            shard = self.array.place(stream, _fmt_key(encoded.fmt), index,
                                     encoded.size_bytes, encoded.activity)
        meta = {
            "size_bytes": encoded.size_bytes,
            "n_frames": encoded.n_frames,
            "activity": encoded.activity,
            "seconds": encoded.segment.seconds,
            "payload": encoded.payload is not None,
            "shard": shard,
        }
        blob = json.dumps(meta).encode("utf-8") + _SEPARATOR
        if encoded.payload is not None:
            blob += encoded.payload
        key = self._key(stream, encoded.fmt, index)
        existed = key in self.kv
        self.kv.put(key, blob)
        if self.array is not None:
            self.array.write_at(shard, encoded.size_bytes)
        else:
            self.disk.write(encoded.size_bytes)
        self._invalidate_cache(encoded.segment.stream, encoded.segment.index)
        bucket = (encoded.segment.stream, _fmt_key(encoded.fmt))
        if existed:
            # Overwrite: footprint was already counted; recompute lazily.
            self._footprint[bucket] = self._recount_footprint(bucket)
            self._count[bucket] = sum(
                1 for _ in self.kv.keys(f"{bucket[0]}/{bucket[1]}/")
            )
        else:
            self._footprint[bucket] = self._footprint.get(bucket, 0) + encoded.size_bytes
            self._count[bucket] = self._count.get(bucket, 0) + 1

    def _recount_footprint(self, bucket: Tuple[str, str]) -> int:
        prefix = f"{bucket[0]}/{bucket[1]}/"
        return sum(self._read_meta(k)["size_bytes"] for k in self.kv.keys(prefix))

    # -- reads ------------------------------------------------------------------

    def _require(self, stream: str, fmt: StorageFormat, index: int) -> str:
        """The segment's key, or a StorageError naming what is missing.

        Guards every point lookup so a missing segment surfaces as a
        store-level error naming (stream, format, index) instead of
        leaking the KV backend's raw-key error.
        """
        key = self._key(stream, fmt, index)
        if key not in self.kv:
            raise StorageError(
                f"no stored segment: stream={stream!r} "
                f"format={fmt.label!r} index={index}"
            )
        return key

    def get(self, stream: str, fmt: StorageFormat, index: int) -> StoredSegment:
        """Fetch one segment's metadata, charging its shard for the bytes."""
        meta = self.meta(stream, fmt, index)
        if self.array is not None:
            self.array.read_at(meta.shard, meta.size_bytes)
        else:
            self.disk.read(meta.size_bytes)
        return meta

    def meta(self, stream: str, fmt: StorageFormat, index: int) -> StoredSegment:
        """Fetch one segment's metadata without charging any disk time.

        On a sharded store the reported shard is the array's *effective*
        assignment, not the raw persisted field — a store written on a
        wider array folds onto the current shard count at open, and the
        metadata record may still carry the out-of-range original.
        """
        key = self._require(stream, fmt, index)
        meta = self._read_meta(key)
        if self.array is not None:
            shard = self.shard_of(stream, fmt, index)
        else:
            shard = meta.get("shard", 0)
        return StoredSegment(
            stream=stream,
            index=index,
            fmt=fmt,
            size_bytes=meta["size_bytes"],
            n_frames=meta["n_frames"],
            activity=meta["activity"],
            seconds=meta["seconds"],
            has_payload=meta["payload"],
            shard=shard,
        )

    def contains(self, stream: str, fmt: StorageFormat, index: int) -> bool:
        return self._key(stream, fmt, index) in self.kv

    def payload(self, stream: str, fmt: StorageFormat, index: int) -> Optional[bytes]:
        """The raw payload bytes of a materialized segment, if present."""
        blob = self.kv.get(self._require(stream, fmt, index))
        _, _, body = blob.partition(_SEPARATOR)
        return body or None

    def indices(self, stream: str, fmt: StorageFormat) -> List[int]:
        """Sorted indices of stored segments for (stream, format)."""
        prefix = f"{stream}/{_fmt_key(fmt)}/"
        return [self._split_key(k)[2] for k in self.kv.keys(prefix)]

    def formats(self, stream: str) -> List[StorageFormat]:
        """All storage formats holding at least one segment of ``stream``."""
        seen = {}
        for key in self.kv.keys(f"{stream}/"):
            _, fmt_text, _ = self._split_key(key)
            seen.setdefault(fmt_text, _parse_fmt(fmt_text))
        return list(seen.values())

    # -- deletes ------------------------------------------------------------------

    def delete(self, stream: str, fmt: StorageFormat, index: int) -> bool:
        """Delete one segment (erosion executes through this)."""
        key = self._key(stream, fmt, index)
        if key not in self.kv:
            return False
        size = self._read_meta(key)["size_bytes"]
        self.kv.delete(key)
        if self.array is not None:
            self.array.forget(stream, _fmt_key(fmt), index)
        self._invalidate_cache(stream, index)
        bucket = (stream, _fmt_key(fmt))
        remaining = self._count.get(bucket, 0) - 1
        if remaining <= 0:
            # Prune the emptied bucket: a long-lived store aging footage
            # away must not accumulate zero-byte accounting entries.
            self._footprint.pop(bucket, None)
            self._count.pop(bucket, None)
        else:
            self._footprint[bucket] = self._footprint.get(bucket, 0) - size
            self._count[bucket] = remaining
        return True

    # -- accounting -------------------------------------------------------------------

    def footprint(self, stream: str, fmt: Optional[StorageFormat] = None) -> int:
        """Stored bytes for a stream, optionally limited to one format."""
        if fmt is not None:
            return self._footprint.get((stream, _fmt_key(fmt)), 0)
        return sum(
            size for (s, _), size in self._footprint.items() if s == stream
        )

    def segment_count(self, stream: str, fmt: StorageFormat) -> int:
        return self._count.get((stream, _fmt_key(fmt)), 0)

    def total_bytes(self) -> int:
        """Stored bytes across all streams and formats."""
        return sum(self._footprint.values())

    # -- sharding ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return 1 if self.array is None else self.array.n_shards

    def shard_of(self, stream: str, fmt: StorageFormat, index: int) -> int:
        """The shard a segment's bytes live on (0 on unsharded stores)."""
        if self.array is None:
            return 0
        shard = self.array.locate(stream, _fmt_key(fmt), index)
        return 0 if shard is None else shard

    def disk_params_for(self, stream: str, fmt: StorageFormat,
                        index: int) -> Tuple[float, float]:
        """(read bandwidth, request overhead) serving one segment's reads."""
        if self.array is not None:
            disk = self.array.shard(self.shard_of(stream, fmt, index))
            return disk.read_bandwidth, disk.request_overhead
        return self.disk.read_bandwidth, self.disk.request_overhead

    def rebalance(self) -> RebalanceReport:
        """Move segments between shards until byte loads are balanced.

        Applies the greedy plan of
        :func:`~repro.storage.sharding.plan_rebalance`: each move charges
        the migration I/O (source read + destination write) to the clock
        and rewrites the segment's metadata record with its new shard, so
        the placement survives reopen.  Cached decoded frames and results
        stay valid — the bytes did not change, only their spindle.

        No-op (empty report) on unsharded and single-shard stores.
        """
        if self.array is None or self.array.n_shards <= 1:
            return RebalanceReport(
                moves=0, bytes_moved=0.0, seconds=0.0,
                imbalance_before=0.0, imbalance_after=0.0,
            )
        array = self.array
        before = array.byte_imbalance
        moves = plan_rebalance(array.assignments(), array.n_shards)
        seconds = 0.0
        bytes_moved = 0.0
        for (stream, fmt_text, index), src, dst in moves:
            key = self._key_text(stream, fmt_text, index)
            blob = self.kv.get(key)
            head, _, body = blob.partition(_SEPARATOR)
            meta = json.loads(head.decode("utf-8"))
            nbytes = meta["size_bytes"]
            seconds += array.migrate(src, dst, nbytes)
            array.reassign(stream, fmt_text, index, dst)
            meta["shard"] = dst
            self.kv.put(key, json.dumps(meta).encode("utf-8")
                        + _SEPARATOR + body)
            bytes_moved += nbytes
        return RebalanceReport(
            moves=len(moves), bytes_moved=bytes_moved, seconds=seconds,
            imbalance_before=before, imbalance_after=array.byte_imbalance,
        )
