"""Unit tests for the tiered retrieval cache (repro.cache)."""

import pytest

from repro.cache import (
    ByteBudgetCache,
    CacheConfig,
    CacheError,
    CachePlane,
    CostAwarePolicy,
    LFUPolicy,
    LRUPolicy,
    ResultCache,
    TierConfig,
    TierManager,
    policy_named,
)
from repro.clock import SimClock
from repro.storage.disk import DiskModel
from repro.units import GB, MB


# ---------------------------------------------------------------------------
# ByteBudgetCache
# ---------------------------------------------------------------------------


def _key(i):
    return ("s", i)


class TestByteBudgetCache:
    def test_hit_and_miss_counters(self):
        cache = ByteBudgetCache(100.0, LRUPolicy())
        assert cache.get(_key(1)) is None
        assert cache.put(_key(1), 10.0, 2.0)
        entry = cache.get(_key(1))
        assert entry is not None and entry.hits == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.bytes_saved == 10.0
        assert cache.seconds_saved == 2.0

    def test_occupancy_never_exceeds_capacity(self):
        cache = ByteBudgetCache(25.0, LRUPolicy())
        for i in range(10):
            cache.put(_key(i), 10.0, 1.0)
            assert cache.occupancy_bytes <= cache.capacity_bytes
        assert len(cache) == 2

    def test_lru_evicts_least_recent(self):
        cache = ByteBudgetCache(30.0, LRUPolicy())
        for i in range(3):
            cache.put(_key(i), 10.0, 1.0)
        cache.get(_key(0))  # 0 is now the most recent
        cache.put(_key(3), 10.0, 1.0)
        assert _key(1) not in cache  # 1 was the least recent
        assert _key(0) in cache and _key(2) in cache and _key(3) in cache
        assert cache.evictions == 1

    def test_lfu_evicts_least_frequent(self):
        cache = ByteBudgetCache(20.0, LFUPolicy())
        cache.put(_key(0), 10.0, 1.0)
        cache.put(_key(1), 10.0, 1.0)
        for _ in range(3):
            cache.get(_key(0))
        cache.put(_key(2), 10.0, 1.0)
        assert _key(0) in cache and _key(1) not in cache

    def test_cost_aware_keeps_high_benefit_entries(self):
        cache = ByteBudgetCache(20.0, CostAwarePolicy())
        cache.put(_key(0), 10.0, 5.0)  # expensive to rebuild
        cache.put(_key(1), 10.0, 0.001)  # nearly free to rebuild
        cache.put(_key(2), 10.0, 1.0)
        assert _key(0) in cache and _key(1) not in cache

    def test_oversized_entry_rejected(self):
        cache = ByteBudgetCache(10.0, LRUPolicy())
        assert not cache.put(_key(0), 11.0, 1.0)
        assert cache.rejections == 1
        assert len(cache) == 0

    def test_pinned_entries_never_evicted(self):
        cache = ByteBudgetCache(20.0, LRUPolicy())
        cache.put(_key(0), 10.0, 1.0, pins=1)
        cache.put(_key(1), 10.0, 1.0)
        # Inserting a third entry can only evict the unpinned one.
        assert cache.put(_key(2), 10.0, 1.0)
        assert _key(0) in cache and _key(1) not in cache

    def test_infeasible_insert_does_not_destroy_cache_contents(self):
        # Mostly-pinned cache: an insert that could never fit must be
        # rejected up front, not after pointlessly evicting the hot
        # unpinned entries.
        cache = ByteBudgetCache(40.0, LRUPolicy())
        cache.put(_key(0), 30.0, 1.0, pins=1)
        cache.put(_key(1), 5.0, 1.0)  # hot, unpinned
        assert not cache.put(_key(2), 20.0, 1.0)  # 30 pinned + 20 > 40
        assert _key(1) in cache  # survived the infeasible insert
        assert cache.evictions == 0 and cache.rejections == 1

    def test_insert_rejected_when_only_pinned_entries_remain(self):
        cache = ByteBudgetCache(20.0, LRUPolicy())
        cache.put(_key(0), 10.0, 1.0, pins=1)
        cache.put(_key(1), 10.0, 1.0, pins=1)
        assert not cache.put(_key(2), 10.0, 1.0)
        assert cache.occupancy_bytes <= cache.capacity_bytes
        assert _key(0) in cache and _key(1) in cache

    def test_unpin_makes_entry_evictable(self):
        cache = ByteBudgetCache(20.0, LRUPolicy())
        cache.put(_key(0), 10.0, 1.0, pins=1)
        cache.put(_key(1), 10.0, 1.0)
        cache.unpin(_key(0))
        cache.get(_key(1))  # 0 becomes least recent AND unpinned
        assert cache.put(_key(2), 10.0, 1.0)
        assert _key(0) not in cache

    def test_invalidate_by_segment_and_stream(self):
        cache = ByteBudgetCache(1000.0, LRUPolicy())
        cache.put(("a", 0, "x"), 10.0, 1.0)
        cache.put(("a", 1, "x"), 10.0, 1.0)
        cache.put(("b", 0, "x"), 10.0, 1.0)
        assert cache.invalidate("a", 0) == 1
        assert ("a", 0, "x") not in cache and ("a", 1, "x") in cache
        assert cache.invalidate("a") == 1
        assert len(cache) == 1 and cache.invalidations == 2

    def test_invalidation_overrides_pinning(self):
        cache = ByteBudgetCache(100.0, LRUPolicy())
        cache.put(("a", 0), 10.0, 1.0, pins=3)
        assert cache.invalidate("a", 0) == 1
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            ByteBudgetCache(-1.0, LRUPolicy())

    def test_unknown_policy_rejected(self):
        with pytest.raises(CacheError):
            policy_named("mru")


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_memo_and_commit_are_separate_layers(self):
        import numpy as np

        cache = ResultCache(1.0 * MB, LRUPolicy())
        key = ResultCache.key("s", 0, "jackson", "NN", "best-60p-1-100%", "1")
        assert cache.get_output(key) is None
        output = np.ones(8, dtype=bool)
        cache.record_output(key, output)
        assert cache.get_output(key) is output
        # memoized but not committed: full simulated cost still charged
        assert not cache.is_committed(key)
        cache.commit(key, 1.0)
        assert cache.is_committed(key)
        assert cache.committed.occupancy_bytes == output.nbytes
        assert cache.committed.misses == 1  # the computation that committed
        cache.record_charged_hit(key, 1.0)
        assert cache.committed.hits == 1

    def test_is_committed_is_side_effect_free(self):
        cache = ResultCache(1.0 * MB, LRUPolicy())
        key = ResultCache.key("s", 0, "jackson", "NN", "f", "1")
        for _ in range(5):
            assert not cache.is_committed(key)
        assert cache.committed.hits == 0 and cache.committed.misses == 0

    def test_memo_is_byte_bounded(self):
        import numpy as np

        cache = ResultCache(1.0 * MB, LRUPolicy(),
                            memo_capacity_bytes=4 * 80)
        for i in range(10):
            cache.record_output(ResultCache.key("s", i, "d", "NN", "f", "1"),
                                np.zeros(10))  # 80 bytes each
        resident = sum(
            cache.get_output(ResultCache.key("s", i, "d", "NN", "f", "1"))
            is not None
            for i in range(10)
        )
        assert resident == 4  # the LRU tail was dropped
        assert cache._memo_bytes <= 4 * 80

    def test_key_distinguishes_datasets_on_one_stream(self):
        # A stream alias must never serve another dataset's outputs.
        a = ResultCache.key("cam01", 0, "jackson", "NN", "f", "1")
        b = ResultCache.key("cam01", 0, "coral", "NN", "f", "1")
        assert a != b

    def test_invalidate_drops_both_layers(self):
        import numpy as np

        cache = ResultCache(1.0 * MB, LRUPolicy())
        key = ResultCache.key("s", 3, "jackson", "NN", "f", "1")
        cache.record_output(key, np.zeros(4))
        cache.commit(key, 0.5)
        cache.invalidate("s", 3)
        assert cache.get_output(key) is None
        assert not cache.is_committed(key)


# ---------------------------------------------------------------------------
# TierManager
# ---------------------------------------------------------------------------


class TestTierManager:
    def _manager(self, **kwargs):
        return TierManager(TierConfig(**kwargs))

    def test_promotion_requires_heat(self):
        tiers = self._manager(promote_accesses=3)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        tiers.record_access("s", 0, 1.0 * MB)
        tiers.sweep(clock, disk)
        assert not tiers.is_fast("s", 0)
        for _ in range(3):
            tiers.record_access("s", 0, 1.0 * MB)
        tiers.sweep(clock, disk)
        assert tiers.is_fast("s", 0)
        assert tiers.promotions == 1

    def test_migration_charges_the_clock(self):
        tiers = self._manager(promote_accesses=1)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        tiers.record_access("s", 0, 8.0 * MB)
        before = clock.now
        tiers.sweep(clock, disk)
        assert clock.now > before
        assert clock.spent("migrate") == pytest.approx(clock.now - before)
        assert tiers.migrated_bytes == 8.0 * MB

    def test_cold_promoted_segments_are_demoted(self):
        tiers = self._manager(promote_accesses=1, demote_accesses=1)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        tiers.record_access("s", 0, 1.0 * MB)
        tiers.sweep(clock, disk)
        assert tiers.is_fast("s", 0)
        # No further accesses: heat decays to zero, next sweeps demote.
        tiers.sweep(clock, disk)
        tiers.sweep(clock, disk)
        assert not tiers.is_fast("s", 0)
        assert tiers.demotions == 1

    def test_capacity_bounds_promotions(self):
        tiers = self._manager(promote_accesses=1, capacity_bytes=1.5 * MB)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        tiers.record_access("s", 0, 1.0 * MB)
        tiers.record_access("s", 1, 1.0 * MB)
        tiers.sweep(clock, disk)
        assert tiers.promoted_segments == 1
        assert tiers.fast_bytes <= 1.5 * MB

    def test_fast_tier_reads_are_faster(self):
        tiers = self._manager(promote_accesses=1)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        slow_bw, slow_ovh = tiers.read_params("s", 0, disk.read_bandwidth,
                                              disk.request_overhead)
        assert (slow_bw, slow_ovh) == (disk.read_bandwidth,
                                       disk.request_overhead)
        tiers.record_access("s", 0, 1.0 * MB)
        tiers.sweep(clock, disk)
        fast_bw, fast_ovh = tiers.read_params("s", 0, disk.read_bandwidth,
                                              disk.request_overhead)
        assert fast_bw > slow_bw and fast_ovh < slow_ovh

    def test_invalidation_frees_fast_tier_silently(self):
        tiers = self._manager(promote_accesses=1)
        clock = SimClock()
        disk = DiskModel(clock=clock)
        tiers.record_access("s", 0, 1.0 * MB)
        tiers.sweep(clock, disk)
        migrated_before = tiers.migration_seconds
        assert tiers.invalidate("s", 0) == 1
        assert not tiers.is_fast("s", 0)
        assert tiers.fast_bytes == 0.0
        assert tiers.migration_seconds == migrated_before  # no charge


# ---------------------------------------------------------------------------
# CachePlane
# ---------------------------------------------------------------------------


class TestCachePlane:
    def test_hit_seconds_scale_with_ram_bandwidth(self):
        plane = CachePlane(CacheConfig(ram_bandwidth=1.0 * GB))
        assert plane.hit_seconds(1.0 * GB) == pytest.approx(1.0)

    def test_stats_snapshot_shape(self):
        plane = CachePlane(CacheConfig(tiering=TierConfig()))
        stats = plane.stats()
        assert stats.policy == "lru"
        assert stats.frames.hit_rate == 0.0
        assert stats.tiering is not None
        assert stats.seconds_saved == 0.0

    def test_invalidate_spans_all_tiers(self):
        import numpy as np

        plane = CachePlane(CacheConfig(tiering=TierConfig()))
        fkey = plane.frame_key("s", 0, "fmt", "cf")
        rkey = plane.result_key("s", 0, "jackson", "NN", "f", "1")
        plane.frames.put(fkey, 10.0, 1.0)
        plane.results.record_output(rkey, np.zeros(2))
        plane.results.commit(rkey, 0.1)
        plane.tiers.record_access("s", 0, 10.0)
        assert plane.invalidate("s", 0) == 2
        assert fkey not in plane.frames
        assert plane.results.get_output(rkey) is None
        assert plane.tiers.accesses("s", 0) == 0
