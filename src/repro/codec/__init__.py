"""Codec substrate: encode/decode cost and size models with GOP structure.

The paper uses libx264 (encode) and NVDEC (decode).  This subpackage models
both with analytic response surfaces calibrated to the shapes the paper
reports (Figure 3, Table 3):

* speed step trades encoding speed (~40x range) against size (~2.5x range);
* keyframe interval trades size against decode-time chunk skipping when
  consumers sample sparsely (Figure 3b);
* content activity (motion) inflates encoded size (dashcam vs park);
* the coding bypass stores raw YUV420 frames.
"""

from repro.codec.chunks import decoded_frame_count, decoded_frame_fraction, gop_layout
from repro.codec.decoder import Decoder, DecoderPool
from repro.codec.encoder import EncodedSegment, Encoder
from repro.codec.model import CodecModel, DEFAULT_CODEC, SURFACE_CALLS
from repro.codec.tables import (
    ProfileTable,
    clear_profile_table_cache,
    get_profile_table,
)

__all__ = [
    "CodecModel",
    "DEFAULT_CODEC",
    "Decoder",
    "DecoderPool",
    "EncodedSegment",
    "Encoder",
    "ProfileTable",
    "SURFACE_CALLS",
    "clear_profile_table_cache",
    "decoded_frame_count",
    "decoded_frame_fraction",
    "get_profile_table",
    "gop_layout",
]
