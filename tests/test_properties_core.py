"""Property-based tests over the core planning algorithms.

Hypothesis drives random consumer subsets, budgets, and fidelity pairs
through the planners, asserting the paper's structural invariants (R1-R4,
golden format, monotone budget responses) rather than specific outcomes.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coalesce import Demand, StorageFormatPlanner, \
    cheapest_adequate_coding
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner
from repro.ingest.budget import IngestBudget, cores_required
from repro.operators.library import Consumer, default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    SAMPLING_RATES,
    knobwise_max,
)

_LIBRARY = default_library()
_PROFILER = OperatorProfiler(_LIBRARY, "dashcam")
_PLANNER = ConsumptionPlanner(_PROFILER)

# Pre-derive the full consumer pool once; subsets are drawn from it.
_POOL = _PLANNER.derive_all(
    [Consumer(op, acc)
     for op in ("Motion", "License", "OCR")
     for acc in (0.95, 0.9, 0.8, 0.7)]
)

fidelities = st.builds(
    Fidelity,
    quality=st.sampled_from(QUALITIES),
    resolution=st.sampled_from(RESOLUTION_ORDER),
    sampling=st.sampled_from(SAMPLING_RATES),
    crop=st.sampled_from(CROP_FACTORS),
)

decision_subsets = st.lists(
    st.sampled_from(_POOL), min_size=1, max_size=8, unique_by=lambda d: d.consumer
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(decisions=decision_subsets)
def test_coalesce_invariants_on_random_subsets(decisions):
    planner = StorageFormatPlanner(CodingProfiler(activity=0.6))
    plan = planner.heuristic_coalesce(decisions)

    # Exactly one golden format, its fidelity the knob-wise max of all CFs.
    goldens = [sf for sf in plan.formats if sf.golden]
    assert len(goldens) == 1
    assert goldens[0].fidelity == knobwise_max([d.fidelity for d in decisions])

    # R1 everywhere; every consumer subscribed exactly once.
    seen = set()
    for sf in plan.formats:
        for demand in sf.demands:
            assert sf.fidelity.richer_equal(demand.cf_fidelity)
            assert demand.consumer not in seen
            seen.add(demand.consumer)
    assert seen == {d.consumer for d in decisions}

    # R3: consolidation never produces more SFs than unique CFs + golden.
    assert len(plan.formats) <= len({d.fidelity for d in decisions}) + 1


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(decisions=decision_subsets, factor=st.floats(0.5, 0.95))
def test_budget_respected_or_infeasible(decisions, factor):
    """R4: any budget the coalescer accepts is actually met."""
    from repro.errors import BudgetError

    free = StorageFormatPlanner(
        CodingProfiler(activity=0.6)).heuristic_coalesce(decisions)
    cap = max(0.05, free.ingest_cores * factor)
    planner = StorageFormatPlanner(CodingProfiler(activity=0.6),
                                   IngestBudget(cap))
    try:
        plan = planner.heuristic_coalesce(decisions)
    except BudgetError:
        return  # declared infeasible is an acceptable outcome
    assert cores_required([sf.fmt for sf in plan.formats]) <= cap + 1e-9
    # Paying for the budget can only cost storage, not save it.
    assert plan.storage_bytes_per_second >= free.storage_bytes_per_second * (
        1 - 1e-9
    )


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fid=fidelities, speed=st.floats(1.0, 1e5))
def test_cheapest_adequate_coding_is_cheapest(fid, speed):
    """The chosen coding is adequate, and no cheaper-storage encoded option
    is adequate too."""
    from repro.core.coalesce import coding_is_adequate
    from repro.video.coding import coding_space
    from repro.video.format import StorageFormat

    profiler = CodingProfiler(activity=0.5)
    demand = Demand(Consumer("X", 0.9), fid, speed)
    chosen = cheapest_adequate_coding(profiler, fid, [demand])
    if chosen.raw:
        # No encoded option was adequate.
        for coding in coding_space(include_raw=False):
            assert not coding_is_adequate(
                profiler, StorageFormat(fid, coding), [demand]
            )
        return
    chosen_size = profiler.codec.encoded_bytes_per_second(
        fid, chosen, profiler.activity)
    for coding in coding_space(include_raw=False):
        size = profiler.codec.encoded_bytes_per_second(
            fid, coding, profiler.activity)
        if size < chosen_size - 1e-9:
            assert not coding_is_adequate(
                profiler, StorageFormat(fid, coding), [demand]
            )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(k=st.floats(0.0, 8.0))
def test_erosion_plan_structure_for_any_k(k):
    planner = StorageFormatPlanner(CodingProfiler(activity=0.6))
    plan = planner.heuristic_coalesce(_POOL)
    profiler = CodingProfiler(activity=0.6)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    erosion = ErosionPlanner(plan.formats, rates, lifespan_days=6).plan_for_k(k)

    golden_label = next(sf.label for sf in plan.formats if sf.golden)
    for age in range(1, 7):
        assert erosion.fractions[(age, golden_label)] == 0.0
        assert 0.0 < erosion.overall_speed[age] <= 1.0
    for label in erosion.labels:
        series = [erosion.fractions[(age, label)] for age in range(1, 7)]
        assert series == sorted(series)  # cumulative
        assert all(0.0 <= f <= 1.0 for f in series)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    op=st.sampled_from(("Motion", "License", "OCR")),
    accuracy=st.floats(0.55, 0.97),
)
def test_consumption_derivation_adequate_for_any_target(op, accuracy):
    """The planner meets arbitrary accuracy targets, not just the declared
    levels, and never returns a slower format than a random adequate one."""
    decision = _PLANNER.derive(Consumer(op, accuracy))
    assert decision.accuracy >= accuracy
    assert decision.consumption_speed > 0
