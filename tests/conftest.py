"""Shared fixtures: libraries, profilers, and sample content.

Session-scoped fixtures cache the expensive objects (profilers memoize
hundreds of runs; configurations derive in ~1 s) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import derive_configuration


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden trace files under tests/golden/ from the "
             "current scheduler behavior instead of comparing against them",
    )
from repro.operators.library import default_library
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.video.datasets import get_dataset


@pytest.fixture(scope="session")
def library():
    """The full nine-operator Table-2 library at the default accuracies."""
    return default_library()


@pytest.fixture(scope="session")
def query_library():
    """Only the six operators used by the benchmark queries A and B."""
    return default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                  "OCR"))


@pytest.fixture(scope="session")
def jackson_profiler(library):
    return OperatorProfiler(library, "jackson")


@pytest.fixture(scope="session")
def dashcam_profiler(library):
    return OperatorProfiler(library, "dashcam")


@pytest.fixture(scope="session")
def jackson_clip(jackson_profiler):
    return jackson_profiler.clip


@pytest.fixture(scope="session")
def dashcam_clip(dashcam_profiler):
    return dashcam_profiler.clip


@pytest.fixture(scope="session")
def coding_profiler():
    return CodingProfiler(activity=0.35)


@pytest.fixture(scope="session")
def configuration(query_library):
    """The full derived configuration over the six query operators."""
    return derive_configuration(query_library)


@pytest.fixture()
def jackson_content():
    return get_dataset("jackson").content()
