"""Retrieval: speed estimates (R2) and the streaming reader."""

from fractions import Fraction

import pytest

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.errors import StorageError
from repro.retrieval.reader import SegmentReader
from repro.retrieval.speed import retrieval_speed
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.segment_store import SegmentStore
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

ENCODED = StorageFormat(Fidelity.parse("good-540p-1-100%"), Coding("fast", 10))
RAW_FMT = StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW)


class TestSpeedEstimates:
    def test_encoded_is_decode_bound(self):
        # Decoding tens of MB/s vs a GB/s disk: the decoder dictates speed.
        from repro.codec.model import DEFAULT_CODEC
        speed = retrieval_speed(ENCODED)
        assert speed == pytest.approx(
            DEFAULT_CODEC.decode_speed(ENCODED.fidelity, ENCODED.coding)
        )

    def test_raw_is_disk_bound(self):
        speed = retrieval_speed(RAW_FMT)
        assert speed > 300  # bandwidth-bound, far beyond decoder speeds

    def test_sparse_consumer_speeds_up_both_paths(self):
        for fmt in (ENCODED, RAW_FMT):
            dense = retrieval_speed(fmt, Fraction(1))
            sparse = retrieval_speed(fmt, Fraction(1, 30))
            assert sparse > dense

    def test_raw_range_matches_table3(self):
        """Table 3b: raw formats span a huge retrieval range because
        sampled frames are read individually."""
        dense = retrieval_speed(RAW_FMT, Fraction(1))
        sparse = retrieval_speed(RAW_FMT, Fraction(1, 30))
        assert sparse / dense > 5


class TestReader:
    @pytest.fixture()
    def store(self, tmp_path):
        kv = KVStore(str(tmp_path / "seg.log"))
        store = SegmentStore(kv, DiskModel(clock=SimClock()))
        enc = Encoder(clock=SimClock())
        for fmt in (ENCODED, RAW_FMT):
            for i in range(3):
                store.put(enc.encode(Segment("cam", i), fmt, 0.4))
        yield store
        kv.close()

    def test_rejects_unsupplyable_fidelity(self, store):
        rich = Fidelity.parse("best-720p-1-100%")
        with pytest.raises(StorageError):
            SegmentReader(store, ENCODED, rich)

    def test_encoded_read_charges_decode(self, store):
        clock = SimClock()
        reader = SegmentReader(store, ENCODED,
                               Fidelity.parse("good-540p-1-100%"),
                               clock=clock)
        out = reader.read("cam", 0)
        assert out.n_frames == 240  # 8 s at 30 fps
        assert clock.spent("decode") == pytest.approx(out.retrieval_seconds)

    def test_encoded_sparse_read_skips_chunks(self, store):
        clock = SimClock()
        dense = SegmentReader(store, ENCODED,
                              Fidelity.parse("good-540p-1-100%"),
                              clock=SimClock()).read("cam", 0)
        sparse = SegmentReader(store, ENCODED,
                               Fidelity.parse("good-540p-1/30-100%"),
                               clock=clock).read("cam", 0)
        assert sparse.n_frames == 8
        assert sparse.retrieval_seconds < dense.retrieval_seconds / 3

    def test_raw_read_charges_disk(self, store):
        clock = SimClock()
        reader = SegmentReader(store, RAW_FMT,
                               Fidelity.parse("best-200p-1-100%"),
                               clock=clock)
        out = reader.read("cam", 1)
        assert clock.spent("disk") == pytest.approx(out.retrieval_seconds)
        assert out.n_frames == 240

    def test_raw_sparse_read_is_cheap(self, store):
        dense = SegmentReader(store, RAW_FMT,
                              Fidelity.parse("best-200p-1-100%"),
                              clock=SimClock()).read("cam", 0)
        sparse = SegmentReader(store, RAW_FMT,
                               Fidelity.parse("best-200p-1/30-100%"),
                               clock=SimClock()).read("cam", 0)
        assert sparse.retrieval_seconds < dense.retrieval_seconds

    def test_read_range_streams_in_order(self, store):
        reader = SegmentReader(store, ENCODED,
                               Fidelity.parse("good-540p-1/6-100%"),
                               clock=SimClock())
        out = list(reader.read_range("cam", [0, 1, 2]))
        assert [o.stored.index for o in out] == [0, 1, 2]

    def test_missing_segment_raises(self, store):
        reader = SegmentReader(store, ENCODED,
                               Fidelity.parse("good-540p-1-100%"),
                               clock=SimClock())
        with pytest.raises(StorageError):
            reader.read("cam", 99)


class TestBatchAssessParity:
    """The vectorized batch pass must be *bit-identical* to per-segment
    assess — the planner's costs (and therefore the golden traces) ride
    on it."""

    @pytest.fixture()
    def store(self, tmp_path):
        kv = KVStore(str(tmp_path / "seg.log"))
        store = SegmentStore(kv, DiskModel(clock=SimClock()))
        enc = Encoder(clock=SimClock())
        for fmt in (ENCODED, RAW_FMT):
            for i in range(5):
                store.put(enc.encode(Segment("cam", i), fmt, 0.4))
        yield store
        kv.close()

    @pytest.mark.parametrize("fmt,consumer", [
        (ENCODED, "good-540p-1-100%"),
        (ENCODED, "good-540p-1/6-100%"),
        (ENCODED, "good-540p-1/30-100%"),
        (RAW_FMT, "best-200p-1-100%"),
        (RAW_FMT, "best-200p-1/30-100%"),
    ])
    def test_assess_many_matches_scalar(self, store, fmt, consumer):
        reader = SegmentReader(store, fmt, Fidelity.parse(consumer),
                               clock=SimClock())
        indices = [0, 1, 2, 3, 4]
        batch = reader.assess_many("cam", indices)
        for index, clip in zip(indices, batch):
            one = reader.assess("cam", index)
            assert clip.n_frames == one.n_frames
            # bit-identical, not approx: the executor schedules on these
            assert clip.retrieval_seconds == one.retrieval_seconds
            assert clip.stored.index == one.stored.index

    def test_assess_many_empty(self, store):
        reader = SegmentReader(store, ENCODED,
                               Fidelity.parse("good-540p-1-100%"),
                               clock=SimClock())
        assert reader.assess_many("cam", []) == []

    def test_assess_cached_many_matches_scalar(self, store):
        from repro.cache.plane import CachePlane

        reader = SegmentReader(store, RAW_FMT,
                               Fidelity.parse("best-200p-1/30-100%"),
                               clock=SimClock(), cache=CachePlane())
        indices = [0, 1, 2]
        batch = reader.assess_cached_many("cam", indices)
        for index, (clip, access) in zip(indices, batch):
            one_clip, one_access = reader.assess_cached("cam", index)
            assert clip.retrieval_seconds == one_clip.retrieval_seconds
            assert access.key == one_access.key
            assert access.hit == one_access.hit
            assert access.full_seconds == one_access.full_seconds
            assert access.hit_seconds == one_access.hit_seconds
            assert access.nbytes == one_access.nbytes
